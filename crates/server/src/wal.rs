//! Write-ahead log for the session profile store.
//!
//! The paper treats profiles as given inputs; a serving deployment must
//! make them *survive restarts*. This module is the durability half of
//! [`SessionStore`](crate::session::SessionStore): an append-only,
//! length-prefixed, checksummed log of profile upserts plus a snapshot
//! file for compaction, in the ARIES spirit of "log first, apply second,
//! replay on recovery" — reduced to the state-based records this store
//! needs (each record carries the *post-upsert* profile, so replay is
//! trivially idempotent: applying a record twice yields the same store).
//!
//! ## On-disk format
//!
//! Two files in the WAL directory, both sequences of identical records:
//!
//! * `snapshot.wal` — one record per user at the last compaction;
//! * `log.wal` — records appended since.
//!
//! Each record is a single line:
//!
//! ```text
//! W1 <payload_len> <fnv1a64_hex16> <payload>\n
//! ```
//!
//! where `<payload>` is exactly `payload_len` bytes of single-line JSON
//! (`{"op":"put","user":…,"version":…,"profile":…}` — the JSON renderer
//! escapes newlines, so a raw `\n` always terminates a record) and the
//! checksum is FNV-1a 64 over the payload bytes. The length prefix
//! detects torn tails cheaply; the checksum catches corruption within a
//! frame of plausible length.
//!
//! ## Crash model
//!
//! A crash can tear the *last* record (partial write). Recovery replays
//! each file and stops at the first record that fails framing, length,
//! checksum, or JSON validation — then **truncates the file at that
//! offset** so the next append starts from a clean boundary. Everything
//! before the torn tail is intact by construction (appends are a single
//! `write_all` + flush). By default the log is flushed to the OS on every
//! append but not fsync'd: the crash model is process death (SIGKILL),
//! not power loss; [`Wal::sync`] is available when the stronger guarantee
//! is worth the latency.
//!
//! Torn writes are *injectable* for tests via
//! [`FaultPlan`](cqp_storage::FaultPlan) in
//! [`FaultMode::TornWrite`](cqp_storage::FaultMode) mode: the nth append
//! writes only a prefix of its frame and returns an error, exactly what a
//! mid-write crash leaves behind.

use cqp_obs::Json;
use cqp_storage::{FaultPlan, WriteOutcome};
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Record magic: bump on incompatible format changes.
const MAGIC: &str = "W1";
/// Epoch-marker magic: a frame recording a replication-epoch advance
/// (`{"op":"epoch","epoch":N}` payload, same framing and checksum as
/// `W1`). Absent entirely from pre-epoch logs, which therefore recover
/// as epoch 0 — the backward-compatibility contract.
const EPOCH_MAGIC: &str = "E1";
/// Snapshot file name inside the WAL directory.
pub const SNAPSHOT_FILE: &str = "snapshot.wal";
/// Log file name inside the WAL directory.
pub const LOG_FILE: &str = "log.wal";

/// One replayed upsert.
#[derive(Debug, Clone, PartialEq)]
pub struct PutRecord {
    /// User id the profile belongs to.
    pub user: String,
    /// The user's version *after* this upsert.
    pub version: u64,
    /// The profile in `# cqp-profile v1` wire format.
    pub profile_text: String,
    /// Replication epoch the write was accepted under (0 for records
    /// written before the epoch protocol existed — the field is optional
    /// on the wire, so seed-format logs stay readable).
    pub epoch: u64,
}

/// One decoded WAL/replication frame: a profile upsert or an epoch
/// advance marker.
#[derive(Debug, Clone, PartialEq)]
pub enum WalFrame {
    /// A `W1` profile-upsert record.
    Put(PutRecord),
    /// An `E1` epoch marker: the log's epoch is `>= n` from here on.
    Epoch(u64),
}

/// What recovery found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Records replayed from `snapshot.wal`.
    pub snapshot_records: u64,
    /// Records replayed from `log.wal`.
    pub log_records: u64,
    /// Total payload + framing bytes of valid records replayed.
    pub bytes_replayed: u64,
    /// Bytes truncated off torn/corrupt tails (both files).
    pub torn_tail_bytes: u64,
    /// Checksummed records whose profile text failed to parse later —
    /// skipped, never fatal (counted by the caller, not here).
    pub parse_skipped: u64,
    /// Highest replication epoch recovered (from `E1` markers and the
    /// optional per-record epoch stamp). Pre-epoch logs recover as 0.
    pub epoch: u64,
    /// Wall-clock spent replaying, seconds.
    pub replay_secs: f64,
}

impl RecoveryReport {
    /// Total records replayed across snapshot and log.
    pub fn records_replayed(&self) -> u64 {
        self.snapshot_records + self.log_records
    }
}

/// A healed, appendable write-ahead log plus everything it replayed.
#[derive(Debug)]
pub struct OpenedWal {
    /// The log, positioned for appending.
    pub wal: Wal,
    /// Replayed records in apply order (snapshot first, then log).
    pub records: Vec<PutRecord>,
    /// Replay statistics.
    pub report: RecoveryReport,
}

/// Observer invoked with each successfully appended frame (full bytes,
/// including framing and trailing newline) *while the log lock is held*,
/// so observation order is exactly log order. This is the replication
/// shipping hook: the primary's sender writes the frame to the follower
/// socket and waits for its ack here, which is what makes an acked client
/// write provably present on the follower. Returning `Err` detaches the
/// listener (the follower is considered gone); the local append itself
/// has already succeeded and is unaffected.
pub type FrameListener = Arc<dyn Fn(&[u8]) -> io::Result<()> + Send + Sync>;

/// Holds the optional frame listener; manual `Debug` because closures
/// have none.
#[derive(Default)]
struct FrameListenerCell(Mutex<Option<FrameListener>>);

impl std::fmt::Debug for FrameListenerCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FrameListenerCell")
    }
}

/// Append handle over the WAL directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    log: Mutex<File>,
    fault: Option<Arc<FaultPlan>>,
    frame_listener: FrameListenerCell,
    appends: AtomicU64,
    append_errors: AtomicU64,
    bytes_appended: AtomicU64,
    bytes_since_compaction: AtomicU64,
    compactions: AtomicU64,
    /// Current replication epoch: max of every epoch recovered from disk
    /// and every epoch recorded/observed since. Monotone.
    epoch: AtomicU64,
}

impl Wal {
    /// Opens (creating if needed) the WAL in `dir`, heals torn tails, and
    /// returns the replayed records alongside the appendable log.
    pub fn open(dir: &Path) -> io::Result<OpenedWal> {
        std::fs::create_dir_all(dir)?;
        let t = Instant::now();
        let mut report = RecoveryReport::default();
        let mut records = Vec::new();
        for (file, is_snapshot) in [(SNAPSHOT_FILE, true), (LOG_FILE, false)] {
            let path = dir.join(file);
            if !path.exists() {
                continue;
            }
            let (recs, epoch, valid_bytes, total_bytes) = replay_file(&path)?;
            report.epoch = report.epoch.max(epoch);
            if valid_bytes < total_bytes {
                // Torn or corrupt tail: truncate to the last clean record
                // boundary so future appends start from a healthy file.
                report.torn_tail_bytes += total_bytes - valid_bytes;
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(valid_bytes)?;
            }
            report.bytes_replayed += valid_bytes;
            if is_snapshot {
                report.snapshot_records += recs.len() as u64;
            } else {
                report.log_records += recs.len() as u64;
            }
            records.extend(recs);
        }
        report.replay_secs = t.elapsed().as_secs_f64();
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(LOG_FILE))?;
        // Log bytes surviving recovery still await the next compaction.
        let live_log_bytes = log.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(OpenedWal {
            wal: Wal {
                dir: dir.to_path_buf(),
                log: Mutex::new(log),
                fault: None,
                frame_listener: FrameListenerCell::default(),
                appends: AtomicU64::new(0),
                append_errors: AtomicU64::new(0),
                bytes_appended: AtomicU64::new(0),
                bytes_since_compaction: AtomicU64::new(live_log_bytes),
                compactions: AtomicU64::new(0),
                epoch: AtomicU64::new(report.epoch),
            },
            records,
            report,
        })
    }

    /// Injects write faults from `plan` (see [`cqp_storage::FaultMode::TornWrite`]).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one upsert record. On success the record is fully written
    /// and flushed to the OS. A torn write (injected, or a genuine short
    /// write) leaves a partial frame behind and returns an error — the
    /// same state a crash mid-append produces, which recovery heals.
    pub fn append_put(&self, user: &str, version: u64, profile_text: &str) -> io::Result<()> {
        let frame = encode_put(
            user,
            version,
            profile_text,
            self.epoch.load(Ordering::Acquire),
        );
        let r = self.append_frame(&frame);
        match &r {
            Ok(()) => {
                self.appends.fetch_add(1, Ordering::Relaxed);
                self.bytes_appended
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                self.bytes_since_compaction
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        r
    }

    fn append_frame(&self, frame: &[u8]) -> io::Result<()> {
        let mut log = self.lock_log();
        if let Some(plan) = &self.fault {
            if let WriteOutcome::Torn { keep_bytes } = plan.on_write(frame.len() as u64) {
                let keep = keep_bytes as usize;
                log.write_all(&frame[..keep])?;
                log.flush()?;
                return Err(io::Error::other(format!(
                    "injected torn write: {keep} of {} bytes landed",
                    frame.len()
                )));
            }
        }
        log.write_all(frame)?;
        log.flush()?;
        // Ship the frame while still holding the log lock: the follower
        // sees frames in exactly log order, and a write acked to the
        // client has — by the time the ack leaves this function — already
        // been acked by the follower too (synchronous replication).
        let listener = self
            .frame_listener
            .0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        if let Some(listener) = listener {
            if listener(frame).is_err() {
                // The follower died mid-ship. Local durability holds;
                // detach so later appends stop paying the round-trip.
                *self
                    .frame_listener
                    .0
                    .lock()
                    .unwrap_or_else(|p| p.into_inner()) = None;
            }
        }
        Ok(())
    }

    /// Appends one already-encoded frame (a record received over the
    /// replication stream) verbatim. The caller has validated framing and
    /// checksum; counters advance exactly as for a local
    /// [`Wal::append_put`].
    pub fn append_raw_frame(&self, frame: &[u8]) -> io::Result<()> {
        let r = self.append_frame(frame);
        match &r {
            Ok(()) => {
                self.appends.fetch_add(1, Ordering::Relaxed);
                self.bytes_appended
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                self.bytes_since_compaction
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        r
    }

    /// Atomically snapshots the current WAL contents and installs `listener`
    /// as the frame observer: `send_history` receives every valid frame
    /// currently on disk (snapshot file first, then log) while the log lock
    /// blocks concurrent appends, so no frame is missed or duplicated
    /// between history and the live stream. If `send_history` fails the
    /// listener is *not* installed.
    pub fn attach_replica(
        &self,
        send_history: impl FnOnce(&[u8]) -> io::Result<()>,
        listener: FrameListener,
    ) -> io::Result<()> {
        let _log = self.lock_log();
        // Lead with an epoch header so the follower knows which epoch
        // this primary speaks *before* any record arrives — a follower
        // that already learned a higher epoch rejects the stream at
        // frame one instead of applying stale history.
        let mut history = encode_epoch(self.epoch.load(Ordering::Acquire));
        for file in [SNAPSHOT_FILE, LOG_FILE] {
            let path = self.dir.join(file);
            if !path.exists() {
                continue;
            }
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            // Ship only the valid prefix: a torn local tail (failed
            // append) must not stall the follower's frame decoder.
            let mut offset = 0usize;
            while let Some((_, next)) = decode_wal_frame(&buf, offset) {
                offset = next;
            }
            history.extend_from_slice(&buf[..offset]);
        }
        send_history(&history)?;
        *self
            .frame_listener
            .0
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = Some(listener);
        Ok(())
    }

    /// The current replication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Raises the epoch to whatever higher value was learned from an
    /// already-persisted source (a replicated `E1` frame appended via
    /// [`Wal::append_raw_frame`]). Never lowers it. Returns the epoch now
    /// in effect.
    pub fn observe_epoch(&self, epoch: u64) -> u64 {
        self.epoch.fetch_max(epoch, Ordering::AcqRel).max(epoch)
    }

    /// Durably records an epoch advance: appends an `E1` marker frame
    /// (fsync'd — epoch transitions are rare and must survive power
    /// loss), ships it to any attached follower through the ordinary
    /// frame listener, and raises the in-memory epoch. A no-op returning
    /// the current epoch if `epoch` is not an advance.
    pub fn record_epoch(&self, epoch: u64) -> io::Result<u64> {
        if epoch <= self.epoch.load(Ordering::Acquire) {
            return Ok(self.epoch.load(Ordering::Acquire));
        }
        let frame = encode_epoch(epoch);
        self.append_raw_frame(&frame)?;
        self.sync()?;
        Ok(self.observe_epoch(epoch))
    }

    /// Drops the frame listener (follower detached or promoted).
    pub fn detach_replica(&self) {
        *self
            .frame_listener
            .0
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = None;
    }

    /// Fsyncs the log file — upgrade from "survives process death" to
    /// "survives power loss" when a caller needs it.
    pub fn sync(&self) -> io::Result<()> {
        self.lock_log().sync_data()
    }

    /// Replaces the snapshot with `entries` (user → (version, profile
    /// text)) and truncates the log. The snapshot is written to a temp
    /// file, synced, and atomically renamed, so a crash during compaction
    /// loses nothing: either the old snapshot+log or the new snapshot is
    /// on disk.
    pub fn compact<'a>(
        &self,
        entries: impl Iterator<Item = (&'a str, u64, &'a str)>,
    ) -> io::Result<()> {
        let mut log = self.lock_log();
        let tmp = self.dir.join("snapshot.tmp");
        let epoch = self.epoch.load(Ordering::Acquire);
        {
            let mut f = File::create(&tmp)?;
            if epoch > 0 {
                // Carry the epoch across compaction: the log's E1 markers
                // are about to be truncated away.
                f.write_all(&encode_epoch(epoch))?;
            }
            for (user, version, text) in entries {
                f.write_all(&encode_put(user, version, text, epoch))?;
            }
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        // Fsync the directory: the rename itself must survive power loss,
        // or recovery could see the *old* snapshot next to a log we are
        // about to truncate.
        File::open(&self.dir)?.sync_all()?;
        // The snapshot now covers everything: restart the log.
        log.set_len(0)?;
        log.seek(SeekFrom::Start(0))?;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.bytes_since_compaction.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Log bytes written since the last compaction (seeded with whatever
    /// recovery left in `log.wal`) — the WAL-size gauge `/metrics` exports
    /// and the signal a compaction policy would trigger on.
    pub fn bytes_since_compaction(&self) -> u64 {
        self.bytes_since_compaction.load(Ordering::Relaxed)
    }

    /// `(appends, append_errors, bytes_appended, compactions)` counters.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.appends.load(Ordering::Relaxed),
            self.append_errors.load(Ordering::Relaxed),
            self.bytes_appended.load(Ordering::Relaxed),
            self.compactions.load(Ordering::Relaxed),
        )
    }

    fn lock_log(&self) -> std::sync::MutexGuard<'_, File> {
        self.log.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// FNV-1a 64 — the shared workspace hash ([`cqp_core::answer_cache::fnv1a`]),
/// the same stable function the session store shards and the answer cache
/// key with.
fn fnv1a(bytes: &[u8]) -> u64 {
    cqp_core::answer_cache::fnv1a(cqp_core::answer_cache::FNV_OFFSET, bytes)
}

/// Encodes one put record as a full frame (including the trailing `\n`).
/// The epoch stamp is omitted at epoch 0 so pre-epoch readers (and
/// byte-for-byte comparisons against seed-format logs) see the original
/// frame shape.
fn encode_put(user: &str, version: u64, profile_text: &str, epoch: u64) -> Vec<u8> {
    let mut fields = vec![
        ("op", Json::Str("put".into())),
        ("user", Json::Str(user.into())),
        ("version", Json::Num(version as f64)),
        ("profile", Json::Str(profile_text.into())),
    ];
    if epoch > 0 {
        fields.push(("epoch", Json::Num(epoch as f64)));
    }
    let payload = Json::obj(fields).render();
    let mut frame = format!(
        "{MAGIC} {} {:016x} ",
        payload.len(),
        fnv1a(payload.as_bytes())
    )
    .into_bytes();
    frame.extend_from_slice(payload.as_bytes());
    frame.push(b'\n');
    frame
}

/// Encodes an `E1` epoch-marker frame (including the trailing `\n`).
pub fn encode_epoch(epoch: u64) -> Vec<u8> {
    let payload = Json::obj(vec![
        ("op", Json::Str("epoch".into())),
        ("epoch", Json::Num(epoch as f64)),
    ])
    .render();
    let mut frame = format!(
        "{EPOCH_MAGIC} {} {:016x} ",
        payload.len(),
        fnv1a(payload.as_bytes())
    )
    .into_bytes();
    frame.extend_from_slice(payload.as_bytes());
    frame.push(b'\n');
    frame
}

/// Parses one frame of either type starting at `buf[offset..]`. Returns
/// the frame and the offset just past its trailing newline, or `None` if
/// the bytes at `offset` are not a complete valid frame (torn tail /
/// corruption — or, on the replication stream, simply "not fully arrived
/// yet").
pub fn decode_wal_frame(buf: &[u8], offset: usize) -> Option<(WalFrame, usize)> {
    let rest = &buf[offset..];
    let nl = rest.iter().position(|b| *b == b'\n')?;
    let line = std::str::from_utf8(&rest[..nl]).ok()?;
    let mut parts = line.splitn(4, ' ');
    let magic = parts.next()?;
    if magic != MAGIC && magic != EPOCH_MAGIC {
        return None;
    }
    let len: usize = parts.next()?.parse().ok()?;
    let checksum = u64::from_str_radix(parts.next()?, 16).ok()?;
    let payload = parts.next()?;
    if payload.len() != len || fnv1a(payload.as_bytes()) != checksum {
        return None;
    }
    let json = crate::json::parse(payload).ok()?;
    let next = offset + nl + 1;
    if magic == EPOCH_MAGIC {
        if json.get("op")?.as_str()? != "epoch" {
            return None;
        }
        return Some((WalFrame::Epoch(json.get("epoch")?.as_u64()?), next));
    }
    if json.get("op")?.as_str()? != "put" {
        return None;
    }
    Some((
        WalFrame::Put(PutRecord {
            user: json.get("user")?.as_str()?.to_string(),
            version: json.get("version")?.as_u64()?,
            profile_text: json.get("profile")?.as_str()?.to_string(),
            epoch: json.get("epoch").and_then(Json::as_u64).unwrap_or(0),
        }),
        next,
    ))
}

/// Parses one `W1` put frame at `buf[offset..]` — `None` for anything
/// else, including valid `E1` markers. Kept for callers that only care
/// about records; stream decoders should use [`decode_wal_frame`].
pub fn decode_frame(buf: &[u8], offset: usize) -> Option<(PutRecord, usize)> {
    match decode_wal_frame(buf, offset)? {
        (WalFrame::Put(rec), next) => Some((rec, next)),
        _ => None,
    }
}

/// Replays `path`, returning `(records, epoch, valid_bytes, total_bytes)`
/// where `valid_bytes` is the clean prefix length (everything past it is
/// torn tail or corruption the caller should truncate) and `epoch` is the
/// highest epoch seen in the valid prefix.
fn replay_file(path: &Path) -> io::Result<(Vec<PutRecord>, u64, u64, u64)> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let mut records = Vec::new();
    let mut epoch = 0u64;
    let mut offset = 0usize;
    while offset < buf.len() {
        match decode_wal_frame(&buf, offset) {
            Some((WalFrame::Put(rec), next)) => {
                epoch = epoch.max(rec.epoch);
                records.push(rec);
                offset = next;
            }
            Some((WalFrame::Epoch(e), next)) => {
                epoch = epoch.max(e);
                offset = next;
            }
            None => break,
        }
    }
    Ok((records, epoch, offset as u64, buf.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_storage::FaultMode;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cqp-wal-{tag}-{}-{}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-")
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    const PROFILE: &str = "# cqp-profile v1\nprofile al\nselect 0.7 GENRE.genre eq \"comedy\"\n";

    #[test]
    fn roundtrip_append_and_replay() {
        let dir = tmpdir("roundtrip");
        {
            let opened = Wal::open(&dir).unwrap();
            assert!(opened.records.is_empty());
            opened.wal.append_put("al", 1, PROFILE).unwrap();
            opened.wal.append_put("bo", 1, PROFILE).unwrap();
            opened.wal.append_put("al", 2, PROFILE).unwrap();
            assert_eq!(opened.wal.counters().0, 3);
        }
        let opened = Wal::open(&dir).unwrap();
        assert_eq!(opened.records.len(), 3);
        assert_eq!(opened.report.log_records, 3);
        assert_eq!(opened.report.torn_tail_bytes, 0);
        assert_eq!(opened.records[2].user, "al");
        assert_eq!(opened.records[2].version, 2);
        assert_eq!(opened.records[2].profile_text, PROFILE);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tmpdir("torn");
        {
            let opened = Wal::open(&dir).unwrap();
            opened.wal.append_put("al", 1, PROFILE).unwrap();
            opened.wal.append_put("bo", 1, PROFILE).unwrap();
        }
        // Tear the tail at every byte boundary inside the last record.
        let log_path = dir.join(LOG_FILE);
        let full = std::fs::read(&log_path).unwrap();
        let first_len = decode_frame(&full, 0).unwrap().1;
        for cut in first_len..full.len() - 1 {
            std::fs::write(&log_path, &full[..cut]).unwrap();
            let opened = Wal::open(&dir).unwrap();
            assert_eq!(opened.records.len(), 1, "cut at {cut}");
            assert_eq!(opened.report.torn_tail_bytes, (cut - first_len) as u64);
            // The file was healed: appending after recovery yields a
            // clean two-record log again.
            opened.wal.append_put("cy", 1, PROFILE).unwrap();
            let reopened = Wal::open(&dir).unwrap();
            assert_eq!(reopened.records.len(), 2, "cut at {cut}");
            assert_eq!(reopened.records[1].user, "cy");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_torn_write_matches_crash_shape() {
        let dir = tmpdir("inject");
        let opened = Wal::open(&dir).unwrap();
        let plan = Arc::new(FaultPlan::new(
            1,
            FaultMode::TornWrite {
                nth: 1,
                keep_bytes: 7,
            },
        ));
        let wal = opened.wal.with_fault_plan(Arc::clone(&plan));
        wal.append_put("al", 1, PROFILE).unwrap();
        let err = wal.append_put("bo", 1, PROFILE);
        assert!(err.is_err());
        assert_eq!(plan.writes_torn(), 1);
        assert_eq!(wal.counters().1, 1); // one append error
        drop(wal);
        let opened = Wal::open(&dir).unwrap();
        assert_eq!(opened.records.len(), 1);
        assert_eq!(opened.report.torn_tail_bytes, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_byte_mid_tail_truncates_from_there() {
        let dir = tmpdir("corrupt");
        {
            let opened = Wal::open(&dir).unwrap();
            opened.wal.append_put("al", 1, PROFILE).unwrap();
            opened.wal.append_put("bo", 1, PROFILE).unwrap();
        }
        let log_path = dir.join(LOG_FILE);
        let mut bytes = std::fs::read(&log_path).unwrap();
        let second_start = decode_frame(&bytes, 0).unwrap().1;
        // Flip a payload byte of the second record: its checksum fails.
        let n = bytes.len();
        bytes[second_start + 25] ^= 0xFF;
        std::fs::write(&log_path, &bytes).unwrap();
        let opened = Wal::open(&dir).unwrap();
        assert_eq!(opened.records.len(), 1);
        assert_eq!(opened.report.torn_tail_bytes, (n - second_start) as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_snapshots_and_truncates_log() {
        let dir = tmpdir("compact");
        let opened = Wal::open(&dir).unwrap();
        let wal = opened.wal;
        for v in 1..=5 {
            wal.append_put("al", v, PROFILE).unwrap();
        }
        wal.compact([("al", 5u64, PROFILE)].into_iter()).unwrap();
        // Log restarted; appends land after the snapshot.
        wal.append_put("bo", 1, PROFILE).unwrap();
        drop(wal);
        let opened = Wal::open(&dir).unwrap();
        assert_eq!(opened.report.snapshot_records, 1);
        assert_eq!(opened.report.log_records, 1);
        let users: Vec<_> = opened.records.iter().map(|r| r.user.as_str()).collect();
        assert_eq!(users, ["al", "bo"]);
        assert_eq!(opened.records[0].version, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bytes_since_compaction_tracks_log_growth_and_resets() {
        let dir = tmpdir("since-compact");
        {
            let opened = Wal::open(&dir).unwrap();
            let wal = opened.wal;
            assert_eq!(wal.bytes_since_compaction(), 0);
            wal.append_put("al", 1, PROFILE).unwrap();
            wal.append_put("al", 2, PROFILE).unwrap();
            let grown = wal.bytes_since_compaction();
            assert!(grown > 0);
            wal.compact([("al", 2u64, PROFILE)].into_iter()).unwrap();
            assert_eq!(wal.bytes_since_compaction(), 0);
            wal.append_put("bo", 1, PROFILE).unwrap();
            assert!(wal.bytes_since_compaction() > 0);
            assert!(wal.bytes_since_compaction() < grown);
        }
        // Reopen: the surviving log bytes seed the gauge.
        let opened = Wal::open(&dir).unwrap();
        let log_len = std::fs::metadata(dir.join(LOG_FILE)).unwrap().len();
        assert_eq!(opened.wal.bytes_since_compaction(), log_len);
        assert!(log_len > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_markers_are_durable_and_survive_compaction() {
        let dir = tmpdir("epoch");
        {
            let opened = Wal::open(&dir).unwrap();
            assert_eq!(opened.wal.epoch(), 0);
            opened.wal.append_put("al", 1, PROFILE).unwrap();
            assert_eq!(opened.wal.record_epoch(3).unwrap(), 3);
            // Not an advance: ignored.
            assert_eq!(opened.wal.record_epoch(2).unwrap(), 3);
            opened.wal.append_put("al", 2, PROFILE).unwrap();
        }
        let opened = Wal::open(&dir).unwrap();
        assert_eq!(opened.report.epoch, 3);
        assert_eq!(opened.wal.epoch(), 3);
        assert_eq!(opened.records.len(), 2);
        // Records carry the epoch they were accepted under.
        assert_eq!(opened.records[0].epoch, 0);
        assert_eq!(opened.records[1].epoch, 3);
        // Compaction truncates the log's E1 marker but re-seeds it in the
        // snapshot.
        opened
            .wal
            .compact([("al", 2u64, PROFILE)].into_iter())
            .unwrap();
        drop(opened);
        let opened = Wal::open(&dir).unwrap();
        assert_eq!(opened.report.epoch, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_epoch_seed_format_recovers_as_epoch_zero() {
        let dir = tmpdir("pre-epoch");
        std::fs::create_dir_all(&dir).unwrap();
        // A seed-format frame: no `epoch` field, no E1 markers.
        let payload = Json::obj(vec![
            ("op", Json::Str("put".into())),
            ("user", Json::Str("al".into())),
            ("version", Json::Num(1.0)),
            ("profile", Json::Str(PROFILE.into())),
        ])
        .render();
        let frame = format!(
            "{MAGIC} {} {:016x} {payload}\n",
            payload.len(),
            fnv1a(payload.as_bytes())
        );
        std::fs::write(dir.join(LOG_FILE), frame).unwrap();
        let opened = Wal::open(&dir).unwrap();
        assert_eq!(opened.records.len(), 1);
        assert_eq!(opened.records[0].epoch, 0);
        assert_eq!(opened.report.epoch, 0);
        assert_eq!(opened.report.torn_tail_bytes, 0);
        // And epoch-0 appends reproduce the seed frame shape exactly.
        let reencoded = encode_put("al", 1, PROFILE, 0);
        let on_disk = std::fs::read(dir.join(LOG_FILE)).unwrap();
        assert_eq!(reencoded, on_disk);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn frame_survives_newlines_and_quotes_in_profile_text() {
        let dir = tmpdir("escape");
        let tricky = "# cqp-profile v1\nprofile q\nselect 0.5 GENRE.genre eq \"a\\\"b\"\n";
        let opened = Wal::open(&dir).unwrap();
        opened.wal.append_put("q\"user\"", 1, tricky).unwrap();
        drop(opened);
        let opened = Wal::open(&dir).unwrap();
        assert_eq!(opened.records.len(), 1);
        assert_eq!(opened.records[0].user, "q\"user\"");
        assert_eq!(opened.records[0].profile_text, tricky);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
