//! WAL shipping: synchronous primary → follower replication.
//!
//! The on-disk WAL format (`W1 <len> <fnv1a64> <payload>\n`, see
//! [`crate::wal`]) doubles as the wire format: the primary ships every
//! appended frame verbatim over one TCP stream, and the follower's
//! decoder is the same [`decode_frame`] recovery uses — a frame that
//! hasn't fully arrived looks exactly like a torn tail and simply waits
//! for more bytes. Replication correctness therefore rides on the same
//! checksummed framing the crash-recovery differential already proves.
//!
//! ## Protocol
//!
//! One follower connects to the primary's replication listener. The
//! primary sends, in order:
//!
//! 1. **History** — every valid frame currently on disk (snapshot file
//!    then log), captured under the WAL log lock so the boundary between
//!    history and live stream is exact (no gap, no duplicate).
//! 2. **Live frames** — each subsequent append, shipped from inside the
//!    WAL's frame listener *while the log lock is held*.
//!
//! The follower applies each decoded frame to its store (and its own
//! WAL) and answers with a single ack byte `a`. The primary's frame
//! listener blocks until the cumulative ack count covers the frame it
//! just shipped. Because that happens before the client's `200` is
//! written, **an acknowledged profile write is on the follower by the
//! time the client sees the ack** — the zero-lost-acked-writes guarantee
//! is by construction, not by luck, and holds under SIGKILL at any
//! instant.
//!
//! ## Failover and epoch fencing
//!
//! Roles start static per process (`--follow` makes a follower) with two
//! transitions: `POST /admin/promote` flips a follower (or a fenced
//! replica) to primary, and **fencing** flips a primary to
//! [`Role::Fenced`] the moment it learns a higher epoch exists.
//!
//! Every promotion advances a monotone **epoch**, durably recorded in
//! the WAL as an `E1` marker before the new primary accepts a write.
//! The epoch travels three ways:
//!
//! * stamped on every shipped `W1` frame and announced at stream attach
//!   (so a follower rejects streams from a lower-epoch primary),
//! * carried by the router on every proxied write and health probe as
//!   the `x-cqp-epoch` header,
//! * returned by `/healthz/ready`, `/admin/promote`, and `/metrics`.
//!
//! A replica that sees a **higher** epoch than its own adopts it durably
//! and — if it was primary — self-demotes to fenced; fenced replicas
//! answer writes with `503 stale_epoch`. A replica that sees a write
//! carrying a **lower** epoch rejects it too (the sender's view is
//! stale). Together these make the split-brain outcome one-sided by
//! construction: once a follower is promoted at epoch `e+1`, the old
//! primary can never accept another epoch-carried write — the first such
//! write (or probe) fences it.

use crate::session::SessionStore;
use crate::wal::{decode_wal_frame, FrameListener, Wal, WalFrame};
use cqp_storage::Catalog;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long the primary waits for a follower ack before declaring the
/// follower dead and detaching it. Generous: loopback acks take
/// microseconds, so only a truly wedged follower trips this.
const ACK_TIMEOUT: Duration = Duration::from_secs(5);

/// How long a booting follower keeps retrying its primary connection
/// (the primary's replication listener may bind a moment later).
const CONNECT_RETRY_WINDOW: Duration = Duration::from_secs(10);

/// Which side of the replication stream this process is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes; ships its WAL to an attached follower.
    Primary = 0,
    /// Applies the primary's stream; rejects direct writes until promoted.
    Follower = 1,
    /// A demoted ex-primary: learned a higher epoch exists, so every
    /// write is refused with `stale_epoch` until (re-)promoted.
    Fenced = 2,
}

impl Role {
    /// Stable lowercase tag for `/healthz/ready` and `/metrics`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Follower => "follower",
            Role::Fenced => "fenced",
        }
    }
}

/// The outcome of [`Repl::gate_write`]: whether a profile write may
/// proceed on this replica, and if not, which typed rejection applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteGate {
    /// This replica is the primary at the write's epoch: proceed.
    Allow,
    /// A plain follower: the router should be writing to the primary.
    NotPrimary,
    /// Epoch mismatch — the replica is fenced, or the write carried a
    /// different epoch than the replica's. `own` is the replica's epoch
    /// after any adoption triggered by the check.
    StaleEpoch {
        /// The replica's (possibly just-advanced) epoch.
        own: u64,
    },
}

/// The outcome of [`Repl::promote_to`].
#[derive(Debug, Clone, Copy)]
pub struct PromoteOutcome {
    /// Whether this call changed anything (role flip or epoch advance).
    pub promoted: bool,
    /// The replica's epoch after the call.
    pub epoch: u64,
}

/// Replication state shared between the server handlers, the shipping
/// listener, and the follower's apply thread.
#[derive(Debug)]
pub struct Repl {
    role: AtomicU8,
    /// Frames written to the follower socket (history + live).
    sent: Arc<AtomicU64>,
    /// Acks drained from the follower (≤ sent; lag = sent - acked).
    acked: Arc<AtomicU64>,
    /// Live frames shipped *and* acked through the frame listener.
    shipped: AtomicU64,
    /// Frames applied from the stream while following.
    received: AtomicU64,
    /// Follower → primary promotions.
    failovers: AtomicU64,
    /// Writes refused with `stale_epoch` (fenced replica or epoch
    /// mismatch on the `x-cqp-epoch` header).
    fenced_writes: AtomicU64,
    /// Replication frames refused because the stream's epoch fell behind
    /// this replica's.
    fenced_frames: AtomicU64,
    /// The WAL whose epoch this replica speaks (and records advances to).
    wal: Arc<Wal>,
    /// Serializes role/epoch transitions (promote vs. observe races).
    transition: Mutex<()>,
    /// Bound address of the replication listener, when primary-capable.
    repl_addr: Mutex<Option<SocketAddr>>,
    /// The follower's stream socket, kept so promotion can sever it.
    follow_conn: Mutex<Option<TcpStream>>,
    stopping: AtomicBool,
}

impl Repl {
    fn new(role: Role, wal: Arc<Wal>) -> Self {
        Repl {
            role: AtomicU8::new(role as u8),
            sent: Arc::new(AtomicU64::new(0)),
            acked: Arc::new(AtomicU64::new(0)),
            shipped: AtomicU64::new(0),
            received: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            fenced_writes: AtomicU64::new(0),
            fenced_frames: AtomicU64::new(0),
            wal,
            transition: Mutex::new(()),
            repl_addr: Mutex::new(None),
            follow_conn: Mutex::new(None),
            stopping: AtomicBool::new(false),
        }
    }

    /// This process's current role.
    pub fn role(&self) -> Role {
        match self.role.load(Ordering::SeqCst) {
            x if x == Role::Follower as u8 => Role::Follower,
            x if x == Role::Fenced as u8 => Role::Fenced,
            _ => Role::Primary,
        }
    }

    /// The replication epoch this replica speaks (delegates to the WAL,
    /// where the value is durably recovered from).
    pub fn epoch(&self) -> u64 {
        self.wal.epoch()
    }

    /// Where followers connect, once the listener is bound.
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        *self.repl_addr.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// `(shipped, received, failovers)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.shipped.load(Ordering::Relaxed),
            self.received.load(Ordering::Relaxed),
            self.failovers.load(Ordering::Relaxed),
        )
    }

    /// Frames written to the follower but not yet acked. Synchronous
    /// shipping keeps this at 0 between appends; it is nonzero only
    /// inside an append or when the follower has died mid-stream.
    pub fn lag_records(&self) -> u64 {
        self.sent
            .load(Ordering::Relaxed)
            .saturating_sub(self.acked.load(Ordering::Relaxed))
    }

    /// Promotes a follower to primary: stops consuming the stream and
    /// lets profile writes through. Idempotent — promoting a primary is
    /// a no-op returning `false`. Equivalent to
    /// `promote_to(None).promoted`.
    pub fn promote(&self) -> bool {
        self.promote_to(None).promoted
    }

    /// Promotes this replica to primary at a **higher epoch**, durably
    /// recording the advance (`E1` marker, fsync'd) before any write can
    /// be accepted under it.
    ///
    /// With `target: Some(e)` the promotion succeeds only if `e` is
    /// strictly above the replica's current epoch — a router racing two
    /// promotions at the same target therefore crowns at most one
    /// winner. With `None` the epoch advances to `own + 1` when the role
    /// actually flips (follower/fenced → primary); promoting a primary
    /// with no target stays a no-op.
    pub fn promote_to(&self, target: Option<u64>) -> PromoteOutcome {
        let _t = self.transition.lock().unwrap_or_else(|p| p.into_inner());
        let own = self.epoch();
        let role = self.role();
        let new_epoch = match target {
            Some(t) if t <= own => {
                return PromoteOutcome {
                    promoted: false,
                    epoch: own,
                }
            }
            Some(t) => t,
            None if role == Role::Primary => {
                return PromoteOutcome {
                    promoted: false,
                    epoch: own,
                }
            }
            None => own + 1,
        };
        // Durability first: the epoch advance must be on disk before the
        // role flip lets a write through under it.
        if let Err(e) = self.wal.record_epoch(new_epoch) {
            eprintln!("repl: failed to record epoch {new_epoch}: {e}");
            return PromoteOutcome {
                promoted: false,
                epoch: own,
            };
        }
        self.role.store(Role::Primary as u8, Ordering::SeqCst);
        if role != Role::Primary {
            self.failovers.fetch_add(1, Ordering::Relaxed);
            // Sever the stream so the apply thread exits even if the
            // (dead) primary never closes its end.
            if let Some(conn) = self
                .follow_conn
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take()
            {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
        }
        PromoteOutcome {
            promoted: true,
            epoch: new_epoch,
        }
    }

    /// Folds an epoch learned from the outside (an `x-cqp-epoch` request
    /// or probe header) into this replica: a higher epoch is adopted
    /// durably, and a primary seeing one **self-demotes to fenced** — it
    /// can never accept another write at its stale epoch. Returns the
    /// epoch now in effect.
    pub fn observe_epoch(&self, seen: u64) -> u64 {
        if seen <= self.epoch() {
            return self.epoch();
        }
        let _t = self.transition.lock().unwrap_or_else(|p| p.into_inner());
        let own = self.epoch();
        if seen <= own {
            return own;
        }
        if let Err(e) = self.wal.record_epoch(seen) {
            eprintln!("repl: failed to record observed epoch {seen}: {e}");
        }
        if self.role() == Role::Primary {
            self.role.store(Role::Fenced as u8, Ordering::SeqCst);
        }
        seen
    }

    /// Decides whether a profile write may proceed here, folding in the
    /// write's `x-cqp-epoch` header when present. Counts every
    /// `stale_epoch` rejection in [`Repl::fenced_counters`].
    pub fn gate_write(&self, header_epoch: Option<u64>) -> WriteGate {
        if let Some(h) = header_epoch {
            // Higher epoch: adopt it (demoting ourselves if primary).
            self.observe_epoch(h);
            if h < self.epoch() {
                // The *sender* is stale: refuse rather than accept a
                // write routed under a superseded view of the group.
                self.fenced_writes.fetch_add(1, Ordering::Relaxed);
                return WriteGate::StaleEpoch { own: self.epoch() };
            }
        }
        match self.role() {
            Role::Primary => WriteGate::Allow,
            Role::Follower => WriteGate::NotPrimary,
            Role::Fenced => {
                self.fenced_writes.fetch_add(1, Ordering::Relaxed);
                WriteGate::StaleEpoch { own: self.epoch() }
            }
        }
    }

    /// `(fenced_writes, fenced_frames)` — writes refused `stale_epoch`
    /// and replication frames refused for falling behind the epoch.
    pub fn fenced_counters(&self) -> (u64, u64) {
        (
            self.fenced_writes.load(Ordering::Relaxed),
            self.fenced_frames.load(Ordering::Relaxed),
        )
    }

    /// Unblocks and retires the replication accept loop (server shutdown).
    pub fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        if let Some(addr) = self.repl_addr() {
            let _ = TcpStream::connect(addr);
        }
        if let Some(conn) = self
            .follow_conn
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Starts the primary-side replication listener on `listen_addr`: each
/// accepted follower gets the WAL history and then the live frame
/// stream. The newest follower wins; attaching a new one detaches the
/// previous. Returns the shared [`Repl`] with the bound address filled in.
pub fn start_primary(listen_addr: &str, wal: Arc<Wal>) -> io::Result<Arc<Repl>> {
    let listener = TcpListener::bind(listen_addr)?;
    let addr = listener.local_addr()?;
    let repl = Arc::new(Repl::new(Role::Primary, Arc::clone(&wal)));
    *repl.repl_addr.lock().unwrap_or_else(|p| p.into_inner()) = Some(addr);
    let accept_repl = Arc::clone(&repl);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_repl.stopping.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            if let Err(e) = attach_follower(&accept_repl, &wal, stream) {
                eprintln!("repl: follower attach failed: {e}");
            }
        }
    });
    Ok(repl)
}

/// One attached follower: the write half plus the ack reader, locked
/// together so ship/ack pairs from the frame listener stay ordered.
struct FollowerConn {
    stream: TcpStream,
}

/// Sends the WAL history to a newly connected follower and installs the
/// live frame listener.
fn attach_follower(repl: &Arc<Repl>, wal: &Arc<Wal>, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(ACK_TIMEOUT))?;
    stream.set_write_timeout(Some(ACK_TIMEOUT))?;
    // A new follower restarts the ship/ack ledger.
    repl.sent.store(0, Ordering::SeqCst);
    repl.acked.store(0, Ordering::SeqCst);
    let sent = Arc::clone(&repl.sent);
    let acked = Arc::clone(&repl.acked);
    let conn = Mutex::new(FollowerConn {
        stream: stream.try_clone()?,
    });
    let mut history_stream = stream;
    let hist_sent = Arc::clone(&repl.sent);
    let listener_repl = Arc::clone(repl);
    let listener: FrameListener = Arc::new(move |frame: &[u8]| {
        let mut c = conn.lock().unwrap_or_else(|p| p.into_inner());
        c.stream.write_all(frame)?;
        let target = sent.fetch_add(1, Ordering::SeqCst) + 1;
        // Drain acks (history acks lazily, this frame's synchronously):
        // returning Ok means the follower has applied everything up to
        // and including this frame.
        while acked.load(Ordering::SeqCst) < target {
            let mut b = [0u8; 1];
            c.stream.read_exact(&mut b)?;
            if b[0] != b'a' {
                return Err(io::Error::other("repl: bad ack byte from follower"));
            }
            acked.fetch_add(1, Ordering::SeqCst);
        }
        listener_repl.shipped.fetch_add(1, Ordering::Relaxed);
        Ok(())
    });
    wal.attach_replica(
        |history| {
            history_stream.write_all(history)?;
            // Preload the ledger with the history frame count (puts and
            // epoch markers both ack); their acks drain on the first
            // live ship.
            let mut frames = 0u64;
            let mut offset = 0usize;
            while let Some((_, next)) = decode_wal_frame(history, offset) {
                offset = next;
                frames += 1;
            }
            hist_sent.store(frames, Ordering::SeqCst);
            Ok(())
        },
        listener,
    )
}

/// Starts the follower side: connects to the primary's replication
/// listener at `primary_addr` (retrying briefly while it boots), applies
/// every decoded frame to `store`, and acks each one. The apply thread
/// exits when the stream closes, errors, or the process is promoted.
pub fn start_follower(
    primary_addr: String,
    store: Arc<SessionStore>,
    catalog: Catalog,
) -> io::Result<Arc<Repl>> {
    let wal = Arc::clone(store.wal().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "follower requires a durable store (the stream is journaled)",
        )
    })?);
    let repl = Arc::new(Repl::new(Role::Follower, wal));
    let stream = connect_with_retry(&primary_addr)?;
    stream.set_nodelay(true).ok();
    // Short poll so a promoted follower notices within one tick even if
    // the dead primary's socket never closes.
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    *repl.follow_conn.lock().unwrap_or_else(|p| p.into_inner()) = Some(stream.try_clone()?);
    let apply_repl = Arc::clone(&repl);
    std::thread::spawn(move || {
        if let Err(e) = follow_loop(&apply_repl, stream, &store, &catalog) {
            if apply_repl.role() == Role::Follower {
                eprintln!("repl: stream from primary ended: {e}");
            }
        }
    });
    Ok(repl)
}

fn connect_with_retry(addr: &str) -> io::Result<TcpStream> {
    let deadline = std::time::Instant::now() + CONNECT_RETRY_WINDOW;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if std::time::Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// The follower's apply loop: incremental [`decode_wal_frame`] over a
/// growing buffer — exactly the recovery decoder, fed by the socket.
///
/// The stream's epoch is whatever the latest `E1` marker announced (the
/// primary leads every attach with one). If this replica's own epoch
/// ever exceeds the stream's — it learned of a newer primary via a
/// heartbeat, or the stream announces a lower epoch outright — the loop
/// **rejects the frame without acking and severs the stream**: a stale
/// primary cannot feed a follower that knows better.
fn follow_loop(
    repl: &Arc<Repl>,
    mut stream: TcpStream,
    store: &SessionStore,
    catalog: &Catalog,
) -> io::Result<()> {
    let mut ack_stream = stream.try_clone()?;
    let mut buf: Vec<u8> = Vec::new();
    let mut offset = 0usize;
    let mut chunk = [0u8; 64 * 1024];
    let mut stream_epoch = 0u64;
    loop {
        if repl.role() != Role::Follower {
            return Ok(()); // promoted: stop consuming
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err(io::Error::other("primary closed the stream")),
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue; // poll tick — re-check the role
            }
            Err(e) => return Err(e),
        };
        buf.extend_from_slice(&chunk[..n]);
        while let Some((frame, next)) = decode_wal_frame(&buf, offset) {
            if let WalFrame::Epoch(e) = &frame {
                stream_epoch = stream_epoch.max(*e);
            }
            if stream_epoch < repl.epoch() {
                // The primary on the far end speaks a superseded epoch.
                // No apply, no ack; drop the link.
                repl.fenced_frames.fetch_add(1, Ordering::Relaxed);
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return Err(io::Error::other(format!(
                    "rejecting stream at epoch {stream_epoch} (own epoch {})",
                    repl.epoch()
                )));
            }
            match &frame {
                WalFrame::Epoch(e) => {
                    // Journal the marker so the advance survives a
                    // restart of this follower too.
                    if let Some(wal) = store.wal() {
                        let _ = wal.append_raw_frame(&buf[offset..next]);
                    }
                    repl.wal.observe_epoch(*e);
                }
                WalFrame::Put(rec) => {
                    // Apply before acking: an acked frame is queryable.
                    if store
                        .apply_replicated(&buf[offset..next], rec, catalog)
                        .is_err()
                    {
                        // A checksummed record whose profile no longer
                        // parses — same stance as recovery: skip, stay
                        // available.
                    }
                }
            }
            repl.received.fetch_add(1, Ordering::Relaxed);
            ack_stream.write_all(b"a")?;
            offset = next;
        }
        // Reclaim the applied prefix so the buffer stays bounded by one
        // in-flight frame, not the whole history.
        if offset > 0 {
            buf.drain(..offset);
            offset = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_storage::{DataType, RelationSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(RelationSchema::new(
            "MOVIE",
            vec![("mid", DataType::Int), ("title", DataType::Str)],
        ))
        .unwrap();
        c.add_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        c
    }

    const WIRE: &str = "# cqp-profile v1\nprofile al\nselect 0.7 GENRE.genre eq \"comedy\"\n";

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cqp-repl-{tag}-{}-{}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-")
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// End-to-end in-process shipping: writes on the primary store appear
    /// on the follower store (history + live), dumps bit-identical.
    #[test]
    fn ships_history_and_live_frames() {
        let c = catalog();
        let (p_dir, f_dir) = (tmpdir("ship-p"), tmpdir("ship-f"));
        let (primary, _) = SessionStore::recover(4, &p_dir, &c).unwrap();
        // History: two writes before the follower exists.
        primary
            .upsert_text("al", WIRE, &c, crate::session::UpsertMode::Replace)
            .unwrap();
        primary
            .upsert_text("bo", WIRE, &c, crate::session::UpsertMode::Replace)
            .unwrap();
        let wal = Arc::clone(primary.wal().unwrap());
        let repl = start_primary("127.0.0.1:0", wal).unwrap();
        let (follower, _) = SessionStore::recover(4, &f_dir, &c).unwrap();
        let follower = Arc::new(follower);
        let f_repl = start_follower(
            repl.repl_addr().unwrap().to_string(),
            Arc::clone(&follower),
            c.clone(),
        )
        .unwrap();
        // Wait for history to apply (an E1 epoch header plus the two
        // records). Once it has, the frame listener is provably installed
        // (install happens under the same log lock appends take, before
        // any live append can proceed).
        let t0 = std::time::Instant::now();
        while f_repl.counters().1 < 3 {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "history never applied"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // Live: the upsert returning means the follower acked, so the
        // follower store is already current.
        primary
            .upsert_text("al", WIRE, &c, crate::session::UpsertMode::Replace)
            .unwrap();
        primary
            .upsert_text("cy", WIRE, &c, crate::session::UpsertMode::Replace)
            .unwrap();
        assert_eq!(follower.dump(&c), primary.dump(&c));
        assert_eq!(follower.get("al").unwrap().version, 2);
        assert_eq!(repl.lag_records(), 0);
        assert_eq!(repl.counters().0, 2); // two live frames shipped+acked
        assert_eq!(f_repl.counters().1, 5); // epoch header + four records
                                            // The follower journaled the stream to its own WAL: a recovery
                                            // from the follower's directory reproduces the same store.
        drop(f_repl);
        let (recovered, _) = SessionStore::recover(4, &f_dir, &c).unwrap();
        assert_eq!(recovered.dump(&c), primary.dump(&c));
        let _ = std::fs::remove_dir_all(&p_dir);
        let _ = std::fs::remove_dir_all(&f_dir);
    }

    /// Promotion flips the role once, counts a failover, and the promoted
    /// store accepts its own (version-bumping) writes on top of the
    /// replicated state.
    #[test]
    fn promote_stops_following_and_accepts_writes() {
        let c = catalog();
        let (p_dir, f_dir) = (tmpdir("promote-p"), tmpdir("promote-f"));
        let (primary, _) = SessionStore::recover(4, &p_dir, &c).unwrap();
        let wal = Arc::clone(primary.wal().unwrap());
        let repl = start_primary("127.0.0.1:0", wal).unwrap();
        let (follower, _) = SessionStore::recover(4, &f_dir, &c).unwrap();
        let follower = Arc::new(follower);
        let f_repl = start_follower(
            repl.repl_addr().unwrap().to_string(),
            Arc::clone(&follower),
            c.clone(),
        )
        .unwrap();
        primary
            .upsert_text("al", WIRE, &c, crate::session::UpsertMode::Replace)
            .unwrap();
        // Wait until the put frame has crossed — frame 2, after the E1
        // epoch header (it may have shipped as history if the write beat
        // the attach).
        let t0 = std::time::Instant::now();
        while f_repl.counters().1 < 2 {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "frame never applied"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(f_repl.role(), Role::Follower);
        assert_eq!(f_repl.epoch(), 0);
        assert!(f_repl.promote());
        assert!(!f_repl.promote()); // idempotent
        assert_eq!(f_repl.role(), Role::Primary);
        assert_eq!(f_repl.counters().2, 1);
        // Promotion advanced the epoch and recorded it durably.
        assert_eq!(f_repl.epoch(), 1);
        // The promoted store continues the version chain from the
        // replicated state: al is at 1, the next write bumps to 2.
        let (v, _) = follower
            .upsert_text("al", WIRE, &c, crate::session::UpsertMode::Replace)
            .unwrap();
        assert_eq!(v, 2);
        repl.stop();
        let _ = std::fs::remove_dir_all(&p_dir);
        let _ = std::fs::remove_dir_all(&f_dir);
    }

    /// A follower that has learned a higher epoch (heartbeat from the
    /// new topology) refuses the old primary's stream: the stale frame
    /// is not applied, not acked, and the link is severed.
    #[test]
    fn follower_rejects_stream_from_lower_epoch_primary() {
        let c = catalog();
        let (p_dir, f_dir) = (tmpdir("fence-p"), tmpdir("fence-f"));
        let (primary, _) = SessionStore::recover(4, &p_dir, &c).unwrap();
        let wal = Arc::clone(primary.wal().unwrap());
        let repl = start_primary("127.0.0.1:0", wal).unwrap();
        let (follower, _) = SessionStore::recover(4, &f_dir, &c).unwrap();
        let follower = Arc::new(follower);
        let f_repl = start_follower(
            repl.repl_addr().unwrap().to_string(),
            Arc::clone(&follower),
            c.clone(),
        )
        .unwrap();
        // Let the attach complete (E1 header applied).
        let t0 = std::time::Instant::now();
        while f_repl.counters().1 < 1 {
            assert!(t0.elapsed() < Duration::from_secs(10), "attach never ran");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Heartbeat: the follower learns a newer primary exists at epoch 2.
        assert_eq!(f_repl.observe_epoch(2), 2);
        assert_eq!(f_repl.role(), Role::Follower, "followers are not demoted");
        // The old primary keeps writing at epoch 0. The follower must
        // reject the stream rather than apply stale frames.
        let _ = primary.upsert_text("al", WIRE, &c, crate::session::UpsertMode::Replace);
        let t0 = std::time::Instant::now();
        while f_repl.fenced_counters().1 < 1 {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "stale stream never rejected"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(follower.get("al").is_none(), "stale frame must not apply");
        // The epoch advance was durable: a recovery of the follower's
        // directory comes back at epoch 2.
        drop(f_repl);
        let (recovered, report) = SessionStore::recover(4, &f_dir, &c).unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(recovered.wal().unwrap().epoch(), 2);
        repl.stop();
        let _ = std::fs::remove_dir_all(&p_dir);
        let _ = std::fs::remove_dir_all(&f_dir);
    }
}
