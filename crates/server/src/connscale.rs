//! Open-loop connection-scale load: the C10k harness.
//!
//! [`run_load`](crate::loadgen::run_load) is a *closed* loop — offered
//! load adapts to observed latency, which is the right discipline for
//! latency measurement but cannot exercise connection scale: `clients`
//! threads hold `clients` sockets. This module is the other half of the
//! story, and it is *open* where it matters:
//!
//! 1. **Idle herd** — `idle_conns` keep-alive connections are dialed and
//!    then held silent. Each one costs the server a registration, not a
//!    thread; the epoll backend must carry them all and eventually reap
//!    every one on its idle deadline. A connection the server never
//!    closes is a *leak* — the number this harness exists to measure.
//! 2. **Slowloris drippers** — `slowloris_conns` writers send a valid
//!    request head and then drip one header byte per `drip_interval_ms`,
//!    forever. The read deadline must answer `408` (or sever) every one.
//! 3. **Open-loop lanes** — `lanes` writer/reader thread pairs send
//!    requests on a fixed wall-clock schedule (`lane_rps`), *not* when
//!    the previous response returns. Latency is measured against the
//!    scheduled send instant, so server-side queueing is charged to the
//!    server (no coordinated omission), while the idle herd and the
//!    drippers occupy the connection table.
//!
//! Determinism: the lane request mix reuses the loadgen splitmix64
//! streams — a pure function of `(mix.seed, lane, index)` — and the
//! schedule is pure arithmetic. Latencies and reap timing are wall-clock.

use crate::http::parse_response;
use crate::loadgen::{render_request, LoadConfig};
use cqp_obs::{Histogram, Json};
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Shape of one connection-scale run.
#[derive(Debug, Clone)]
pub struct ConnScaleConfig {
    /// Silent keep-alive connections to dial and hold.
    pub idle_conns: usize,
    /// Slow-dripping writers the read deadline must reap.
    pub slowloris_conns: usize,
    /// Milliseconds between dripped bytes.
    pub drip_interval_ms: u64,
    /// Open-loop writer/reader lane pairs.
    pub lanes: usize,
    /// Scheduled requests per second, per lane.
    pub lane_rps: u64,
    /// Scheduled requests per lane.
    pub lane_requests: usize,
    /// Request mix for the lanes (loadgen streams; `mix.seed` rules).
    pub mix: LoadConfig,
    /// How long to wait for the server to reap the idle herd and the
    /// drippers before declaring the remainder leaked. Must exceed the
    /// server's `read_timeout_ms` or everything reads as a leak.
    pub reap_patience_ms: u64,
    /// Connections dialed back-to-back before a 1 ms breather, so the
    /// herd doesn't overrun the listen backlog.
    pub connect_burst: usize,
}

impl Default for ConnScaleConfig {
    fn default() -> Self {
        ConnScaleConfig {
            idle_conns: 256,
            slowloris_conns: 16,
            drip_interval_ms: 40,
            lanes: 2,
            lane_rps: 50,
            lane_requests: 100,
            mix: LoadConfig::default(),
            reap_patience_ms: 10_000,
            connect_burst: 128,
        }
    }
}

/// What the connection-scale run observed.
#[derive(Debug, Clone, Default)]
pub struct ConnScaleReport {
    /// Idle connections requested by the config.
    pub idle_target: u64,
    /// Idle connections actually established.
    pub idle_opened: u64,
    /// Idle dials refused by the OS or the server.
    pub idle_connect_errors: u64,
    /// Idle connections the server closed within patience.
    pub idle_reaped: u64,
    /// Idle connections still open after patience — must be zero.
    pub idle_leaked: u64,
    /// Dripping writers established.
    pub slowloris_opened: u64,
    /// Dripper dials that failed outright.
    pub slowloris_connect_errors: u64,
    /// Drippers answered `408` or severed within patience.
    pub slowloris_reaped: u64,
    /// Drippers still dripping after patience — must be zero.
    pub slowloris_leaked: u64,
    /// Requests the lanes actually wrote.
    pub lane_requests: u64,
    /// Lane 200s.
    pub lane_ok: u64,
    /// Lane 429s/503s (shed under pressure is an answer, not a failure).
    pub lane_shed: u64,
    /// Other lane statuses.
    pub lane_errors: u64,
    /// Lane requests written but never answered.
    pub lane_io_errors: u64,
    /// Open-loop latency quantiles (vs the *scheduled* send instant),
    /// microseconds, over lane 200s.
    pub open_loop_p50_us: u64,
    /// 95th percentile, microseconds.
    pub open_loop_p95_us: u64,
    /// 99th percentile, microseconds.
    pub open_loop_p99_us: u64,
    /// Wall-clock of the whole run, seconds.
    pub wall_secs: f64,
}

impl ConnScaleReport {
    /// Connections the server never closed — the pass/fail number.
    pub fn leaked(&self) -> u64 {
        self.idle_leaked + self.slowloris_leaked
    }

    /// The report as a JSON object (the `conn_scale` section of
    /// `BENCH_serve.json`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("idle_target", Json::from(self.idle_target)),
            ("idle_opened", Json::from(self.idle_opened)),
            ("idle_connect_errors", Json::from(self.idle_connect_errors)),
            ("idle_reaped", Json::from(self.idle_reaped)),
            ("idle_leaked", Json::from(self.idle_leaked)),
            ("slowloris_opened", Json::from(self.slowloris_opened)),
            (
                "slowloris_connect_errors",
                Json::from(self.slowloris_connect_errors),
            ),
            ("slowloris_reaped", Json::from(self.slowloris_reaped)),
            ("slowloris_leaked", Json::from(self.slowloris_leaked)),
            ("lane_requests", Json::from(self.lane_requests)),
            ("lane_ok", Json::from(self.lane_ok)),
            ("lane_shed", Json::from(self.lane_shed)),
            ("lane_errors", Json::from(self.lane_errors)),
            ("lane_io_errors", Json::from(self.lane_io_errors)),
            ("open_loop_p50_us", Json::from(self.open_loop_p50_us)),
            ("open_loop_p95_us", Json::from(self.open_loop_p95_us)),
            ("open_loop_p99_us", Json::from(self.open_loop_p99_us)),
            ("leaked", Json::from(self.leaked())),
            ("wall_secs", Json::from(self.wall_secs)),
        ])
    }
}

/// Per-lane tallies, merged into the report.
#[derive(Debug, Default)]
struct LaneStats {
    written: u64,
    ok: u64,
    shed: u64,
    errors: u64,
    io_errors: u64,
    latencies: Vec<u64>,
}

/// Runs the full scenario: dial the idle herd, then drippers and lanes
/// concurrently, then wait for the server to reap everything it should.
/// Errors only on config nonsense; connection failures are counted.
pub fn run_conn_scale(
    addr: SocketAddr,
    config: &ConnScaleConfig,
) -> std::io::Result<ConnScaleReport> {
    if config.lanes > 0
        && (config.mix.users.is_empty()
            || config.mix.queries.is_empty()
            || config.mix.problems.is_empty())
    {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "conn-scale lanes need at least one user, query, and problem in the mix",
        ));
    }
    // The herd costs this process one fd per connection; ask for the
    // headroom up front (best effort — the hard limit rules).
    let _ = cqp_sys::raise_nofile_limit(
        (config.idle_conns + config.slowloris_conns + config.lanes) as u64 + 256,
    );
    let t0 = Instant::now();
    let mut report = ConnScaleReport {
        idle_target: config.idle_conns as u64,
        ..ConnScaleReport::default()
    };

    // Phase 1: the idle herd, dialed in bursts.
    let mut idle: Vec<TcpStream> = Vec::with_capacity(config.idle_conns);
    for i in 0..config.idle_conns {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                idle.push(s);
            }
            Err(_) => report.idle_connect_errors += 1,
        }
        if config.connect_burst > 0 && (i + 1) % config.connect_burst == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    report.idle_opened = idle.len() as u64;

    // Phases 2 + 3 concurrently: drippers hold read deadlines hostage
    // while the lanes push scheduled traffic through the same reactor.
    let patience = Duration::from_millis(config.reap_patience_ms.max(1));
    let drip = Duration::from_millis(config.drip_interval_ms.max(1));
    let (slow_outcomes, lane_stats) = std::thread::scope(|s| {
        let slow: Vec<_> = (0..config.slowloris_conns)
            .map(|_| s.spawn(move || slowloris(addr, drip, patience)))
            .collect();
        let lanes: Vec<_> = (0..config.lanes)
            .map(|lane| s.spawn(move || run_lane(addr, config, lane, patience)))
            .collect();
        let slow_outcomes: Vec<Option<bool>> = slow
            .into_iter()
            .map(|h| h.join().unwrap_or(Some(false)))
            .collect();
        let lane_stats: Vec<LaneStats> = lanes
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect();
        (slow_outcomes, lane_stats)
    });
    for outcome in slow_outcomes {
        match outcome {
            None => report.slowloris_connect_errors += 1,
            Some(reaped) => {
                report.slowloris_opened += 1;
                if reaped {
                    report.slowloris_reaped += 1;
                } else {
                    report.slowloris_leaked += 1;
                }
            }
        }
    }
    let mut latencies = Histogram::default();
    for lane in lane_stats {
        report.lane_requests += lane.written;
        report.lane_ok += lane.ok;
        report.lane_shed += lane.shed;
        report.lane_errors += lane.errors;
        report.lane_io_errors += lane.io_errors;
        for l in lane.latencies {
            latencies.observe(l);
        }
    }
    report.open_loop_p50_us = latencies.quantile(0.50);
    report.open_loop_p95_us = latencies.quantile(0.95);
    report.open_loop_p99_us = latencies.quantile(0.99);

    // Phase 4: the server must close every idle connection on its own.
    // Non-blocking reads: a closed socket reads Ok(0) instantly, a live
    // one is WouldBlock, and any parting bytes (a backend that answers
    // before closing) get consumed so the EOF behind them is reachable.
    for s in &idle {
        let _ = s.set_nonblocking(true);
    }
    let reap_deadline = Instant::now() + patience;
    let mut buf = [0u8; 512];
    loop {
        idle.retain(|s| {
            let mut r: &TcpStream = s;
            loop {
                match r.read(&mut buf) {
                    Ok(0) => {
                        report.idle_reaped += 1;
                        return false;
                    }
                    Ok(_) => continue,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                    Err(_) => {
                        // A reset is the server closing with bytes in
                        // flight — reaped, just unceremoniously.
                        report.idle_reaped += 1;
                        return false;
                    }
                }
            }
        });
        if idle.is_empty() || Instant::now() >= reap_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    report.idle_leaked = idle.len() as u64;
    report.wall_secs = t0.elapsed().as_secs_f64();
    Ok(report)
}

/// One dripper. `None`: could not connect. `Some(true)`: the server
/// answered `408` or severed the connection. `Some(false)`: still alive
/// after `patience` — a leak.
fn slowloris(addr: SocketAddr, drip: Duration, patience: Duration) -> Option<bool> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    // The read below doubles as the drip pacing.
    let _ = stream.set_read_timeout(Some(drip));
    if stream
        .write_all(b"POST /personalize HTTP/1.1\r\nhost: slow\r\n")
        .is_err()
    {
        return Some(true);
    }
    let deadline = Instant::now() + patience;
    let mut buf = [0u8; 512];
    while Instant::now() < deadline {
        // One more header-name byte; never a newline, never a request.
        if stream.write_all(b"x").is_err() {
            return Some(true);
        }
        match stream.read(&mut buf) {
            Ok(0) => return Some(true),
            Ok(n) => {
                if buf[..n].windows(8).any(|w| w == b" 408 Req") {
                    return Some(true);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return Some(true),
        }
    }
    Some(false)
}

/// One open-loop lane: a writer pushes requests at their scheduled
/// instants over one keep-alive connection while a reader (this thread)
/// scores responses against the schedule.
fn run_lane(
    addr: SocketAddr,
    config: &ConnScaleConfig,
    lane: usize,
    patience: Duration,
) -> LaneStats {
    let mut stats = LaneStats::default();
    let n = config.lane_requests;
    let Ok(stream) = TcpStream::connect(addr) else {
        return stats;
    };
    let _ = stream.set_nodelay(true);
    let Ok(reader_stream) = stream.try_clone() else {
        return stats;
    };
    let _ = reader_stream.set_read_timeout(Some(patience));
    let rps = config.lane_rps.max(1);
    let schedule: Vec<Duration> = (0..n)
        .map(|i| Duration::from_micros(i as u64 * 1_000_000 / rps))
        .collect();
    let start = Instant::now();
    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            let mut w = &stream;
            let mut written = 0usize;
            for (i, offset) in schedule.iter().enumerate() {
                let sched = start + *offset;
                let now = Instant::now();
                if sched > now {
                    std::thread::sleep(sched - now);
                }
                let Some((body, _, _)) = render_request(&config.mix, lane, i) else {
                    break;
                };
                let head = format!(
                    "POST /personalize HTTP/1.1\r\nhost: cqp\r\ncontent-length: {}\r\n",
                    body.len()
                );
                if w.write_all(head.as_bytes())
                    .and_then(|()| w.write_all(b"\r\n"))
                    .and_then(|()| w.write_all(body.as_bytes()))
                    .is_err()
                {
                    break;
                }
                written += 1;
            }
            // Half-close: the server finishes the pipelined tail, then
            // closes, handing the reader a clean EOF.
            let _ = stream.shutdown(Shutdown::Write);
            written
        });
        let mut reader = BufReader::new(&reader_stream);
        let mut answered = 0u64;
        for offset in &schedule {
            match parse_response(&mut reader) {
                Ok(resp) => {
                    answered += 1;
                    let us = (start + *offset).elapsed().as_micros() as u64;
                    match resp.status {
                        200 => {
                            stats.ok += 1;
                            stats.latencies.push(us);
                        }
                        429 | 503 => stats.shed += 1,
                        _ => stats.errors += 1,
                    }
                }
                Err(_) => break,
            }
        }
        let written = writer.join().unwrap_or(0) as u64;
        stats.written = written;
        stats.io_errors = written.saturating_sub(answered);
    });
    stats
}
