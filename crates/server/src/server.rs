//! The HTTP front-end: routing, request validation, and lifecycle.
//!
//! One accept loop, one thread per connection (bounded in practice by the
//! admission gate: connections are cheap, *solver slots* are the scarce
//! resource). Every handler failure maps to a typed JSON error — the
//! personalization pipeline's own taxonomy ([`CqpError`]) decides between
//! 4xx and 5xx, and malformed requests can never surface as a 500.
//!
//! ## Lifecycle
//!
//! The server moves through three phases: **live** (accepting and
//! serving), **draining** (socket closed to new connections, in-flight
//! requests finishing, new work answered `503 + Connection: close`), and
//! **stopped**. [`ServerHandle::shutdown`] drives the transition: flip to
//! draining, join the accept loop, give handlers a drain deadline to
//! finish, then sever and join the stragglers — every handler thread is
//! *joined*, never detached-and-abandoned, so nothing outlives the handle.
//!
//! ## Hostile-client defenses
//!
//! Each connection gets a read deadline (a slowloris head answers `408`),
//! a write timeout (a client that stops reading cannot wedge a handler),
//! and a request-count cap. A connection that never produces a parseable
//! request is reaped, not answered.

use crate::admission::{AdmissionController, AdmissionError};
use crate::http::{parse_request, HttpError, Request, Response};
use crate::json;
use crate::session::{SessionStore, UpsertMode};
use crate::telemetry::{Telemetry, DEADLINE_REMAINING_HEADER, TRACE_ID_HEADER};
use crate::wal::RecoveryReport;
use cqp_core::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use cqp_core::budget::Budget;
use cqp_core::prelude::*;
use cqp_engine::{execute_personalized, execute_ranked, parse_query, Matching};
use cqp_obs::prometheus::{render_registry, PromWriter, TEXT_CONTENT_TYPE};
use cqp_obs::record::span_guard;
use cqp_obs::reqtrace::{traces_to_chrome, traces_to_json, RequestRecorder, TraceId};
use cqp_obs::{Json, Obs, Recorder};
use cqp_prefs::Doi;
use cqp_storage::{Database, IoMeter};
use std::io::{BufRead, BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to re-check lifecycle and deadlines.
const POLL_MS: u64 = 25;

/// Which serving backend owns sockets and request reads.
///
/// Both backends route through the same handler, admission gate, solver
/// driver, caches, and telemetry — the `backend_differential` suite holds
/// them to bit-identical answers. The env var `CQP_SERVER_BACKEND`
/// (`threaded` | `epoll`) overrides the default, which is how CI runs
/// every socket-level suite against both without duplicating tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// One blocking handler thread per connection (the portable
    /// baseline).
    #[default]
    Threaded,
    /// A readiness-driven epoll reactor pool (Linux; C10k-capable).
    Epoll,
}

impl Backend {
    /// Stable lowercase tag for configs, reports, and `/metrics`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Backend::Threaded => "threaded",
            Backend::Epoll => "epoll",
        }
    }

    /// Parses the wire/CLI spelling.
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "threaded" => Some(Backend::Threaded),
            "epoll" => Some(Backend::Epoll),
            _ => None,
        }
    }

    /// The backend `CQP_SERVER_BACKEND` selects, or `Threaded`.
    pub fn from_env() -> Backend {
        std::env::var("CQP_SERVER_BACKEND")
            .ok()
            .and_then(|v| Backend::parse(&v))
            .unwrap_or_default()
    }
}

/// Tunables for [`start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Which serving backend owns sockets ([`Backend::from_env`] by
    /// default, so suites and benches can flip it without code changes).
    pub backend: Backend,
    /// Reactor (event-loop) threads for the epoll backend; reactor 0
    /// additionally owns the listener.
    pub reactor_threads: usize,
    /// Resident solver-worker threads for the epoll backend. `0` sizes
    /// the pool to `max_inflight + queue_cap + 2`, so the admission gate
    /// — not the worker pool — stays the shedding bottleneck, exactly as
    /// in the thread-per-connection backend.
    pub worker_threads: usize,
    /// Most connections the epoll backend holds open at once; accepts
    /// beyond the cap are closed immediately.
    pub max_connections: usize,
    /// Concurrent personalization executions admitted.
    pub max_inflight: usize,
    /// Requests allowed to wait for an execution slot; beyond this → 429.
    pub queue_cap: usize,
    /// `Retry-After` hint on 429 responses, milliseconds.
    pub retry_after_ms: u64,
    /// Longest a queued request waits for a slot before a 503.
    pub queue_wait_ms: u64,
    /// Session-store shards.
    pub store_shards: usize,
    /// Users to pre-seed from `cqp-datagen` (0 = none).
    pub seed_users: usize,
    /// Base seed for profile seeding.
    pub seed: u64,
    /// Cost-cache eviction policy for the submit path.
    pub cache_policy: EvictionPolicy,
    /// Cost-cache total capacity (entries).
    pub cache_capacity: usize,
    /// Whether the cross-request answer cache (exact/warm/repair reuse
    /// tiers) is enabled on the dispatch path.
    pub answer_cache: bool,
    /// Answer-cache capacity, in families (template × profile × config).
    pub answer_cache_capacity: usize,
    /// Deadline applied when a request specifies none (ms; `None` = no
    /// default deadline).
    pub default_deadline_ms: Option<u64>,
    /// How long [`ServerHandle::stop`] lets in-flight requests finish
    /// before severing their connections, milliseconds.
    pub drain_deadline_ms: u64,
    /// Longest a connection may take to deliver one complete request
    /// (also the keep-alive idle timeout). Slowloris heads answer `408`.
    pub read_timeout_ms: u64,
    /// Socket write timeout — a client that stops reading cannot hold a
    /// handler thread forever.
    pub write_timeout_ms: u64,
    /// Requests served per connection before it is closed (keep-alive
    /// recycling cap).
    pub max_requests_per_conn: usize,
    /// When set, the session store journals to a WAL in this directory
    /// and recovers from it on startup (seeding only applies to an empty
    /// recovered store).
    pub wal_dir: Option<PathBuf>,
    /// Circuit-breaker tuning for the dispatch path.
    pub breaker: BreakerConfig,
    /// Capture one request's span tree every N personalize requests
    /// (0 = tracing off, 1 = every request). A client that sends an
    /// explicit `x-cqp-trace-id` header is always captured while tracing
    /// is enabled.
    pub trace_sample_every: u64,
    /// Lock shards in the trace retention ring.
    pub trace_ring_shards: usize,
    /// Recent traces retained across all ring shards.
    pub trace_ring_capacity: usize,
    /// Worst-N requests kept in the slow-query log.
    pub slow_log_capacity: usize,
    /// Latency objective for SLO burn accounting, milliseconds.
    pub slo_objective_ms: u64,
    /// Sliding window for the request-rate and burn-ratio gauges, seconds.
    pub slo_window_secs: u64,
    /// When set, bind a replication listener here and ship the WAL to
    /// whichever follower connects (requires `wal_dir`). Port 0 picks an
    /// ephemeral port; the bound address is on [`ServerHandle::repl_addr`].
    pub repl_listen: Option<String>,
    /// When set, boot as a *follower* of the primary whose replication
    /// listener is at this address: apply its WAL stream, reject direct
    /// profile writes until promoted via `POST /admin/promote`. Requires
    /// `wal_dir` (the follower journals the stream for its own failover).
    /// Mutually exclusive with `repl_listen`.
    pub follow: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            backend: Backend::from_env(),
            reactor_threads: 2,
            worker_threads: 0,
            max_connections: 16_384,
            max_inflight: std::thread::available_parallelism().map_or(2, usize::from),
            queue_cap: 32,
            retry_after_ms: 250,
            queue_wait_ms: 1_000,
            store_shards: 8,
            seed_users: 0,
            seed: 42,
            // LRU: a serving cache lives across requests, so recency —
            // not insertion age — predicts reuse.
            cache_policy: EvictionPolicy::Lru,
            cache_capacity: cqp_core::batch::SUBMIT_CACHE_CAPACITY,
            answer_cache: true,
            answer_cache_capacity: cqp_core::answer_cache::DEFAULT_FAMILY_CAPACITY,
            default_deadline_ms: None,
            drain_deadline_ms: 5_000,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            max_requests_per_conn: 1_024,
            wal_dir: None,
            breaker: BreakerConfig::default(),
            trace_sample_every: 16,
            trace_ring_shards: 8,
            trace_ring_capacity: 256,
            slow_log_capacity: 16,
            slo_objective_ms: 250,
            slo_window_secs: 60,
            repl_listen: None,
            follow: None,
        }
    }
}

/// Lifecycle phases, stored as an atomic in [`ServerState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accepting and serving.
    Live = 0,
    /// No new work; in-flight requests finishing under the drain deadline.
    Draining = 1,
    /// All threads joined.
    Stopped = 2,
}

impl Phase {
    fn from_u8(v: u8) -> Phase {
        match v {
            0 => Phase::Live,
            1 => Phase::Draining,
            _ => Phase::Stopped,
        }
    }

    /// Stable lowercase tag for `/metrics` and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Live => "live",
            Phase::Draining => "draining",
            Phase::Stopped => "stopped",
        }
    }
}

/// Shared server state, visible to handlers and (via the handle) tests.
#[derive(Debug)]
pub struct ServerState {
    /// The shared database.
    pub db: Arc<Database>,
    /// The solver driver (persistent LRU submit cache).
    pub driver: BatchDriver,
    /// Per-user profiles (WAL-backed when `config.wal_dir` is set).
    /// Shared with the replication apply thread on followers.
    pub store: Arc<SessionStore>,
    /// The admission gate.
    pub gate: AdmissionController,
    /// The dispatch circuit breaker (shared with the driver).
    pub breaker: Arc<CircuitBreaker>,
    /// Metrics + tracing sink.
    pub obs: Arc<Obs>,
    /// Trace identity/sampling, retention, SLO series, labeled counters.
    pub telemetry: Telemetry,
    /// What startup recovery replayed, when the store is durable.
    pub recovery: Option<RecoveryReport>,
    /// Replication role + counters, when this process is part of a
    /// primary/follower pair (`config.repl_listen` / `config.follow`).
    pub repl: Option<Arc<crate::repl::Repl>>,
    pub(crate) config: ServerConfig,
    started: Instant,
    pub(crate) phase: AtomicU8,
    pub(crate) active_conns: AtomicUsize,
    pub(crate) drain_rejected: AtomicU64,
}

impl ServerState {
    /// The current lifecycle phase.
    pub fn phase(&self) -> Phase {
        Phase::from_u8(self.phase.load(Ordering::SeqCst))
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active_conns.load(Ordering::SeqCst)
    }

    /// Requests answered `503 + Connection: close` during drain.
    pub fn drain_rejected(&self) -> u64 {
        self.drain_rejected.load(Ordering::Relaxed)
    }
}

/// RAII active-connection counter.
struct ConnGuard<'a>(&'a ServerState);

impl<'a> ConnGuard<'a> {
    fn new(state: &'a ServerState) -> Self {
        state.active_conns.fetch_add(1, Ordering::SeqCst);
        ConnGuard(state)
    }
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A [`Read`] wrapper that converts the socket's short poll timeout into
/// either an indefinite poll (no deadline: `WouldBlock` surfaces to the
/// caller) or a hard per-request deadline (`TimedOut` once it passes).
/// Living *below* the `BufReader` means a deadline can span many reads of
/// one request without losing buffered progress.
struct TimedStream {
    inner: TcpStream,
    deadline: Arc<Mutex<Option<Instant>>>,
}

/// The socket-level poll timeout surfaces as `WouldBlock` or `TimedOut`
/// depending on platform; treat them alike.
fn is_poll_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl Read for TimedStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Err(e) if is_poll_timeout(&e) => {
                    let deadline = *self.deadline.lock().unwrap_or_else(|p| p.into_inner());
                    match deadline {
                        // No deadline set: the caller is idle-polling and
                        // wants the WouldBlock tick back.
                        None => return Err(e),
                        Some(d) if Instant::now() >= d => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::TimedOut,
                                "read deadline exceeded",
                            ))
                        }
                        // Deadline pending: keep polling (the 25 ms socket
                        // timeout paces this loop).
                        Some(_) => {}
                    }
                }
                r => return r,
            }
        }
    }
}

/// What one graceful shutdown did.
#[derive(Debug, Clone, Copy, Default)]
pub struct DrainStats {
    /// Wall-clock the drain took, milliseconds.
    pub drain_ms: u64,
    /// Connections still busy at the deadline, severed forcibly.
    pub forced: usize,
    /// True when every handler finished inside the deadline.
    pub graceful: bool,
}

/// A running server; drains (and joins every thread) on
/// [`ServerHandle::stop`] or drop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    backend: BackendImpl,
}

/// Backend-specific ownership inside [`ServerHandle`].
#[derive(Debug)]
enum BackendImpl {
    Threaded {
        accept_thread: Option<std::thread::JoinHandle<()>>,
        conns: ConnRegistry,
    },
    Epoll(crate::reactor::EpollHandle),
}

/// Live connections with their handler threads, pruned as they finish.
type ConnRegistry = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// Joins and removes every finished handler; returns how many remain.
fn prune_finished(conns: &ConnRegistry) -> usize {
    let mut reg = conns.lock().unwrap_or_else(|p| p.into_inner());
    let mut i = 0;
    while i < reg.len() {
        if reg[i].1.is_finished() {
            let (_, handle) = reg.swap_remove(i);
            let _ = handle.join();
        } else {
            i += 1;
        }
    }
    reg.len()
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state — the tests' window into counters and the gate.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// The bound replication-listener address, when `repl_listen` was set
    /// (resolves port 0) — where a follower's `follow` should point.
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.state.repl.as_ref().and_then(|r| r.repl_addr())
    }

    /// Graceful shutdown with the configured drain deadline. Idempotent.
    pub fn stop(&mut self) {
        let deadline = Duration::from_millis(self.state.config.drain_deadline_ms);
        self.shutdown(deadline);
    }

    /// Stops accepting, lets in-flight requests finish for up to
    /// `drain_deadline`, then severs and joins any stragglers. On return
    /// no handler thread is running. Idempotent — later calls are no-ops.
    pub fn shutdown(&mut self, drain_deadline: Duration) -> DrainStats {
        let t0 = Instant::now();
        // Retire replication threads first (idempotent): the accept loop
        // unblocks and exits, a follower's apply loop sees its stream
        // severed.
        if let Some(repl) = &self.state.repl {
            repl.stop();
        }
        if self
            .state
            .phase
            .compare_exchange(
                Phase::Live as u8,
                Phase::Draining as u8,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            // Already draining or stopped; just make sure the backend's
            // threads are gone.
            match &mut self.backend {
                BackendImpl::Threaded { accept_thread, .. } => {
                    if let Some(t) = accept_thread.take() {
                        let _ = TcpStream::connect(self.addr);
                        let _ = t.join();
                    }
                }
                BackendImpl::Epoll(h) => h.join_all(),
            }
            return DrainStats {
                drain_ms: 0,
                forced: 0,
                graceful: true,
            };
        }
        self.state.obs.set_gauge("server.phase", 1.0);
        let forced = match &mut self.backend {
            BackendImpl::Threaded {
                accept_thread,
                conns,
            } => {
                // Unblock `accept` by connecting once; the loop re-checks
                // the phase and exits.
                let _ = TcpStream::connect(self.addr);
                if let Some(t) = accept_thread.take() {
                    let _ = t.join();
                }
                // Drain: handlers finish their in-flight request, answer
                // new work with 503 + close, and exit; idle connections
                // close within one poll tick.
                let deadline = t0 + drain_deadline;
                loop {
                    if prune_finished(conns) == 0 {
                        break;
                    }
                    if Instant::now() >= deadline {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                // Sever whatever outlived the deadline, then join uncon-
                // ditionally: a severed socket errors the handler's next
                // read/write.
                prune_finished(conns);
                let stragglers: Vec<(TcpStream, JoinHandle<()>)> = {
                    let mut reg = conns.lock().unwrap_or_else(|p| p.into_inner());
                    reg.drain(..).collect()
                };
                let mut forced = 0;
                for (sock, _) in &stragglers {
                    if sock.shutdown(Shutdown::Both).is_ok() {
                        forced += 1;
                    }
                }
                for (_, handle) in stragglers {
                    let _ = handle.join();
                }
                forced
            }
            BackendImpl::Epoll(h) => h.drain(&self.state, t0 + drain_deadline),
        };
        self.state
            .phase
            .store(Phase::Stopped as u8, Ordering::SeqCst);
        self.state.obs.set_gauge("server.phase", 2.0);
        let stats = DrainStats {
            drain_ms: t0.elapsed().as_millis() as u64,
            forced,
            graceful: forced == 0,
        };
        self.state
            .obs
            .add("server.drain_forced", stats.forced as u64);
        stats
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts a server over `db` per `config`; returns once the socket is
/// bound and accepting. With `config.wal_dir` set the session store is
/// recovered from (and from then on journaled to) that directory;
/// seeding only applies when recovery produced an empty store.
pub fn start(db: Arc<Database>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let breaker = Arc::new(CircuitBreaker::new(config.breaker));
    let answer_cache = config
        .answer_cache
        .then(|| Arc::new(AnswerCache::with_capacity(config.answer_cache_capacity)));
    let mut driver = BatchDriver::new(Arc::clone(&db), 1)
        .with_submit_cache(config.cache_policy, config.cache_capacity)
        .with_breaker(Arc::clone(&breaker));
    if let Some(cache) = &answer_cache {
        driver = driver.with_answer_cache(Arc::clone(cache));
    }
    let (store, recovery) = match &config.wal_dir {
        Some(dir) => {
            let (store, report) = SessionStore::recover(config.store_shards, dir, db.catalog())?;
            (store, Some(report))
        }
        None => (SessionStore::new(config.store_shards), None),
    };
    let store = Arc::new(store);
    if let Some(cache) = &answer_cache {
        // Session writes eagerly drop every cached scope of the written
        // profile; WAL replay above deliberately did not route through
        // this hook (the cache was empty during recovery anyway).
        let cache = Arc::clone(cache);
        store.set_write_listener(Arc::new(move |user, version| {
            cache.invalidate_profile(user, version);
        }));
    }
    if config.seed_users > 0 && store.is_empty() {
        store.seed_from_datagen(db.catalog(), config.seed_users, config.seed);
    }
    let repl = match (&config.repl_listen, &config.follow) {
        (Some(_), Some(_)) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "repl_listen and follow are mutually exclusive \
                 (a promoted follower does not re-ship; chained replication is unsupported)",
            ))
        }
        (Some(listen), None) => {
            let wal = store.wal().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "repl_listen requires wal_dir (replication ships the WAL)",
                )
            })?;
            Some(crate::repl::start_primary(listen, Arc::clone(wal))?)
        }
        (None, Some(primary)) => {
            if store.wal().is_none() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "follow requires wal_dir (the follower journals the stream)",
                ));
            }
            Some(crate::repl::start_follower(
                primary.clone(),
                Arc::clone(&store),
                db.catalog().clone(),
            )?)
        }
        (None, None) => None,
    };
    let obs = Arc::new(Obs::new());
    if let Some(r) = &recovery {
        obs.add("server.wal_records_recovered", r.records_replayed());
        obs.add("server.wal_torn_tail_bytes", r.torn_tail_bytes);
    }
    let telemetry = Telemetry::new(
        config.trace_sample_every,
        config.trace_ring_shards,
        config.trace_ring_capacity,
        config.slow_log_capacity,
        config.slo_window_secs,
        config.slo_objective_ms,
    );
    let state = Arc::new(ServerState {
        gate: AdmissionController::new(
            config.max_inflight,
            config.queue_cap,
            config.retry_after_ms,
        ),
        driver,
        store,
        breaker,
        obs,
        telemetry,
        recovery,
        repl,
        db,
        config,
        started: Instant::now(),
        phase: AtomicU8::new(Phase::Live as u8),
        active_conns: AtomicUsize::new(0),
        drain_rejected: AtomicU64::new(0),
    });
    if state.config.backend == Backend::Epoll {
        let handle = crate::reactor::EpollHandle::start(listener, Arc::clone(&state))?;
        return Ok(ServerHandle {
            addr,
            state,
            backend: BackendImpl::Epoll(handle),
        });
    }

    let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));

    let accept_state = Arc::clone(&state);
    let accept_conns = Arc::clone(&conns);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_state.phase() != Phase::Live {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let _ = stream.set_nodelay(true);
            let clone = match stream.try_clone() {
                Ok(c) => c,
                Err(_) => continue,
            };
            let state = Arc::clone(&accept_state);
            let handle = std::thread::spawn(move || serve_connection(stream, &state));
            // Register the handler so shutdown can join it; pruning here
            // keeps the registry proportional to *live* connections.
            let mut reg = accept_conns.lock().unwrap_or_else(|p| p.into_inner());
            let mut i = 0;
            while i < reg.len() {
                if reg[i].1.is_finished() {
                    let (_, h) = reg.swap_remove(i);
                    let _ = h.join();
                } else {
                    i += 1;
                }
            }
            reg.push((clone, handle));
        }
    });

    Ok(ServerHandle {
        addr,
        state,
        backend: BackendImpl::Threaded {
            accept_thread: Some(accept_thread),
            conns,
        },
    })
}

/// Closes the connection for real when the handler exits.
struct SocketCloser(TcpStream);

impl Drop for SocketCloser {
    fn drop(&mut self) {
        let _ = self.0.shutdown(Shutdown::Both);
    }
}

/// Outcome of waiting for the next request's first byte.
enum IdleWait {
    /// Bytes are buffered; parse them.
    RequestArriving,
    /// Close the connection (EOF, drain, idle timeout, stop, or error).
    Close,
}

/// Keep-alive request loop over one connection, hardened against
/// hostile clients: per-request read deadline, write timeout, request
/// cap, and drain awareness.
fn serve_connection(stream: TcpStream, state: &ServerState) {
    let _guard = ConnGuard::new(state);
    // The short socket timeout is the poll tick every blocking read
    // wakes on; TimedStream turns it into per-request deadlines.
    if stream
        .set_read_timeout(Some(Duration::from_millis(POLL_MS)))
        .is_err()
    {
        return;
    }
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        state.config.write_timeout_ms.max(1),
    )));
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // The drain registry holds a cloned fd for this connection, so the
    // handler's own streams dropping would not send FIN — `shutdown`
    // reaches the socket itself, past every clone. Without it, a
    // finished connection looks open to the peer until the next prune.
    let _closer = match write_half.try_clone() {
        Ok(s) => SocketCloser(s),
        Err(_) => return,
    };
    let deadline = Arc::new(Mutex::new(None));
    let mut reader = BufReader::new(TimedStream {
        inner: stream,
        deadline: Arc::clone(&deadline),
    });
    let set_deadline = |d: Option<Instant>| {
        *deadline.lock().unwrap_or_else(|p| p.into_inner()) = d;
    };
    let mut served = 0usize;
    loop {
        match wait_for_request(&mut reader, state) {
            IdleWait::Close => return,
            IdleWait::RequestArriving => {}
        }
        // A request is arriving: it must complete within the read
        // deadline, however slowly its bytes drip.
        // The request clock starts at its first buffered byte; HTTP parse
        // is the first span of a captured trace.
        let req_t0 = Instant::now();
        set_deadline(Some(
            req_t0 + Duration::from_millis(state.config.read_timeout_ms.max(1)),
        ));
        let parsed = parse_request(&mut reader);
        let parse_us = req_t0.elapsed().as_micros() as u64;
        set_deadline(None);
        served += 1;
        let (response, keep_alive) = match parsed {
            Ok(req) => handle_request(state, &req, served, req_t0, parse_us),
            Err(HttpError::ConnectionClosed) => return,
            Err(HttpError::Io(std::io::ErrorKind::TimedOut)) => {
                // The read deadline expired mid-request: a slowloris (or
                // a genuinely glacial client) — answer 408 and close.
                state.obs.add("server.read_timeouts", 1);
                (read_timeout_response(), false)
            }
            Err(HttpError::Io(_)) => return,
            Err(e) => {
                state.obs.add("server.http_errors", 1);
                (http_error_response(&e), false)
            }
        };
        if let Err(e) = response.write_to(&mut write_half, keep_alive) {
            if is_poll_timeout(&e) {
                state.obs.add("server.write_timeouts", 1);
            }
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Waits (in poll ticks) until the next request's first byte is buffered,
/// the peer closes, the server drains/stops, or the idle timeout passes.
fn wait_for_request(reader: &mut BufReader<TimedStream>, state: &ServerState) -> IdleWait {
    let idle_start = Instant::now();
    let idle_limit = Duration::from_millis(state.config.read_timeout_ms.max(1));
    loop {
        match state.phase() {
            Phase::Live => {}
            // Between requests nothing is in flight: close immediately.
            Phase::Draining | Phase::Stopped => {
                // Unless bytes are already buffered — then a request is
                // arriving and deserves its 503.
                if reader.buffer().is_empty() {
                    return IdleWait::Close;
                }
                return IdleWait::RequestArriving;
            }
        }
        match reader.fill_buf() {
            Ok([]) => return IdleWait::Close, // EOF
            Ok(_) => return IdleWait::RequestArriving,
            Err(e) if is_poll_timeout(&e) => {
                if idle_start.elapsed() >= idle_limit {
                    state.obs.add("server.idle_reaped", 1);
                    return IdleWait::Close;
                }
            }
            Err(_) => return IdleWait::Close,
        }
    }
}

/// Dispatches one parsed request through the lifecycle policy both
/// backends share: drain rejection (with the health/metrics/debug
/// exemption), the keep-alive decision (client wish ∧ per-connection
/// request cap ∧ still live), and routing. `served` counts this request
/// (i.e. it is already incremented). Returns `(response, keep_alive)`.
pub(crate) fn handle_request(
    state: &ServerState,
    req: &Request,
    served: usize,
    req_t0: Instant,
    parse_us: u64,
) -> (Response, bool) {
    if state.phase() != Phase::Live
        && !matches!(
            req.segments().first(),
            Some(&"healthz") | Some(&"metrics") | Some(&"debug")
        )
    {
        // Draining: answer new work with 503 + close. Health, metrics,
        // and debug stay reachable so pollers (and an operator pulling
        // traces) see the transition.
        state.drain_rejected.fetch_add(1, Ordering::Relaxed);
        state.obs.add("server.drain_rejected", 1);
        (draining_response(), false)
    } else {
        let keep = req.keep_alive
            && served < state.config.max_requests_per_conn
            && state.phase() == Phase::Live;
        (route(state, req, req_t0, parse_us), keep)
    }
}

/// The `408` a slowloris (or genuinely glacial) request is answered with
/// when its read deadline expires.
pub(crate) fn read_timeout_response() -> Response {
    ApiError::new(
        408,
        "request_timeout",
        "request did not complete within the read deadline",
    )
    .response()
}

/// The `503 Connection: close` everything but health/metrics gets while
/// draining.
fn draining_response() -> Response {
    ApiError::new(503, "draining", "server is draining; connection closing").response()
}

/// A typed API failure: status + stable code + message, plus the
/// `Retry-After` hint 429s carry.
struct ApiError {
    status: u16,
    code: &'static str,
    message: String,
    retry_after_ms: Option<u64>,
}

impl ApiError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    fn with_retry_after_ms(mut self, ms: u64) -> ApiError {
        self.retry_after_ms = Some(ms);
        self
    }

    fn response(&self) -> Response {
        let resp = Response::json(
            self.status,
            &Json::obj(vec![(
                "error",
                Json::obj(vec![
                    ("code", Json::from(self.code)),
                    ("message", Json::from(self.message.as_str())),
                ]),
            )]),
        );
        match self.retry_after_ms {
            // Retry-After is whole seconds on the wire; round up so the
            // hint never tells a client to come back too early.
            Some(ms) => resp.with_header("retry-after", ms.div_ceil(1000).max(1).to_string()),
            None => resp,
        }
    }
}

/// Maps an HTTP parse failure onto a 4xx.
pub(crate) fn http_error_response(e: &HttpError) -> Response {
    let (status, code) = match e {
        HttpError::BodyTooLarge(_) => (413, "body_too_large"),
        HttpError::HeadTooLarge => (431, "head_too_large"),
        _ => (400, "bad_request"),
    };
    ApiError::new(status, code, e.to_string()).response()
}

/// Stable endpoint label for the `cqp_requests_total` counter family.
fn endpoint_label(segments: &[&str]) -> &'static str {
    match segments {
        ["healthz", ..] => "healthz",
        ["metrics"] => "metrics",
        ["debug", ..] => "debug",
        ["profiles", ..] => "profiles",
        ["personalize"] => "personalize",
        _ => "other",
    }
}

/// Maps a response status onto the `outcome` label vocabulary. Degraded
/// 200s are re-labeled by the personalize path, which knows.
fn outcome_for_status(status: u16) -> &'static str {
    match status {
        200..=299 => "ok",
        429 | 503 => "shed",
        _ => "error",
    }
}

/// Dispatches one parsed request. `t0` is when the request's bytes began
/// arriving; `parse_us` is how long HTTP parsing took (the first span of
/// a captured trace).
fn route(state: &ServerState, req: &Request, t0: Instant, parse_us: u64) -> Response {
    state.obs.add("server.requests", 1);
    let segments = req.segments();
    let endpoint = endpoint_label(segments.as_slice());
    let result = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(healthz(state)),
        ("GET", ["healthz", "live"]) => Ok(liveness()),
        ("GET", ["healthz", "ready"]) => Ok(readiness(state, req)),
        ("GET", ["metrics"]) => Ok(metrics(state)),
        ("GET", ["debug", "traces"]) => debug_traces(state, req),
        ("GET", ["debug", "slow"]) => Ok(debug_slow(state)),
        ("POST", ["profiles", user]) => upsert_profile(state, req, user),
        ("GET", ["profiles", user]) => get_profile(state, user),
        ("POST", ["admin", "promote"]) => Ok(promote(state, req)),
        ("POST", ["personalize"]) => {
            return personalize_route(state, req, t0, parse_us);
        }
        (_, ["healthz" | "metrics"])
        | (_, ["healthz", "live" | "ready"])
        | (_, ["debug", "traces" | "slow"])
        | (_, ["admin", "promote"])
        | (_, ["profiles", _])
        | (_, ["personalize"]) => Err(ApiError::new(
            405,
            "method_not_allowed",
            "wrong method for this path",
        )),
        _ => Err(ApiError::new(
            404,
            "not_found",
            format!("no route for {}", req.path),
        )),
    };
    let response = match result {
        Ok(resp) => resp,
        Err(e) => {
            state.obs.add("server.request_errors", 1);
            e.response()
        }
    };
    state
        .telemetry
        .requests
        .inc(&[endpoint, outcome_for_status(response.status)]);
    response
}

/// What the traced personalize path learned about its request — the
/// labels and trace metadata the wrapper stamps after the handler
/// returns, whichever exit path it took.
struct PersonalizeCtx {
    outcome: &'static str,
    problem: String,
    algorithm: &'static str,
    user: String,
    deadline_ms: Option<u64>,
}

impl Default for PersonalizeCtx {
    fn default() -> Self {
        PersonalizeCtx {
            // Until the handler proves otherwise, the request is an error.
            outcome: "error",
            problem: "unknown".to_string(),
            algorithm: "unknown",
            user: String::new(),
            deadline_ms: None,
        }
    }
}

/// The traced wrapper around [`personalize`]: draws trace identity,
/// decides capture, runs the handler with the right recorder, accounts
/// the request in the SLO series and labeled counters, stamps the
/// response headers, and retains the finished trace.
fn personalize_route(state: &ServerState, req: &Request, t0: Instant, parse_us: u64) -> Response {
    let tel = &state.telemetry;
    let seq = tel.next_seq();
    let explicit = req.header(TRACE_ID_HEADER).and_then(TraceId::parse);
    let trace_id = tel.assign_id(seq, explicit);
    let capture = tel.should_capture(seq, explicit.is_some());
    let recorder = capture.then(|| RequestRecorder::new(state.obs.as_ref(), t0));
    if let Some(rec) = &recorder {
        rec.record_span("parse", 0, parse_us);
    }
    let mut ctx = PersonalizeCtx::default();
    let result = {
        let rec: &dyn Recorder = match &recorder {
            Some(r) => r,
            None => state.obs.as_ref(),
        };
        personalize(state, req, rec, &mut ctx)
    };
    let mut response = match result {
        Ok(resp) => resp,
        Err(e) => {
            state.obs.add("server.request_errors", 1);
            e.response()
        }
    };
    let latency_us = t0.elapsed().as_micros() as u64;
    tel.slo.observe(latency_us);
    tel.requests.inc(&["personalize", ctx.outcome]);
    tel.personalize
        .inc(&[ctx.problem.as_str(), ctx.algorithm, ctx.outcome]);
    // Every personalize response echoes the trace ID, captured or not, so
    // clients can always correlate their logs with the server's.
    response = response.with_header(TRACE_ID_HEADER, trace_id.to_string());
    if let Some(deadline_ms) = ctx.deadline_ms {
        let remaining = deadline_ms.saturating_sub(latency_us / 1_000);
        response = response.with_header(DEADLINE_REMAINING_HEADER, remaining.to_string());
    }
    if let Some(rec) = recorder {
        let meta = vec![
            ("user", ctx.user),
            ("problem", ctx.problem),
            ("algorithm", ctx.algorithm.to_string()),
            ("outcome", ctx.outcome.to_string()),
            ("status", response.status.to_string()),
            ("latency_us", latency_us.to_string()),
        ];
        let trace = rec.finish(
            trace_id,
            seq,
            "POST /personalize".to_string(),
            tel.offset_us(t0),
            meta,
        );
        tel.retain(Arc::new(trace));
    }
    response
}

/// `GET /debug/traces` — recent traces as JSON, one trace by `?id=`, or
/// the whole ring as a Chrome trace-event document with `?format=chrome`.
fn debug_traces(state: &ServerState, req: &Request) -> Result<Response, ApiError> {
    let tel = &state.telemetry;
    if let Some(raw) = req.query_param("id") {
        let id = TraceId::parse(raw)
            .ok_or_else(|| ApiError::new(400, "bad_trace_id", "`id` must be 1-16 hex digits"))?;
        let trace = tel.ring.find(id).ok_or_else(|| {
            ApiError::new(404, "unknown_trace", format!("no retained trace {id}"))
        })?;
        return Ok(Response::json(
            200,
            &cqp_obs::reqtrace::trace_to_json(&trace),
        ));
    }
    let n = req
        .query_param("n")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(32)
        .min(1024);
    let traces = tel.ring.recent(n);
    if req.query_param("format") == Some("chrome") {
        return Ok(Response::json(200, &traces_to_chrome(&traces)));
    }
    let (pushed, evicted) = tel.ring.counters();
    Ok(Response::json(
        200,
        &Json::obj(vec![
            ("count", Json::from(traces.len() as u64)),
            ("capacity", Json::from(tel.ring.capacity() as u64)),
            ("captured", Json::from(pushed)),
            ("evicted", Json::from(evicted)),
            ("sample_every", Json::from(tel.sample_every())),
            ("traces", traces_to_json(&traces)),
        ]),
    ))
}

/// `GET /debug/slow` — the worst-N slow-query log, slowest first, with
/// full span trees.
fn debug_slow(state: &ServerState) -> Response {
    let tel = &state.telemetry;
    let worst = tel.slow.worst();
    Response::json(
        200,
        &Json::obj(vec![
            ("count", Json::from(worst.len() as u64)),
            ("threshold_us", Json::from(tel.slow.threshold_us())),
            ("traces", traces_to_json(&worst)),
        ]),
    )
}

/// Overview endpoint: always 200, reports the lifecycle phase (`ready`
/// while live, `draining` during shutdown) alongside basic gauges.
fn healthz(state: &ServerState) -> Response {
    let status = match state.phase() {
        Phase::Live => "ready",
        Phase::Draining | Phase::Stopped => "draining",
    };
    Response::json(
        200,
        &Json::obj(vec![
            ("status", Json::from(status)),
            (
                "uptime_secs",
                Json::from(state.started.elapsed().as_secs_f64()),
            ),
            ("profiles", Json::from(state.store.len() as u64)),
            ("inflight", Json::from(state.gate.inflight() as u64)),
            (
                "active_connections",
                Json::from(state.active_connections() as u64),
            ),
            ("breaker", Json::from(state.breaker.state().as_str())),
        ]),
    )
}

/// Liveness: 200 as long as the process can answer at all.
fn liveness() -> Response {
    Response::json(200, &Json::obj(vec![("status", Json::from("live"))]))
}

/// Readiness: 200 `ready` when live and the breaker admits traffic;
/// 503 while draining or while the breaker is open, so pollers and load
/// balancers take the instance out of rotation before it stops.
fn readiness(state: &ServerState, req: &Request) -> Response {
    let draining = state.phase() != Phase::Live;
    let breaker = state.breaker.state();
    let status = if draining { "draining" } else { "ready" };
    let code = if draining || breaker == BreakerState::Open {
        503
    } else {
        200
    };
    // The probe doubles as the epoch heartbeat: a router that has seen a
    // newer epoch announces it here, which is what fences a partitioned
    // ex-primary on its first post-heal heartbeat.
    let mut epoch = 0u64;
    if let Some(repl) = &state.repl {
        if let Some(h) = req
            .header("x-cqp-epoch")
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            repl.observe_epoch(h);
        }
        epoch = repl.epoch();
    }
    // Followers are *ready* (they serve reads); the role field tells the
    // router which replica may take writes.
    let role = state
        .repl
        .as_ref()
        .map_or("standalone", |r| r.role().as_str());
    Response::json(
        code,
        &Json::obj(vec![
            ("status", Json::from(status)),
            ("breaker", Json::from(breaker.as_str())),
            ("role", Json::from(role)),
            ("epoch", Json::from(epoch)),
        ]),
    )
}

/// `GET /metrics` — Prometheus text exposition (format 0.0.4).
///
/// Three layers share the document: hand-named serving-tier families
/// (`cqp_admission_*`, `cqp_wal_*`, `cqp_slo_*`, …), the labeled request
/// counters from [`Telemetry`], and the whole aggregate [`Obs`] registry
/// mangled under `cqp_` (`server.latency_us` → `cqp_server_latency_us`,
/// a full histogram family). The name sets are disjoint by construction:
/// registry paths all start with a subsystem segment (`server.`,
/// `batch.`, `solver.`…), while hand-named families never reuse those
/// prefixes after `cqp_`.
fn metrics(state: &ServerState) -> Response {
    let mut w = PromWriter::new();
    let (admitted, rejected, timed_out) = state.gate.counters();
    w.counter(
        "cqp_admission_admitted_total",
        "Requests granted an execution slot.",
        admitted,
    );
    w.counter(
        "cqp_admission_rejected_total",
        "Requests shed because slots and queue were full (429).",
        rejected,
    );
    w.counter(
        "cqp_admission_queue_timeouts_total",
        "Queued requests whose deadline passed before a slot freed (503).",
        timed_out,
    );
    w.gauge(
        "cqp_admission_queue_depth",
        "Requests currently waiting for an execution slot.",
        state.gate.queue_depth() as f64,
    );
    w.gauge(
        "cqp_admission_inflight",
        "Requests currently executing the personalization pipeline.",
        state.gate.inflight() as f64,
    );
    w.gauge(
        "cqp_connections_active",
        "Connections currently being served.",
        state.active_connections() as f64,
    );
    w.counter(
        "cqp_drain_rejected_total",
        "Requests answered 503 + close while draining.",
        state.drain_rejected(),
    );
    w.gauge(
        "cqp_phase",
        "Lifecycle phase: 0 live, 1 draining, 2 stopped.",
        state.phase() as u8 as f64,
    );
    w.gauge(
        "cqp_profiles",
        "User profiles resident in the session store.",
        state.store.len() as f64,
    );
    let (upserts, lookups, misses) = state.store.counters();
    w.counter("cqp_profile_upserts_total", "Profile writes.", upserts);
    w.counter("cqp_profile_lookups_total", "Profile reads.", lookups);
    w.counter(
        "cqp_profile_misses_total",
        "Profile reads for unknown users.",
        misses,
    );
    let (cache_hits, cache_misses, cache_evictions) = state.driver.submit_cache_counters();
    w.family(
        "cqp_cache_events_total",
        "Submit cost-cache events by kind.",
        "counter",
    );
    w.sample(
        "cqp_cache_events_total",
        &[("kind", "hit")],
        cache_hits as f64,
    );
    w.sample(
        "cqp_cache_events_total",
        &[("kind", "miss")],
        cache_misses as f64,
    );
    w.sample(
        "cqp_cache_events_total",
        &[("kind", "eviction")],
        cache_evictions as f64,
    );
    w.family(
        "cqp_cache_policy",
        "Active submit-cache eviction policy (info-style, value is 1).",
        "gauge",
    );
    w.sample(
        "cqp_cache_policy",
        &[("policy", state.driver_cache_policy())],
        1.0,
    );
    if let Some(cache) = state.driver.answer_cache() {
        let c = cache.counters();
        w.family(
            "cqp_answer_cache_hits_total",
            "Answer-cache hits by reuse tier.",
            "counter",
        );
        w.sample(
            "cqp_answer_cache_hits_total",
            &[("tier", "exact")],
            c.hits_exact as f64,
        );
        w.sample(
            "cqp_answer_cache_hits_total",
            &[("tier", "warm")],
            c.hits_warm as f64,
        );
        w.sample(
            "cqp_answer_cache_hits_total",
            &[("tier", "repair")],
            c.hits_repair as f64,
        );
        w.counter(
            "cqp_answer_cache_misses_total",
            "Answer-cache lookups that found nothing reusable.",
            c.misses,
        );
        w.counter(
            "cqp_answer_cache_invalidations_total",
            "Cached answers dropped by session-write invalidation.",
            c.invalidations,
        );
        w.gauge(
            "cqp_answer_cache_entries",
            "Answers currently cached across all families.",
            cache.entries() as f64,
        );
    }
    w.counter(
        "cqp_submit_panics_total",
        "Solver panics caught by the dispatch supervisor.",
        state.driver.submit_panics(),
    );
    w.counter(
        "cqp_submit_retries_total",
        "Dispatch retries after a caught panic.",
        state.driver.submit_retries(),
    );
    let breaker_state = state.breaker.state();
    let (br_opened, br_half, br_closed, br_shed) = state.breaker.counters();
    w.gauge(
        "cqp_breaker_state",
        "Circuit breaker: 0 closed, 1 half-open, 2 open.",
        match breaker_state {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        },
    );
    w.family(
        "cqp_breaker_transitions_total",
        "Circuit-breaker transitions by target state.",
        "counter",
    );
    w.sample(
        "cqp_breaker_transitions_total",
        &[("to", "open")],
        br_opened as f64,
    );
    w.sample(
        "cqp_breaker_transitions_total",
        &[("to", "half_open")],
        br_half as f64,
    );
    w.sample(
        "cqp_breaker_transitions_total",
        &[("to", "closed")],
        br_closed as f64,
    );
    w.counter(
        "cqp_breaker_shed_total",
        "Requests shed while the breaker was open.",
        br_shed,
    );
    if let Some(wal) = state.store.wal() {
        let (appends, append_errors, bytes_appended, compactions) = wal.counters();
        w.counter("cqp_wal_appends_total", "WAL records appended.", appends);
        w.counter(
            "cqp_wal_append_errors_total",
            "WAL append failures.",
            append_errors,
        );
        w.counter(
            "cqp_wal_bytes_appended_total",
            "Bytes appended to the WAL.",
            bytes_appended,
        );
        w.counter(
            "cqp_wal_compactions_total",
            "WAL snapshot compactions.",
            compactions,
        );
        w.gauge(
            "cqp_wal_bytes_since_compaction",
            "Live WAL log size: bytes appended since the last compaction.",
            wal.bytes_since_compaction() as f64,
        );
        if let Some(r) = &state.recovery {
            w.gauge(
                "cqp_wal_records_recovered",
                "Records replayed by startup recovery.",
                r.records_replayed() as f64,
            );
            w.gauge(
                "cqp_wal_torn_tail_bytes",
                "Bytes discarded from a torn WAL tail at recovery.",
                r.torn_tail_bytes as f64,
            );
        }
    }
    if let Some(repl) = &state.repl {
        let (shipped, received, failovers) = repl.counters();
        let (fenced_writes, fenced_frames) = repl.fenced_counters();
        w.gauge(
            "cqp_repl_role",
            "Replication role: 0 primary, 1 follower, 2 fenced.",
            repl.role() as u8 as f64,
        );
        w.gauge(
            "cqp_repl_epoch",
            "Replication epoch this replica speaks (monotone; bumped by promotion).",
            repl.epoch() as f64,
        );
        w.counter(
            "cqp_repl_fenced_writes_total",
            "Profile writes refused with stale_epoch (fenced replica or epoch mismatch).",
            fenced_writes,
        );
        w.counter(
            "cqp_repl_fenced_frames_total",
            "Replication frames refused because the stream's epoch fell behind.",
            fenced_frames,
        );
        w.gauge(
            "cqp_repl_lag_records",
            "Frames written to the follower socket but not yet acked.",
            repl.lag_records() as f64,
        );
        w.counter(
            "cqp_repl_shipped_total",
            "WAL frames shipped to and acked by a follower.",
            shipped,
        );
        w.counter(
            "cqp_repl_received_total",
            "WAL frames applied from the primary's stream.",
            received,
        );
        w.counter(
            "cqp_repl_failovers_total",
            "Follower-to-primary promotions.",
            failovers,
        );
    }
    // SLO: windowed rate and burn over per-second buckets.
    let tel = &state.telemetry;
    let slo = tel.slo.snapshot();
    w.gauge(
        "cqp_slo_objective_us",
        "Configured latency objective, microseconds.",
        slo.objective_us as f64,
    );
    w.gauge(
        "cqp_slo_window_seconds",
        "Sliding window the rate/burn gauges cover.",
        slo.window_secs as f64,
    );
    w.gauge(
        "cqp_request_rate_per_sec",
        "Personalize request rate over the SLO window.",
        slo.rate_per_sec,
    );
    w.gauge(
        "cqp_slo_burn_ratio",
        "Fraction of windowed requests over the latency objective.",
        slo.burn_ratio,
    );
    w.gauge(
        "cqp_slo_window_requests",
        "Personalize requests inside the SLO window.",
        slo.requests as f64,
    );
    w.gauge(
        "cqp_slo_window_over_objective",
        "Windowed requests that exceeded the latency objective.",
        slo.over_objective as f64,
    );
    // Tracing retention.
    let (pushed, evicted) = tel.ring.counters();
    w.gauge(
        "cqp_traces_retained",
        "Traces currently held in the retention ring.",
        tel.ring.len() as f64,
    );
    w.counter("cqp_traces_captured_total", "Traces captured.", pushed);
    w.counter(
        "cqp_traces_evicted_total",
        "Traces evicted from the retention ring.",
        evicted,
    );
    w.gauge(
        "cqp_slow_log_threshold_us",
        "Latency a request must exceed to enter the full slow-query log.",
        tel.slow.threshold_us() as f64,
    );
    tel.requests.render(&mut w);
    tel.personalize.render(&mut w);
    // Everything the solver/engine recorded through Obs, under `cqp_`.
    render_registry(state.obs.registry(), "cqp_", &mut w);
    Response::text_with_type(200, w.finish(), TEXT_CONTENT_TYPE)
}

impl ServerState {
    fn driver_cache_policy(&self) -> &'static str {
        self.config.cache_policy.name()
    }
}

/// `POST /admin/promote` — promotes this replica to primary at a higher
/// epoch (failover/fencing). An optional `?epoch=N` query names the
/// target epoch: promotion succeeds only if `N` is strictly above the
/// replica's own, so a router racing two promotions at the same target
/// crowns exactly one winner. Without a target, a follower (or fenced
/// replica) advances to `own + 1`; a primary is a no-op. Always 200 with
/// the resulting role and epoch, so the router can fire it blind.
fn promote(state: &ServerState, req: &Request) -> Response {
    let target = req
        .query_param("epoch")
        .and_then(|v| v.trim().parse::<u64>().ok());
    let (promoted, role, epoch, failovers) = match &state.repl {
        Some(repl) => {
            let outcome = repl.promote_to(target);
            (
                outcome.promoted,
                repl.role().as_str(),
                outcome.epoch,
                repl.counters().2,
            )
        }
        None => (false, "primary", 0, 0),
    };
    Response::json(
        200,
        &Json::obj(vec![
            ("promoted", Json::Bool(promoted)),
            ("role", Json::from(role)),
            ("epoch", Json::from(epoch)),
            ("failovers", Json::from(failovers)),
        ]),
    )
}

fn upsert_profile(state: &ServerState, req: &Request, user: &str) -> Result<Response, ApiError> {
    if let Some(repl) = &state.repl {
        let header_epoch = req
            .header("x-cqp-epoch")
            .and_then(|v| v.trim().parse::<u64>().ok());
        match repl.gate_write(header_epoch) {
            crate::repl::WriteGate::Allow => {}
            crate::repl::WriteGate::NotPrimary => {
                // Followers apply the primary's stream only: accepting a
                // direct write here would fork the version chain the
                // primary is still extending. 503 (not 4xx) — the router
                // retries the write against the primary, or promotes us
                // first.
                return Err(ApiError::new(
                    503,
                    "not_primary",
                    "this replica is a follower; write to the primary or promote it",
                ));
            }
            crate::repl::WriteGate::StaleEpoch { own } => {
                // Either we are fenced (a newer primary exists) or the
                // write was routed under a superseded epoch. Refusing is
                // what keeps split-brain one-sided: the old primary never
                // extends its version chain past the fence.
                return Err(ApiError::new(
                    503,
                    "stale_epoch",
                    format!(
                        "write refused at epoch {own}: a newer primary epoch exists \
                         (this replica is {})",
                        repl.role().as_str()
                    ),
                ));
            }
        }
    }
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::new(400, "bad_encoding", "profile body must be utf-8"))?;
    let mode = if req.query_param("merge") == Some("true") {
        UpsertMode::Merge
    } else {
        UpsertMode::Replace
    };
    let (version, preferences) = state
        .store
        .upsert_text(user, text, state.db.catalog(), mode)
        .map_err(|e| ApiError::new(400, "bad_profile", e.to_string()))?;
    state.obs.add("server.profile_upserts", 1);
    let epoch = state.repl.as_ref().map_or(0, |r| r.epoch());
    Ok(Response::json(
        200,
        &Json::obj(vec![
            ("user", Json::from(user)),
            ("version", Json::from(version)),
            ("preferences", Json::from(preferences as u64)),
            ("epoch", Json::from(epoch)),
        ]),
    ))
}

fn get_profile(state: &ServerState, user: &str) -> Result<Response, ApiError> {
    match state.store.render_text(user, state.db.catalog()) {
        Some(text) => Ok(Response::text(200, text)),
        None => Err(ApiError::new(
            404,
            "unknown_user",
            format!("no profile for {user:?}"),
        )),
    }
}

/// Parsed personalize-request parameters.
struct PersonalizeParams {
    user: String,
    query: cqp_engine::ConjunctiveQuery,
    /// Answer-cache template identity: canonicalized SQL chained with the
    /// parsed query ([`crate::canon::template_hash`]).
    template_hash: u64,
    problem: ProblemSpec,
    algorithm: Algorithm,
    top_k: Option<usize>,
    deadline_ms: Option<u64>,
    want_rows: bool,
    rank_min_match: Option<usize>,
}

/// Validates the request body; every failure is a 4xx.
fn parse_personalize(state: &ServerState, req: &Request) -> Result<PersonalizeParams, ApiError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::new(400, "bad_encoding", "body must be utf-8"))?;
    let body = json::parse(text).map_err(|e| ApiError::new(400, "bad_json", e.to_string()))?;
    let user = body
        .get("user")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new(400, "missing_field", "`user` (string) is required"))?
        .to_string();
    let sql = body
        .get("sql")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new(400, "missing_field", "`sql` (string) is required"))?;
    let query = parse_query(sql, state.db.catalog())
        .map_err(|e| ApiError::new(400, "bad_query", e.to_string()))?;
    let template_hash = crate::canon::template_hash(sql, &query);
    let problem =
        parse_problem(body.get("problem").ok_or_else(|| {
            ApiError::new(400, "missing_field", "`problem` (object) is required")
        })?)?;
    let algorithm = match body.get("algorithm") {
        None => SolverConfig::default().algorithm,
        Some(a) => a
            .as_str()
            .and_then(Algorithm::by_name)
            .ok_or_else(|| ApiError::new(400, "bad_algorithm", "unknown algorithm"))?,
    };
    let top_k = match body.get("top_k") {
        None => None,
        Some(k) => Some(k.as_u64().ok_or_else(|| {
            ApiError::new(400, "bad_top_k", "`top_k` must be a non-negative integer")
        })? as usize),
    };
    // The header wins over the body field (operators can cap a deployment
    // at the proxy without touching clients).
    let deadline_ms = match (req.header("x-cqp-deadline-ms"), body.get("deadline_ms")) {
        (Some(h), _) => Some(h.parse::<u64>().map_err(|_| {
            ApiError::new(400, "bad_deadline", "x-cqp-deadline-ms must be an integer")
        })?),
        (None, Some(d)) => Some(d.as_u64().ok_or_else(|| {
            ApiError::new(
                400,
                "bad_deadline",
                "`deadline_ms` must be a non-negative integer",
            )
        })?),
        (None, None) => state.config.default_deadline_ms,
    };
    let want_rows = body.get("rows").and_then(Json::as_bool).unwrap_or(false);
    let rank_min_match = match body.get("rank") {
        None => None,
        Some(r) => Some(
            r.get("min_match")
                .map(|m| {
                    m.as_u64().ok_or_else(|| {
                        ApiError::new(
                            400,
                            "bad_rank",
                            "`rank.min_match` must be a non-negative integer",
                        )
                    })
                })
                .transpose()?
                .unwrap_or(1) as usize,
        ),
    };
    Ok(PersonalizeParams {
        user,
        query,
        template_hash,
        problem,
        algorithm,
        top_k,
        deadline_ms,
        want_rows,
        rank_min_match,
    })
}

/// Builds the Table 1 problem spec from `{"kind": "p2", ...}`.
fn parse_problem(spec: &Json) -> Result<ProblemSpec, ApiError> {
    let bad = |msg: &str| ApiError::new(400, "bad_problem", msg);
    let kind = spec
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`problem.kind` (p1..p6) is required"))?;
    let num = |key: &str| -> Result<Option<f64>, ApiError> {
        match spec.get(key) {
            None => Ok(None),
            Some(v) => v.as_f64().map(Some).ok_or_else(|| {
                ApiError::new(
                    400,
                    "bad_problem",
                    format!("`problem.{key}` must be a number"),
                )
            }),
        }
    };
    let require = |key: &str| -> Result<f64, ApiError> {
        num(key)?.ok_or_else(|| {
            ApiError::new(
                400,
                "bad_problem",
                format!("`problem.{key}` is required for this kind"),
            )
        })
    };
    let doi = |v: f64| -> Result<Doi, ApiError> {
        if (0.0..=1.0).contains(&v) {
            Ok(Doi::new(v))
        } else {
            Err(bad("`problem.dmin` must be within [0, 1]"))
        }
    };
    let blocks = |v: f64| -> Result<u64, ApiError> {
        if v >= 0.0 && v.fract() == 0.0 {
            Ok(v as u64)
        } else {
            Err(bad("`problem.cmax` must be a non-negative integer"))
        }
    };
    match kind.to_ascii_lowercase().as_str() {
        "p1" => Ok(ProblemSpec::p1(require("smin")?, require("smax")?)),
        "p2" => Ok(ProblemSpec::p2(blocks(require("cmax")?)?)),
        "p3" => Ok(ProblemSpec::p3(
            blocks(require("cmax")?)?,
            require("smin")?,
            require("smax")?,
        )),
        "p4" => Ok(ProblemSpec::p4(doi(require("dmin")?)?)),
        "p5" => Ok(ProblemSpec::p5(
            doi(require("dmin")?)?,
            require("smin")?,
            require("smax")?,
        )),
        "p6" => Ok(ProblemSpec::p6(require("smin")?, require("smax")?)),
        other => Err(bad(&format!(
            "unknown problem kind {other:?} (want p1..p6)"
        ))),
    }
}

/// Maps a pipeline error onto a status: request-shaped failures are 4xx,
/// transient storage trouble is 503, and only genuine internal faults
/// (caught panics) surface as 500.
fn cqp_error_response(e: &CqpError) -> ApiError {
    let status = match e {
        CqpError::InvalidRequest(_) => 400,
        CqpError::SpaceTooLarge { .. } | CqpError::Construct(_) => 422,
        CqpError::Engine(_) | CqpError::Storage(_) => {
            if e.is_transient() {
                503
            } else {
                422
            }
        }
        CqpError::Internal(_) => 500,
        CqpError::CircuitOpen { retry_after_ms } => {
            return ApiError::new(503, e.kind(), e.to_string()).with_retry_after_ms(*retry_after_ms)
        }
    };
    ApiError::new(status, e.kind(), e.to_string())
}

/// The personalize handler proper. `rec` is either the per-request
/// [`RequestRecorder`] (sampled) or the global [`Obs`] directly, so the
/// span vocabulary here — `session`, `admission`, `dispatch` (inside the
/// driver), `materialize` — lands in the aggregate tracer either way.
/// `ctx` carries labels out to [`personalize_route`] on every exit path.
fn personalize(
    state: &ServerState,
    req: &Request,
    rec: &dyn Recorder,
    ctx: &mut PersonalizeCtx,
) -> Result<Response, ApiError> {
    let t0 = Instant::now();
    let params = parse_personalize(state, req)?;
    ctx.user.clone_from(&params.user);
    ctx.problem = params
        .problem
        .kind()
        .map_or("custom".to_string(), |k| format!("{k:?}").to_lowercase());
    ctx.algorithm = params.algorithm.wire_name();
    ctx.deadline_ms = params.deadline_ms;
    let stored = {
        let _span = span_guard(rec, "session");
        state.store.select(&params.user, params.top_k)
    }
    .ok_or_else(|| {
        ApiError::new(
            404,
            "unknown_user",
            format!("no profile for {:?}", params.user),
        )
    })?;

    // Admission: hold a permit for the whole solve + execute. The span
    // measures time spent *waiting* for a slot.
    let permit = {
        let _span = span_guard(rec, "admission");
        state
            .gate
            .admit(Duration::from_millis(state.config.queue_wait_ms))
    };
    let _permit = permit.map_err(|e| {
        ctx.outcome = "shed";
        match e {
            AdmissionError::Overloaded { retry_after_ms } => {
                state.obs.add("server.rejected", 1);
                ApiError::new(
                    429,
                    "overloaded",
                    format!("retry after {retry_after_ms} ms"),
                )
                .with_retry_after_ms(retry_after_ms)
            }
            AdmissionError::QueueTimeout => {
                state.obs.add("server.queue_timeouts", 1);
                ApiError::new(503, "queue_timeout", "no execution slot freed in time")
            }
        }
    })?;

    let mut config = SolverConfig {
        algorithm: params.algorithm,
        ..Default::default()
    };
    if let Some(ms) = params.deadline_ms {
        config.budget = Budget::with_deadline_ms(ms);
    }
    let batch_req = BatchRequest {
        query: params.query,
        profile: stored.profile,
        problem: params.problem,
        config,
    };
    // The profile key scopes the family to the personalization depth —
    // `top_k` truncates the profile, so two depths are two profiles —
    // while a session write for the user invalidates every scope at once
    // (see `AnswerCache::invalidate_profile`).
    let cache_req = CacheRequest {
        template_hash: params.template_hash,
        profile_key: match params.top_k {
            None => params.user.clone(),
            Some(k) => format!("{}{}k{k}", params.user, PROFILE_SCOPE_SEP),
        },
        profile_version: stored.version,
    };
    let (item, cache_tier) = state
        .driver
        .submit_cached_recorded(batch_req, &cache_req, rec)
        .map_err(|e| {
            state.obs.add("server.solver_errors", 1);
            let api = cqp_error_response(&e);
            if api.status == 429 || api.status == 503 {
                state.obs.add("server.unavailable", 1);
                ctx.outcome = "shed";
            }
            api
        })?;

    // Result materialization (zero simulated I/O latency: the serving
    // layer measures real wall-clock, not the paper's block model).
    let meter = IoMeter::new(0.0);
    let materialize_span = span_guard(rec, "materialize");
    let rows_json = if params.want_rows {
        let out = execute_personalized(&state.db, &item.query, &meter)
            .map_err(|e| cqp_error_response(&CqpError::from(e)))?;
        Some(Json::Arr(out.rows.iter().map(|r| row_to_json(r)).collect()))
    } else {
        None
    };
    let ranked_json = match params.rank_min_match {
        None => None,
        Some(min_match) => {
            let ranked = execute_ranked(
                &state.db,
                &item.query,
                &item.pref_dois,
                Matching::AtLeast(min_match.max(1)),
                &meter,
            )
            .map_err(|e| cqp_error_response(&CqpError::from(e)))?;
            Some(Json::Arr(
                ranked
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("doi", Json::from(r.doi)),
                            ("row", row_to_json(&r.row)),
                        ])
                    })
                    .collect(),
            ))
        }
    };
    drop(materialize_span);

    let degraded = match &item.solution.degraded {
        None => Json::Null,
        Some(d) => Json::obj(vec![
            ("reason", Json::from(d.reason.name())),
            ("states_visited", Json::from(d.states_visited)),
            ("elapsed_us", Json::from(d.elapsed.as_micros() as u64)),
        ]),
    };
    if item.solution.degraded.is_some() {
        state.obs.add("server.degraded", 1);
        ctx.outcome = "degraded";
    } else {
        ctx.outcome = "ok";
    }
    state.obs.add("server.personalized", 1);
    let latency_us = t0.elapsed().as_micros() as u64;
    state.obs.observe("server.latency_us", latency_us);

    let mut members = vec![
        ("user".to_string(), Json::from(params.user.as_str())),
        ("profile_version".to_string(), Json::from(stored.version)),
        ("problem".to_string(), Json::from(ctx.problem.as_str())),
        ("algorithm".to_string(), Json::from(params.algorithm.name())),
        ("space_k".to_string(), Json::from(item.space_k as u64)),
        (
            "solution".to_string(),
            Json::obj(vec![
                (
                    "prefs",
                    Json::Arr(
                        item.solution
                            .prefs
                            .iter()
                            .map(|&p| Json::from(p as u64))
                            .collect(),
                    ),
                ),
                ("doi", Json::from(item.solution.doi.value())),
                ("cost_blocks", Json::from(item.solution.cost_blocks)),
                ("size_rows", Json::from(item.solution.size_rows)),
                ("found", Json::Bool(item.solution.found)),
                ("degraded", degraded),
            ]),
        ),
        (
            "pref_dois".to_string(),
            Json::Arr(item.pref_dois.iter().map(|&d| Json::from(d)).collect()),
        ),
        ("sql".to_string(), Json::from(item.sql.as_str())),
        ("cache".to_string(), Json::from(cache_tier.name())),
        ("latency_us".to_string(), Json::from(latency_us)),
    ];
    if let Some(rows) = rows_json {
        members.push(("rows".to_string(), rows));
    }
    if let Some(ranked) = ranked_json {
        members.push(("ranked".to_string(), ranked));
    }
    Ok(Response::json(200, &Json::Obj(members)))
}

/// Renders a tuple as an array of display strings (stable, type-agnostic —
/// the bit-identity tests compare these exact strings).
fn row_to_json(row: &[cqp_storage::Value]) -> Json {
    Json::Arr(row.iter().map(|v| Json::from(v.to_string())).collect())
}
