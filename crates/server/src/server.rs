//! The HTTP front-end: routing, request validation, and lifecycle.
//!
//! One accept loop, one thread per connection (bounded in practice by the
//! admission gate: connections are cheap, *solver slots* are the scarce
//! resource). Every handler failure maps to a typed JSON error — the
//! personalization pipeline's own taxonomy ([`CqpError`]) decides between
//! 4xx and 5xx, and malformed requests can never surface as a 500.

use crate::admission::{AdmissionController, AdmissionError};
use crate::http::{parse_request, HttpError, Request, Response};
use crate::json;
use crate::session::{SessionStore, UpsertMode};
use cqp_core::budget::Budget;
use cqp_core::prelude::*;
use cqp_engine::{execute_personalized, execute_ranked, parse_query, Matching};
use cqp_obs::report::snapshot_to_json;
use cqp_obs::{Json, Obs, Recorder};
use cqp_prefs::Doi;
use cqp_storage::{Database, IoMeter};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for [`start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Concurrent personalization executions admitted.
    pub max_inflight: usize,
    /// Requests allowed to wait for an execution slot; beyond this → 429.
    pub queue_cap: usize,
    /// `Retry-After` hint on 429 responses, milliseconds.
    pub retry_after_ms: u64,
    /// Longest a queued request waits for a slot before a 503.
    pub queue_wait_ms: u64,
    /// Session-store shards.
    pub store_shards: usize,
    /// Users to pre-seed from `cqp-datagen` (0 = none).
    pub seed_users: usize,
    /// Base seed for profile seeding.
    pub seed: u64,
    /// Cost-cache eviction policy for the submit path.
    pub cache_policy: EvictionPolicy,
    /// Cost-cache total capacity (entries).
    pub cache_capacity: usize,
    /// Deadline applied when a request specifies none (ms; `None` = no
    /// default deadline).
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: std::thread::available_parallelism().map_or(2, usize::from),
            queue_cap: 32,
            retry_after_ms: 250,
            queue_wait_ms: 1_000,
            store_shards: 8,
            seed_users: 0,
            seed: 42,
            // LRU: a serving cache lives across requests, so recency —
            // not insertion age — predicts reuse.
            cache_policy: EvictionPolicy::Lru,
            cache_capacity: cqp_core::batch::SUBMIT_CACHE_CAPACITY,
            default_deadline_ms: None,
        }
    }
}

/// Shared server state, visible to handlers and (via the handle) tests.
#[derive(Debug)]
pub struct ServerState {
    /// The shared database.
    pub db: Arc<Database>,
    /// The solver driver (persistent LRU submit cache).
    pub driver: BatchDriver,
    /// Per-user profiles.
    pub store: SessionStore,
    /// The admission gate.
    pub gate: AdmissionController,
    /// Metrics + tracing sink.
    pub obs: Arc<Obs>,
    config: ServerConfig,
    started: Instant,
}

/// A running server; stops (and joins its threads) on [`ServerHandle::stop`]
/// or drop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state — the tests' window into counters and the gate.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops accepting, severs open connections, and joins the accept
    /// loop. Idempotent.
    pub fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock `accept` by connecting once; sever live connections so
        // keep-alive handlers observe EOF instead of blocking forever.
        let _ = TcpStream::connect(self.addr);
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts a server over `db` per `config`; returns once the socket is
/// bound and accepting.
pub fn start(db: Arc<Database>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let driver = BatchDriver::new(Arc::clone(&db), 1)
        .with_submit_cache(config.cache_policy, config.cache_capacity);
    let store = SessionStore::new(config.store_shards);
    if config.seed_users > 0 {
        store.seed_from_datagen(db.catalog(), config.seed_users, config.seed);
    }
    let state = Arc::new(ServerState {
        gate: AdmissionController::new(
            config.max_inflight,
            config.queue_cap,
            config.retry_after_ms,
        ),
        driver,
        store,
        obs: Arc::new(Obs::new()),
        db,
        config,
        started: Instant::now(),
    });
    let shutdown = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_state = Arc::clone(&state);
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_conns = Arc::clone(&conns);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let _ = stream.set_nodelay(true);
            if let Ok(clone) = stream.try_clone() {
                accept_conns
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(clone);
            }
            let state = Arc::clone(&accept_state);
            let shutdown = Arc::clone(&accept_shutdown);
            // Connection handlers are detached: shutdown severs their
            // sockets, which ends their read loops promptly.
            std::thread::spawn(move || serve_connection(stream, &state, &shutdown));
        }
    });

    Ok(ServerHandle {
        addr,
        state,
        shutdown,
        accept_thread: Some(accept_thread),
        conns,
    })
}

/// Keep-alive request loop over one connection.
fn serve_connection(stream: TcpStream, state: &ServerState, shutdown: &AtomicBool) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    while !shutdown.load(Ordering::SeqCst) {
        let (response, keep_alive) = match parse_request(&mut reader) {
            Ok(req) => {
                let keep = req.keep_alive;
                (route(state, &req), keep)
            }
            Err(HttpError::ConnectionClosed) => return,
            Err(e) => {
                state.obs.add("server.http_errors", 1);
                (http_error_response(&e), false)
            }
        };
        if response.write_to(&mut write_half, keep_alive).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// A typed API failure: status + stable code + message, plus the
/// `Retry-After` hint 429s carry.
struct ApiError {
    status: u16,
    code: &'static str,
    message: String,
    retry_after_ms: Option<u64>,
}

impl ApiError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    fn with_retry_after_ms(mut self, ms: u64) -> ApiError {
        self.retry_after_ms = Some(ms);
        self
    }

    fn response(&self) -> Response {
        let resp = Response::json(
            self.status,
            &Json::obj(vec![(
                "error",
                Json::obj(vec![
                    ("code", Json::from(self.code)),
                    ("message", Json::from(self.message.as_str())),
                ]),
            )]),
        );
        match self.retry_after_ms {
            // Retry-After is whole seconds on the wire; round up so the
            // hint never tells a client to come back too early.
            Some(ms) => resp.with_header("retry-after", ms.div_ceil(1000).max(1).to_string()),
            None => resp,
        }
    }
}

/// Maps an HTTP parse failure onto a 4xx.
fn http_error_response(e: &HttpError) -> Response {
    let (status, code) = match e {
        HttpError::BodyTooLarge(_) => (413, "body_too_large"),
        HttpError::HeadTooLarge => (431, "head_too_large"),
        _ => (400, "bad_request"),
    };
    ApiError::new(status, code, e.to_string()).response()
}

/// Dispatches one parsed request.
fn route(state: &ServerState, req: &Request) -> Response {
    state.obs.add("server.requests", 1);
    let segments = req.segments();
    let result = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(healthz(state)),
        ("GET", ["metrics"]) => Ok(metrics(state)),
        ("POST", ["profiles", user]) => upsert_profile(state, req, user),
        ("GET", ["profiles", user]) => get_profile(state, user),
        ("POST", ["personalize"]) => personalize(state, req),
        (_, ["healthz" | "metrics"]) | (_, ["profiles", _]) | (_, ["personalize"]) => Err(
            ApiError::new(405, "method_not_allowed", "wrong method for this path"),
        ),
        _ => Err(ApiError::new(
            404,
            "not_found",
            format!("no route for {}", req.path),
        )),
    };
    match result {
        Ok(resp) => resp,
        Err(e) => {
            state.obs.add("server.request_errors", 1);
            e.response()
        }
    }
}

fn healthz(state: &ServerState) -> Response {
    Response::json(
        200,
        &Json::obj(vec![
            ("status", Json::from("ok")),
            (
                "uptime_secs",
                Json::from(state.started.elapsed().as_secs_f64()),
            ),
            ("profiles", Json::from(state.store.len() as u64)),
            ("inflight", Json::from(state.gate.inflight() as u64)),
        ]),
    )
}

fn metrics(state: &ServerState) -> Response {
    let (admitted, rejected, timed_out) = state.gate.counters();
    let (upserts, lookups, misses) = state.store.counters();
    let (cache_hits, cache_misses, cache_evictions) = state.driver.submit_cache_counters();
    let server = Json::obj(vec![
        ("admitted", Json::from(admitted)),
        ("rejected", Json::from(rejected)),
        ("queue_timeouts", Json::from(timed_out)),
        ("profiles", Json::from(state.store.len() as u64)),
        ("profile_upserts", Json::from(upserts)),
        ("profile_lookups", Json::from(lookups)),
        ("profile_misses", Json::from(misses)),
        ("cache_hits", Json::from(cache_hits)),
        ("cache_misses", Json::from(cache_misses)),
        ("cache_evictions", Json::from(cache_evictions)),
        ("cache_policy", Json::from(state.driver_cache_policy())),
        ("submit_panics", Json::from(state.driver.submit_panics())),
        ("submit_retries", Json::from(state.driver.submit_retries())),
    ]);
    let mut metrics = match snapshot_to_json(&state.obs.snapshot()) {
        Json::Obj(members) => members,
        other => vec![("metrics".to_string(), other)],
    };
    metrics.push(("server".to_string(), server));
    Response::json(200, &Json::Obj(metrics))
}

impl ServerState {
    fn driver_cache_policy(&self) -> &'static str {
        self.config.cache_policy.name()
    }
}

fn upsert_profile(state: &ServerState, req: &Request, user: &str) -> Result<Response, ApiError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::new(400, "bad_encoding", "profile body must be utf-8"))?;
    let mode = if req.query_param("merge") == Some("true") {
        UpsertMode::Merge
    } else {
        UpsertMode::Replace
    };
    let (version, preferences) = state
        .store
        .upsert_text(user, text, state.db.catalog(), mode)
        .map_err(|e| ApiError::new(400, "bad_profile", e.to_string()))?;
    state.obs.add("server.profile_upserts", 1);
    Ok(Response::json(
        200,
        &Json::obj(vec![
            ("user", Json::from(user)),
            ("version", Json::from(version)),
            ("preferences", Json::from(preferences as u64)),
        ]),
    ))
}

fn get_profile(state: &ServerState, user: &str) -> Result<Response, ApiError> {
    match state.store.render_text(user, state.db.catalog()) {
        Some(text) => Ok(Response::text(200, text)),
        None => Err(ApiError::new(
            404,
            "unknown_user",
            format!("no profile for {user:?}"),
        )),
    }
}

/// Parsed personalize-request parameters.
struct PersonalizeParams {
    user: String,
    query: cqp_engine::ConjunctiveQuery,
    problem: ProblemSpec,
    algorithm: Algorithm,
    top_k: Option<usize>,
    deadline_ms: Option<u64>,
    want_rows: bool,
    rank_min_match: Option<usize>,
}

/// Validates the request body; every failure is a 4xx.
fn parse_personalize(state: &ServerState, req: &Request) -> Result<PersonalizeParams, ApiError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::new(400, "bad_encoding", "body must be utf-8"))?;
    let body = json::parse(text).map_err(|e| ApiError::new(400, "bad_json", e.to_string()))?;
    let user = body
        .get("user")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new(400, "missing_field", "`user` (string) is required"))?
        .to_string();
    let sql = body
        .get("sql")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new(400, "missing_field", "`sql` (string) is required"))?;
    let query = parse_query(sql, state.db.catalog())
        .map_err(|e| ApiError::new(400, "bad_query", e.to_string()))?;
    let problem =
        parse_problem(body.get("problem").ok_or_else(|| {
            ApiError::new(400, "missing_field", "`problem` (object) is required")
        })?)?;
    let algorithm = match body.get("algorithm") {
        None => SolverConfig::default().algorithm,
        Some(a) => a
            .as_str()
            .and_then(Algorithm::by_name)
            .ok_or_else(|| ApiError::new(400, "bad_algorithm", "unknown algorithm"))?,
    };
    let top_k = match body.get("top_k") {
        None => None,
        Some(k) => Some(k.as_u64().ok_or_else(|| {
            ApiError::new(400, "bad_top_k", "`top_k` must be a non-negative integer")
        })? as usize),
    };
    // The header wins over the body field (operators can cap a deployment
    // at the proxy without touching clients).
    let deadline_ms = match (req.header("x-cqp-deadline-ms"), body.get("deadline_ms")) {
        (Some(h), _) => Some(h.parse::<u64>().map_err(|_| {
            ApiError::new(400, "bad_deadline", "x-cqp-deadline-ms must be an integer")
        })?),
        (None, Some(d)) => Some(d.as_u64().ok_or_else(|| {
            ApiError::new(
                400,
                "bad_deadline",
                "`deadline_ms` must be a non-negative integer",
            )
        })?),
        (None, None) => state.config.default_deadline_ms,
    };
    let want_rows = body.get("rows").and_then(Json::as_bool).unwrap_or(false);
    let rank_min_match = match body.get("rank") {
        None => None,
        Some(r) => Some(
            r.get("min_match")
                .map(|m| {
                    m.as_u64().ok_or_else(|| {
                        ApiError::new(
                            400,
                            "bad_rank",
                            "`rank.min_match` must be a non-negative integer",
                        )
                    })
                })
                .transpose()?
                .unwrap_or(1) as usize,
        ),
    };
    Ok(PersonalizeParams {
        user,
        query,
        problem,
        algorithm,
        top_k,
        deadline_ms,
        want_rows,
        rank_min_match,
    })
}

/// Builds the Table 1 problem spec from `{"kind": "p2", ...}`.
fn parse_problem(spec: &Json) -> Result<ProblemSpec, ApiError> {
    let bad = |msg: &str| ApiError::new(400, "bad_problem", msg);
    let kind = spec
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`problem.kind` (p1..p6) is required"))?;
    let num = |key: &str| -> Result<Option<f64>, ApiError> {
        match spec.get(key) {
            None => Ok(None),
            Some(v) => v.as_f64().map(Some).ok_or_else(|| {
                ApiError::new(
                    400,
                    "bad_problem",
                    format!("`problem.{key}` must be a number"),
                )
            }),
        }
    };
    let require = |key: &str| -> Result<f64, ApiError> {
        num(key)?.ok_or_else(|| {
            ApiError::new(
                400,
                "bad_problem",
                format!("`problem.{key}` is required for this kind"),
            )
        })
    };
    let doi = |v: f64| -> Result<Doi, ApiError> {
        if (0.0..=1.0).contains(&v) {
            Ok(Doi::new(v))
        } else {
            Err(bad("`problem.dmin` must be within [0, 1]"))
        }
    };
    let blocks = |v: f64| -> Result<u64, ApiError> {
        if v >= 0.0 && v.fract() == 0.0 {
            Ok(v as u64)
        } else {
            Err(bad("`problem.cmax` must be a non-negative integer"))
        }
    };
    match kind.to_ascii_lowercase().as_str() {
        "p1" => Ok(ProblemSpec::p1(require("smin")?, require("smax")?)),
        "p2" => Ok(ProblemSpec::p2(blocks(require("cmax")?)?)),
        "p3" => Ok(ProblemSpec::p3(
            blocks(require("cmax")?)?,
            require("smin")?,
            require("smax")?,
        )),
        "p4" => Ok(ProblemSpec::p4(doi(require("dmin")?)?)),
        "p5" => Ok(ProblemSpec::p5(
            doi(require("dmin")?)?,
            require("smin")?,
            require("smax")?,
        )),
        "p6" => Ok(ProblemSpec::p6(require("smin")?, require("smax")?)),
        other => Err(bad(&format!(
            "unknown problem kind {other:?} (want p1..p6)"
        ))),
    }
}

/// Maps a pipeline error onto a status: request-shaped failures are 4xx,
/// transient storage trouble is 503, and only genuine internal faults
/// (caught panics) surface as 500.
fn cqp_error_response(e: &CqpError) -> ApiError {
    let status = match e {
        CqpError::InvalidRequest(_) => 400,
        CqpError::SpaceTooLarge { .. } | CqpError::Construct(_) => 422,
        CqpError::Engine(_) | CqpError::Storage(_) => {
            if e.is_transient() {
                503
            } else {
                422
            }
        }
        CqpError::Internal(_) => 500,
    };
    ApiError::new(status, e.kind(), e.to_string())
}

fn personalize(state: &ServerState, req: &Request) -> Result<Response, ApiError> {
    let t0 = Instant::now();
    let params = parse_personalize(state, req)?;
    let stored = state
        .store
        .select(&params.user, params.top_k)
        .ok_or_else(|| {
            ApiError::new(
                404,
                "unknown_user",
                format!("no profile for {:?}", params.user),
            )
        })?;

    // Admission: hold a permit for the whole solve + execute.
    let _permit = state
        .gate
        .admit(Duration::from_millis(state.config.queue_wait_ms))
        .map_err(|e| match e {
            AdmissionError::Overloaded { retry_after_ms } => {
                state.obs.add("server.rejected", 1);
                ApiError::new(
                    429,
                    "overloaded",
                    format!("retry after {retry_after_ms} ms"),
                )
                .with_retry_after_ms(retry_after_ms)
            }
            AdmissionError::QueueTimeout => {
                state.obs.add("server.queue_timeouts", 1);
                ApiError::new(503, "queue_timeout", "no execution slot freed in time")
            }
        })?;

    let mut config = SolverConfig {
        algorithm: params.algorithm,
        ..Default::default()
    };
    if let Some(ms) = params.deadline_ms {
        config.budget = Budget::with_deadline_ms(ms);
    }
    let batch_req = BatchRequest {
        query: params.query,
        profile: stored.profile,
        problem: params.problem,
        config,
    };
    let item = state
        .driver
        .submit_recorded(batch_req, state.obs.as_ref())
        .map_err(|e| {
            state.obs.add("server.solver_errors", 1);
            let api = cqp_error_response(&e);
            if api.status == 429 || api.status == 503 {
                state.obs.add("server.unavailable", 1);
            }
            api
        })?;

    // Result materialization (zero simulated I/O latency: the serving
    // layer measures real wall-clock, not the paper's block model).
    let meter = IoMeter::new(0.0);
    let rows_json = if params.want_rows {
        let out = execute_personalized(&state.db, &item.query, &meter)
            .map_err(|e| cqp_error_response(&CqpError::from(e)))?;
        Some(Json::Arr(out.rows.iter().map(|r| row_to_json(r)).collect()))
    } else {
        None
    };
    let ranked_json = match params.rank_min_match {
        None => None,
        Some(min_match) => {
            let ranked = execute_ranked(
                &state.db,
                &item.query,
                &item.pref_dois,
                Matching::AtLeast(min_match.max(1)),
                &meter,
            )
            .map_err(|e| cqp_error_response(&CqpError::from(e)))?;
            Some(Json::Arr(
                ranked
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("doi", Json::from(r.doi)),
                            ("row", row_to_json(&r.row)),
                        ])
                    })
                    .collect(),
            ))
        }
    };

    let degraded = match &item.solution.degraded {
        None => Json::Null,
        Some(d) => Json::obj(vec![
            ("reason", Json::from(d.reason.name())),
            ("states_visited", Json::from(d.states_visited)),
            ("elapsed_us", Json::from(d.elapsed.as_micros() as u64)),
        ]),
    };
    if item.solution.degraded.is_some() {
        state.obs.add("server.degraded", 1);
    }
    state.obs.add("server.personalized", 1);
    let latency_us = t0.elapsed().as_micros() as u64;
    state.obs.observe("server.latency_us", latency_us);

    let mut members = vec![
        ("user".to_string(), Json::from(params.user.as_str())),
        ("profile_version".to_string(), Json::from(stored.version)),
        (
            "problem".to_string(),
            Json::from(
                params
                    .problem
                    .kind()
                    .map_or("custom".to_string(), |k| format!("{k:?}").to_lowercase()),
            ),
        ),
        ("algorithm".to_string(), Json::from(params.algorithm.name())),
        ("space_k".to_string(), Json::from(item.space_k as u64)),
        (
            "solution".to_string(),
            Json::obj(vec![
                (
                    "prefs",
                    Json::Arr(
                        item.solution
                            .prefs
                            .iter()
                            .map(|&p| Json::from(p as u64))
                            .collect(),
                    ),
                ),
                ("doi", Json::from(item.solution.doi.value())),
                ("cost_blocks", Json::from(item.solution.cost_blocks)),
                ("size_rows", Json::from(item.solution.size_rows)),
                ("found", Json::Bool(item.solution.found)),
                ("degraded", degraded),
            ]),
        ),
        (
            "pref_dois".to_string(),
            Json::Arr(item.pref_dois.iter().map(|&d| Json::from(d)).collect()),
        ),
        ("sql".to_string(), Json::from(item.sql.as_str())),
        ("latency_us".to_string(), Json::from(latency_us)),
    ];
    if let Some(rows) = rows_json {
        members.push(("rows".to_string(), rows));
    }
    if let Some(ranked) = ranked_json {
        members.push(("ranked".to_string(), ranked));
    }
    Ok(Response::json(200, &Json::Obj(members)))
}

/// Renders a tuple as an array of display strings (stable, type-agnostic —
/// the bit-identity tests compare these exact strings).
fn row_to_json(row: &[cqp_storage::Value]) -> Json {
    Json::Arr(row.iter().map(|v| Json::from(v.to_string())).collect())
}
