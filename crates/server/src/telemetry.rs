//! Serving-tier telemetry: trace identity and sampling, retention (ring +
//! slow-query log), SLO time series, and the labeled request counters the
//! Prometheus endpoint exports.
//!
//! One [`Telemetry`] lives in `ServerState`. Each request draws a
//! monotonic sequence number; deterministic sampling (`seq %
//! sample_every == 0`) decides whether the request gets a
//! [`RequestRecorder`] span tree, with one override: a client that sends
//! an explicit `x-cqp-trace-id` header is *always* captured while tracing
//! is enabled — that is what makes "trace this exact request" (and the
//! end-to-end propagation tests) deterministic. `sample_every == 0`
//! disables capture entirely, including explicit IDs; the header is still
//! echoed so clients can correlate logs even when the server keeps
//! nothing.

use cqp_obs::prometheus::CounterVec;
use cqp_obs::reqtrace::{RequestTrace, SlowLog, TraceId, TraceRing};
use cqp_obs::timeseries::SloSeries;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Request/response header carrying the trace ID (16 hex digits).
pub const TRACE_ID_HEADER: &str = "x-cqp-trace-id";
/// Response header reporting unconsumed deadline budget, milliseconds.
pub const DEADLINE_REMAINING_HEADER: &str = "x-cqp-deadline-remaining-ms";

/// splitmix64 — scrambles sequence numbers into well-spread trace IDs.
use rand::splitmix64_mix as splitmix64;

/// Shared telemetry state for one server instance.
#[derive(Debug)]
pub struct Telemetry {
    epoch: Instant,
    /// Recent captured traces, lock-sharded.
    pub ring: TraceRing,
    /// Worst-N requests by end-to-end latency.
    pub slow: SlowLog,
    /// Windowed request rate + SLO burn.
    pub slo: SloSeries,
    /// `cqp_requests_total{endpoint, outcome}`.
    pub requests: CounterVec,
    /// `cqp_personalize_requests_total{problem, algorithm, outcome}`.
    pub personalize: CounterVec,
    sample_every: u64,
    seq: AtomicU64,
    id_salt: u64,
}

impl Telemetry {
    /// Builds telemetry from the server config knobs.
    pub fn new(
        sample_every: u64,
        ring_shards: usize,
        ring_capacity: usize,
        slow_capacity: usize,
        slo_window_secs: u64,
        slo_objective_ms: u64,
    ) -> Self {
        // Salt server-assigned IDs with wall-clock entropy so IDs from
        // different server lifetimes don't collide in shared dashboards;
        // within one lifetime assignment stays a pure function of `seq`.
        let id_salt = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        Telemetry {
            epoch: Instant::now(),
            ring: TraceRing::new(ring_shards, ring_capacity),
            slow: SlowLog::new(slow_capacity),
            slo: SloSeries::new(slo_window_secs, slo_objective_ms.saturating_mul(1_000)),
            requests: CounterVec::new(
                "cqp_requests_total",
                "Requests by endpoint and outcome (ok/degraded/shed/error).",
                &["endpoint", "outcome"],
            ),
            personalize: CounterVec::new(
                "cqp_personalize_requests_total",
                "Personalize requests by problem (p1-p6), algorithm, and outcome.",
                &["problem", "algorithm", "outcome"],
            ),
            sample_every,
            seq: AtomicU64::new(0),
            id_salt,
        }
    }

    /// The instant all trace timeline offsets are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Microseconds from the telemetry epoch to `t`.
    pub fn offset_us(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Draws the next request sequence number.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// The configured sampling period (0 = capture off, 1 = every request).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// The trace ID for a request: the client's, or one derived from the
    /// sequence number.
    pub fn assign_id(&self, seq: u64, explicit: Option<TraceId>) -> TraceId {
        explicit.unwrap_or(TraceId(splitmix64(seq ^ self.id_salt)))
    }

    /// Whether this request's span tree should be captured.
    pub fn should_capture(&self, seq: u64, explicit: bool) -> bool {
        match self.sample_every {
            0 => false,
            1 => true,
            n => explicit || seq % n == 0,
        }
    }

    /// Retains a finished trace in the ring and offers it to the slow log.
    pub fn retain(&self, trace: Arc<RequestTrace>) {
        self.ring.push(Arc::clone(&trace));
        self.slow.offer(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tel(sample_every: u64) -> Telemetry {
        Telemetry::new(sample_every, 2, 8, 4, 10, 250)
    }

    #[test]
    fn sampling_is_deterministic_in_seq() {
        let t = tel(4);
        let picks: Vec<bool> = (0..8).map(|s| t.should_capture(s, false)).collect();
        assert_eq!(
            picks,
            vec![true, false, false, false, true, false, false, false]
        );
        // Explicit header forces capture on off-period requests.
        assert!(t.should_capture(3, true));
    }

    #[test]
    fn sample_zero_disables_even_explicit() {
        let t = tel(0);
        assert!(!t.should_capture(0, false));
        assert!(!t.should_capture(0, true));
        let t = tel(1);
        assert!(t.should_capture(7, false));
    }

    #[test]
    fn assigned_ids_prefer_the_client_and_spread_otherwise() {
        let t = tel(1);
        let mine = TraceId(0xabc);
        assert_eq!(t.assign_id(5, Some(mine)), mine);
        let a = t.assign_id(1, None);
        let b = t.assign_id(2, None);
        assert_ne!(a, b);
        // Pure function of seq within one lifetime.
        assert_eq!(t.assign_id(1, None), a);
    }

    #[test]
    fn retain_feeds_ring_and_slow_log() {
        let t = tel(1);
        let trace = Arc::new(RequestTrace {
            id: TraceId(3),
            seq: 0,
            label: "POST /personalize".into(),
            start_us: 0,
            total_us: 1234,
            meta: vec![],
            spans: vec![],
            events: vec![],
        });
        t.retain(trace);
        assert_eq!(t.ring.len(), 1);
        assert_eq!(t.slow.worst().len(), 1);
        assert!(t.ring.find(TraceId(3)).is_some());
    }
}
