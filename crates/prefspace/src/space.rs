//! The preference space `P` with its parameter table and rank vectors.

use cqp_prefs::{Doi, Preference};
use std::collections::HashMap;

/// The identity key of a preference: its predicate list, rendered. Two
/// preferences with the same key personalize a query identically, whatever
/// their dois — this is the dedup key of extraction and the match key of
/// delta re-ranking.
pub fn pref_key(pref: &Preference) -> String {
    format!("{:?}", pref.predicates())
}

/// Per-preference parameters of the personalized sub-query `Q ∧ p`
/// (paper Section 4.3: doi, cost, and size are "collectively referred to as
/// query parameters"; here they are precomputed once per preference).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefParams {
    /// `doi(p)` — composed degree of interest of the path.
    pub doi: Doi,
    /// `cost(Q ∧ p)` in blocks (the paper's Formula 6 summand).
    pub cost_blocks: u64,
    /// Size factor `size(Q ∧ p) / size(Q)` in `[0, 1]`; multiplying the
    /// factors of a state's members gives `size(Q ∧ Px) / size(Q)`
    /// under independence (consistent with Formula 8).
    pub size_factor: f64,
}

/// The preference space: `P`, its parameters, and the `D`, `C`, `S` vectors.
///
/// `P` is stored in decreasing-doi order (that is how the Figure 3 traversal
/// emits preferences), so `D` is the identity permutation; `C` and `S` are
/// permutations of `0..K` sorted by the respective parameter. All vectors
/// hold **indices into `P`**, exactly like the paper's pointer vectors.
#[derive(Debug, Clone)]
pub struct PreferenceSpace {
    /// The preference paths (may be empty for synthetic instances that only
    /// exercise the search algorithms).
    pub prefs: Vec<Preference>,
    /// Parameters of `Q ∧ p_i`, parallel to `prefs` / `P`-indices.
    pub params: Vec<PrefParams>,
    /// Estimated result size of the base query `Q`.
    pub base_rows: f64,
    /// Cost of the base query `Q` in blocks.
    pub base_cost_blocks: u64,
    /// `D`: P-indices by decreasing doi (identity by construction).
    pub d: Vec<usize>,
    /// `C`: P-indices by decreasing `cost(Q ∧ p)`. Empty when the space was
    /// built in doi-only mode (paper Figure 12(b)'s `D_PrefSelTime`).
    pub c: Vec<usize>,
    /// `S`: P-indices by increasing `size(Q ∧ p)`. Empty in doi-only mode.
    pub s: Vec<usize>,
}

impl PreferenceSpace {
    /// Number of preferences `K`.
    pub fn k(&self) -> usize {
        self.params.len()
    }

    /// True when no preferences were extracted.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// doi of preference `i` (a P-index).
    pub fn doi(&self, i: usize) -> Doi {
        self.params[i].doi
    }

    /// `cost(Q ∧ p_i)` in blocks.
    pub fn cost_blocks(&self, i: usize) -> u64 {
        self.params[i].cost_blocks
    }

    /// Size factor of preference `i`.
    pub fn size_factor(&self, i: usize) -> f64 {
        self.params[i].size_factor
    }

    /// Builds a synthetic space from raw parameters (no preference paths).
    ///
    /// Inputs need not be sorted: the constructor orders `P` by decreasing
    /// doi (ties broken by original position) and derives `D`, `C`, `S`.
    /// Used by tests and benchmarks that exercise the search algorithms on
    /// controlled instances such as the paper's Figure 6/8 examples.
    pub fn synthetic(params: Vec<PrefParams>, base_rows: f64, base_cost_blocks: u64) -> Self {
        let mut order: Vec<usize> = (0..params.len()).collect();
        order.sort_by(|&a, &b| params[b].doi.cmp(&params[a].doi).then_with(|| a.cmp(&b)));
        let params: Vec<PrefParams> = order.into_iter().map(|i| params[i]).collect();
        let mut space = PreferenceSpace {
            prefs: Vec::new(),
            params,
            base_rows,
            base_cost_blocks,
            d: Vec::new(),
            c: Vec::new(),
            s: Vec::new(),
        };
        space.build_vectors(true);
        space
    }

    /// (Re)builds the rank vectors. `D` is always built; `C` and `S` only
    /// when `with_cost_vectors` is set (the distinction Figure 12(b)
    /// measures).
    pub fn build_vectors(&mut self, with_cost_vectors: bool) {
        let k = self.params.len();
        self.d = (0..k).collect();
        if with_cost_vectors {
            let mut c: Vec<usize> = (0..k).collect();
            c.sort_by(|&a, &b| {
                self.params[b]
                    .cost_blocks
                    .cmp(&self.params[a].cost_blocks)
                    .then_with(|| a.cmp(&b))
            });
            self.c = c;
            let mut s: Vec<usize> = (0..k).collect();
            s.sort_by(|&a, &b| {
                self.params[a]
                    .size_factor
                    .partial_cmp(&self.params[b].size_factor)
                    .expect("size factors are finite")
                    .then_with(|| a.cmp(&b))
            });
            self.s = s;
        } else {
            self.c = Vec::new();
            self.s = Vec::new();
        }
    }

    /// Builds a space over `prefs`/`params` by *re-ranking* `old`'s `C` and
    /// `S` vectors incrementally instead of re-sorting from scratch:
    /// preferences surviving from `old` (matched by [`pref_key`], with
    /// unchanged cost and size) keep their relative order from the old
    /// vectors, added preferences are sorted among themselves and merged
    /// in, and ties are normalized to ascending-index runs. The result is
    /// **identical** to [`PreferenceSpace::build_vectors`] — both realize
    /// the total orders (cost desc, index asc) and (size asc, index asc) —
    /// so a search over a delta-repaired space is bit-identical to one over
    /// a fresh rebuild; only the sorting work changes, from `O(K log K)` to
    /// `O(K + A log A)` for `A` additions.
    pub fn delta_rerank(
        old: &PreferenceSpace,
        prefs: Vec<Preference>,
        params: Vec<PrefParams>,
        base_rows: f64,
        base_cost_blocks: u64,
        with_cost_vectors: bool,
    ) -> PreferenceSpace {
        let k = params.len();
        let mut space = PreferenceSpace {
            prefs,
            params,
            base_rows,
            base_cost_blocks,
            d: (0..k).collect(),
            c: Vec::new(),
            s: Vec::new(),
        };
        if !with_cost_vectors {
            return space;
        }
        // Match survivors by identity key; a survivor whose cost or size
        // changed (stale statistics) is demoted to an addition so the merge
        // invariant (survivor runs already ordered) holds unconditionally.
        let new_idx: HashMap<String, usize> = space
            .prefs
            .iter()
            .enumerate()
            .map(|(i, p)| (pref_key(p), i))
            .collect();
        let mut survivor = vec![false; k];
        let remap = |old_i: usize| -> Option<usize> {
            let p = old.prefs.get(old_i)?;
            let &ni = new_idx.get(&pref_key(p))?;
            let (a, b) = (&space.params[ni], &old.params[old_i]);
            (a.cost_blocks == b.cost_blocks && a.size_factor == b.size_factor).then_some(ni)
        };
        let c_survivors: Vec<usize> = old.c.iter().filter_map(|&i| remap(i)).collect();
        let s_survivors: Vec<usize> = old.s.iter().filter_map(|&i| remap(i)).collect();
        for &i in &c_survivors {
            survivor[i] = true;
        }
        let mut added: Vec<usize> = (0..k).filter(|&i| !survivor[i]).collect();

        added.sort_unstable_by(|&a, &b| {
            space.params[b]
                .cost_blocks
                .cmp(&space.params[a].cost_blocks)
                .then_with(|| a.cmp(&b))
        });
        space.c = merge_ranked(&c_survivors, &added, |a, b| {
            space.params[b]
                .cost_blocks
                .cmp(&space.params[a].cost_blocks)
        });

        added.sort_unstable_by(|&a, &b| {
            space.params[a]
                .size_factor
                .partial_cmp(&space.params[b].size_factor)
                .expect("size factors are finite")
                .then_with(|| a.cmp(&b))
        });
        space.s = merge_ranked(&s_survivors, &added, |a, b| {
            space.params[a]
                .size_factor
                .partial_cmp(&space.params[b].size_factor)
                .expect("size factors are finite")
        });
        space
    }

    /// Checks the invariants the CQP algorithms rely on; used by tests.
    ///
    /// * `P` is sorted by decreasing doi (so `D` is the identity);
    /// * `C` is a permutation sorted by decreasing cost;
    /// * `S` is a permutation sorted by increasing size factor.
    pub fn check_invariants(&self) -> Result<(), String> {
        let k = self.k();
        for w in self.params.windows(2) {
            if w[0].doi < w[1].doi {
                return Err("P is not sorted by decreasing doi".into());
            }
        }
        if self.d != (0..k).collect::<Vec<_>>() {
            return Err("D is not the identity permutation".into());
        }
        if !self.c.is_empty() {
            let mut seen = vec![false; k];
            for &i in &self.c {
                if i >= k || seen[i] {
                    return Err("C is not a permutation".into());
                }
                seen[i] = true;
            }
            for w in self.c.windows(2) {
                if self.params[w[0]].cost_blocks < self.params[w[1]].cost_blocks {
                    return Err("C is not sorted by decreasing cost".into());
                }
            }
        }
        if !self.s.is_empty() {
            let mut seen = vec![false; k];
            for &i in &self.s {
                if i >= k || seen[i] {
                    return Err("S is not a permutation".into());
                }
                seen[i] = true;
            }
            for w in self.s.windows(2) {
                if self.params[w[0]].size_factor > self.params[w[1]].size_factor {
                    return Err("S is not sorted by increasing size".into());
                }
            }
        }
        Ok(())
    }
}

/// Merges two index lists already sorted under `before` (`Less` = left
/// argument ranks first), then normalizes every run of equal-ranking
/// indices to ascending order — yielding the same total order a full sort
/// with an ascending-index tie-break would produce.
fn merge_ranked(
    survivors: &[usize],
    added: &[usize],
    before: impl Fn(usize, usize) -> std::cmp::Ordering,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(survivors.len() + added.len());
    let (mut i, mut j) = (0, 0);
    while i < survivors.len() && j < added.len() {
        if before(survivors[i], added[j]) != std::cmp::Ordering::Greater {
            out.push(survivors[i]);
            i += 1;
        } else {
            out.push(added[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&survivors[i..]);
    out.extend_from_slice(&added[j..]);
    let mut start = 0;
    while start < out.len() {
        let mut end = start + 1;
        while end < out.len() && before(out[start], out[end]) == std::cmp::Ordering::Equal {
            end += 1;
        }
        out[start..end].sort_unstable();
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(doi: f64, cost: u64, factor: f64) -> PrefParams {
        PrefParams {
            doi: Doi::new(doi),
            cost_blocks: cost,
            size_factor: factor,
        }
    }

    #[test]
    fn table2_example_vectors() {
        // Paper Table 2: p1(doi .5, cost 10, size 3), p2(.8, 5, 2),
        // p3(.7, 12, 10). With P sorted by doi: P = [p2, p3, p1].
        // Paper's vectors (1-based, over the original p-numbers):
        // D = {2,3,1}, C = {3,1,2}, S = {2,1,3}.
        let space = PreferenceSpace::synthetic(
            vec![p(0.5, 10, 0.3), p(0.8, 5, 0.2), p(0.7, 12, 1.0)],
            10.0,
            0,
        );
        space.check_invariants().unwrap();
        // P-order is [p2, p3, p1]; dois decreasing:
        assert_eq!(space.doi(0), Doi::new(0.8));
        assert_eq!(space.doi(1), Doi::new(0.7));
        assert_eq!(space.doi(2), Doi::new(0.5));
        // C by decreasing cost: p3 (12), p1 (10), p2 (5) -> P-indices [1, 2, 0].
        assert_eq!(space.c, vec![1, 2, 0]);
        // S by increasing size: p2 (2), p1 (3), p3 (10) -> P-indices [0, 2, 1].
        assert_eq!(space.s, vec![0, 2, 1]);
    }

    #[test]
    fn doi_only_mode_skips_cost_vectors() {
        let mut space = PreferenceSpace::synthetic(vec![p(0.9, 1, 0.5), p(0.4, 2, 0.5)], 5.0, 0);
        space.build_vectors(false);
        assert!(space.c.is_empty());
        assert!(space.s.is_empty());
        assert_eq!(space.d, vec![0, 1]);
        space.check_invariants().unwrap();
    }

    #[test]
    fn invariants_catch_corruption() {
        let mut space = PreferenceSpace::synthetic(vec![p(0.9, 1, 0.5), p(0.4, 2, 0.6)], 5.0, 0);
        space.c = vec![0, 0];
        assert!(space.check_invariants().is_err());
        space.build_vectors(true);
        space.d = vec![1, 0];
        assert!(space.check_invariants().is_err());
    }

    #[test]
    fn ties_break_deterministically() {
        let space = PreferenceSpace::synthetic(
            vec![p(0.5, 7, 0.5), p(0.5, 7, 0.5), p(0.5, 7, 0.5)],
            1.0,
            0,
        );
        assert_eq!(space.c, vec![0, 1, 2]);
        assert_eq!(space.s, vec![0, 1, 2]);
    }

    /// Distinct atomic preferences (distinct selection values) for keying.
    fn pref(value: i64) -> Preference {
        use cqp_storage::{AttrId, QualifiedAttr, RelationId, Value};
        Preference::atomic(cqp_prefs::SelectionEdge {
            attr: QualifiedAttr {
                relation: RelationId(0),
                attr: AttrId(0),
            },
            op: cqp_engine::CmpOp::Eq,
            value: Value::Int(value),
            doi: Doi::new(0.5),
        })
    }

    fn space_of(entries: &[(i64, f64, u64, f64)]) -> PreferenceSpace {
        // Entries must already be doi-descending (P's invariant).
        let mut space = PreferenceSpace {
            prefs: entries.iter().map(|&(v, _, _, _)| pref(v)).collect(),
            params: entries
                .iter()
                .map(|&(_, doi, cost, factor)| p(doi, cost, factor))
                .collect(),
            base_rows: 100.0,
            base_cost_blocks: 2,
            d: Vec::new(),
            c: Vec::new(),
            s: Vec::new(),
        };
        space.build_vectors(true);
        space
    }

    #[test]
    fn delta_rerank_matches_full_rebuild() {
        let old = space_of(&[
            (1, 0.9, 7, 0.5),
            (2, 0.8, 3, 0.2),
            (3, 0.7, 7, 0.9),
            (4, 0.6, 1, 0.5),
        ]);
        // Pref 2 removed, pref 5 and 6 added, dois re-weighted (which
        // permutes P), costs/sizes of survivors unchanged.
        let entries = [
            (5, 0.95, 7, 0.5),
            (3, 0.85, 7, 0.9),
            (1, 0.75, 7, 0.5),
            (6, 0.65, 2, 0.1),
            (4, 0.55, 1, 0.5),
        ];
        let fresh = space_of(&entries);
        let delta = PreferenceSpace::delta_rerank(
            &old,
            entries.iter().map(|&(v, _, _, _)| pref(v)).collect(),
            entries
                .iter()
                .map(|&(_, doi, cost, factor)| p(doi, cost, factor))
                .collect(),
            100.0,
            2,
            true,
        );
        delta.check_invariants().unwrap();
        assert_eq!(delta.c, fresh.c);
        assert_eq!(delta.s, fresh.s);
        assert_eq!(delta.d, fresh.d);
    }

    #[test]
    fn delta_rerank_randomized_equivalence() {
        // Deterministic LCG over heavily tied costs/sizes: the re-rank must
        // realize exactly build_vectors' total order in every case.
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _round in 0..60 {
            let k_old = next() % 10 + 1;
            let old_entries: Vec<(i64, f64, u64, f64)> = (0..k_old)
                .map(|i| {
                    (
                        i as i64,
                        1.0 - i as f64 * 0.01,
                        (next() % 4) as u64,
                        [0.2, 0.5, 0.8][next() % 3],
                    )
                })
                .collect();
            let old = space_of(&old_entries);
            // Survivors keep cost/size; dois shuffle; additions interleave.
            let mut new_entries: Vec<(i64, f64, u64, f64)> = old_entries
                .iter()
                .filter(|_| next() % 4 != 0)
                .copied()
                .collect();
            for a in 0..next() % 5 {
                new_entries.push((
                    100 + a as i64,
                    0.5,
                    (next() % 4) as u64,
                    [0.2, 0.5, 0.8][next() % 3],
                ));
            }
            for (i, e) in new_entries.iter_mut().enumerate() {
                e.1 = 1.0 - i as f64 * 0.005; // fresh doi order
            }
            let fresh = space_of(&new_entries);
            let delta = PreferenceSpace::delta_rerank(
                &old,
                new_entries.iter().map(|&(v, _, _, _)| pref(v)).collect(),
                new_entries
                    .iter()
                    .map(|&(_, doi, cost, factor)| p(doi, cost, factor))
                    .collect(),
                100.0,
                2,
                true,
            );
            delta.check_invariants().unwrap();
            assert_eq!(delta.c, fresh.c, "C diverged");
            assert_eq!(delta.s, fresh.s, "S diverged");
        }
    }

    #[test]
    fn accessors() {
        let space = PreferenceSpace::synthetic(vec![p(0.9, 11, 0.25)], 100.0, 3);
        assert_eq!(space.k(), 1);
        assert!(!space.is_empty());
        assert_eq!(space.cost_blocks(0), 11);
        assert!((space.size_factor(0) - 0.25).abs() < 1e-12);
        assert_eq!(space.base_cost_blocks, 3);
        assert!((space.base_rows - 100.0).abs() < 1e-12);
    }
}
