//! The preference space `P` with its parameter table and rank vectors.

use cqp_prefs::{Doi, Preference};

/// Per-preference parameters of the personalized sub-query `Q ∧ p`
/// (paper Section 4.3: doi, cost, and size are "collectively referred to as
/// query parameters"; here they are precomputed once per preference).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefParams {
    /// `doi(p)` — composed degree of interest of the path.
    pub doi: Doi,
    /// `cost(Q ∧ p)` in blocks (the paper's Formula 6 summand).
    pub cost_blocks: u64,
    /// Size factor `size(Q ∧ p) / size(Q)` in `[0, 1]`; multiplying the
    /// factors of a state's members gives `size(Q ∧ Px) / size(Q)`
    /// under independence (consistent with Formula 8).
    pub size_factor: f64,
}

/// The preference space: `P`, its parameters, and the `D`, `C`, `S` vectors.
///
/// `P` is stored in decreasing-doi order (that is how the Figure 3 traversal
/// emits preferences), so `D` is the identity permutation; `C` and `S` are
/// permutations of `0..K` sorted by the respective parameter. All vectors
/// hold **indices into `P`**, exactly like the paper's pointer vectors.
#[derive(Debug, Clone)]
pub struct PreferenceSpace {
    /// The preference paths (may be empty for synthetic instances that only
    /// exercise the search algorithms).
    pub prefs: Vec<Preference>,
    /// Parameters of `Q ∧ p_i`, parallel to `prefs` / `P`-indices.
    pub params: Vec<PrefParams>,
    /// Estimated result size of the base query `Q`.
    pub base_rows: f64,
    /// Cost of the base query `Q` in blocks.
    pub base_cost_blocks: u64,
    /// `D`: P-indices by decreasing doi (identity by construction).
    pub d: Vec<usize>,
    /// `C`: P-indices by decreasing `cost(Q ∧ p)`. Empty when the space was
    /// built in doi-only mode (paper Figure 12(b)'s `D_PrefSelTime`).
    pub c: Vec<usize>,
    /// `S`: P-indices by increasing `size(Q ∧ p)`. Empty in doi-only mode.
    pub s: Vec<usize>,
}

impl PreferenceSpace {
    /// Number of preferences `K`.
    pub fn k(&self) -> usize {
        self.params.len()
    }

    /// True when no preferences were extracted.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// doi of preference `i` (a P-index).
    pub fn doi(&self, i: usize) -> Doi {
        self.params[i].doi
    }

    /// `cost(Q ∧ p_i)` in blocks.
    pub fn cost_blocks(&self, i: usize) -> u64 {
        self.params[i].cost_blocks
    }

    /// Size factor of preference `i`.
    pub fn size_factor(&self, i: usize) -> f64 {
        self.params[i].size_factor
    }

    /// Builds a synthetic space from raw parameters (no preference paths).
    ///
    /// Inputs need not be sorted: the constructor orders `P` by decreasing
    /// doi (ties broken by original position) and derives `D`, `C`, `S`.
    /// Used by tests and benchmarks that exercise the search algorithms on
    /// controlled instances such as the paper's Figure 6/8 examples.
    pub fn synthetic(params: Vec<PrefParams>, base_rows: f64, base_cost_blocks: u64) -> Self {
        let mut order: Vec<usize> = (0..params.len()).collect();
        order.sort_by(|&a, &b| params[b].doi.cmp(&params[a].doi).then_with(|| a.cmp(&b)));
        let params: Vec<PrefParams> = order.into_iter().map(|i| params[i]).collect();
        let mut space = PreferenceSpace {
            prefs: Vec::new(),
            params,
            base_rows,
            base_cost_blocks,
            d: Vec::new(),
            c: Vec::new(),
            s: Vec::new(),
        };
        space.build_vectors(true);
        space
    }

    /// (Re)builds the rank vectors. `D` is always built; `C` and `S` only
    /// when `with_cost_vectors` is set (the distinction Figure 12(b)
    /// measures).
    pub fn build_vectors(&mut self, with_cost_vectors: bool) {
        let k = self.params.len();
        self.d = (0..k).collect();
        if with_cost_vectors {
            let mut c: Vec<usize> = (0..k).collect();
            c.sort_by(|&a, &b| {
                self.params[b]
                    .cost_blocks
                    .cmp(&self.params[a].cost_blocks)
                    .then_with(|| a.cmp(&b))
            });
            self.c = c;
            let mut s: Vec<usize> = (0..k).collect();
            s.sort_by(|&a, &b| {
                self.params[a]
                    .size_factor
                    .partial_cmp(&self.params[b].size_factor)
                    .expect("size factors are finite")
                    .then_with(|| a.cmp(&b))
            });
            self.s = s;
        } else {
            self.c = Vec::new();
            self.s = Vec::new();
        }
    }

    /// Checks the invariants the CQP algorithms rely on; used by tests.
    ///
    /// * `P` is sorted by decreasing doi (so `D` is the identity);
    /// * `C` is a permutation sorted by decreasing cost;
    /// * `S` is a permutation sorted by increasing size factor.
    pub fn check_invariants(&self) -> Result<(), String> {
        let k = self.k();
        for w in self.params.windows(2) {
            if w[0].doi < w[1].doi {
                return Err("P is not sorted by decreasing doi".into());
            }
        }
        if self.d != (0..k).collect::<Vec<_>>() {
            return Err("D is not the identity permutation".into());
        }
        if !self.c.is_empty() {
            let mut seen = vec![false; k];
            for &i in &self.c {
                if i >= k || seen[i] {
                    return Err("C is not a permutation".into());
                }
                seen[i] = true;
            }
            for w in self.c.windows(2) {
                if self.params[w[0]].cost_blocks < self.params[w[1]].cost_blocks {
                    return Err("C is not sorted by decreasing cost".into());
                }
            }
        }
        if !self.s.is_empty() {
            let mut seen = vec![false; k];
            for &i in &self.s {
                if i >= k || seen[i] {
                    return Err("S is not a permutation".into());
                }
                seen[i] = true;
            }
            for w in self.s.windows(2) {
                if self.params[w[0]].size_factor > self.params[w[1]].size_factor {
                    return Err("S is not sorted by increasing size".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(doi: f64, cost: u64, factor: f64) -> PrefParams {
        PrefParams {
            doi: Doi::new(doi),
            cost_blocks: cost,
            size_factor: factor,
        }
    }

    #[test]
    fn table2_example_vectors() {
        // Paper Table 2: p1(doi .5, cost 10, size 3), p2(.8, 5, 2),
        // p3(.7, 12, 10). With P sorted by doi: P = [p2, p3, p1].
        // Paper's vectors (1-based, over the original p-numbers):
        // D = {2,3,1}, C = {3,1,2}, S = {2,1,3}.
        let space = PreferenceSpace::synthetic(
            vec![p(0.5, 10, 0.3), p(0.8, 5, 0.2), p(0.7, 12, 1.0)],
            10.0,
            0,
        );
        space.check_invariants().unwrap();
        // P-order is [p2, p3, p1]; dois decreasing:
        assert_eq!(space.doi(0), Doi::new(0.8));
        assert_eq!(space.doi(1), Doi::new(0.7));
        assert_eq!(space.doi(2), Doi::new(0.5));
        // C by decreasing cost: p3 (12), p1 (10), p2 (5) -> P-indices [1, 2, 0].
        assert_eq!(space.c, vec![1, 2, 0]);
        // S by increasing size: p2 (2), p1 (3), p3 (10) -> P-indices [0, 2, 1].
        assert_eq!(space.s, vec![0, 2, 1]);
    }

    #[test]
    fn doi_only_mode_skips_cost_vectors() {
        let mut space = PreferenceSpace::synthetic(vec![p(0.9, 1, 0.5), p(0.4, 2, 0.5)], 5.0, 0);
        space.build_vectors(false);
        assert!(space.c.is_empty());
        assert!(space.s.is_empty());
        assert_eq!(space.d, vec![0, 1]);
        space.check_invariants().unwrap();
    }

    #[test]
    fn invariants_catch_corruption() {
        let mut space = PreferenceSpace::synthetic(vec![p(0.9, 1, 0.5), p(0.4, 2, 0.6)], 5.0, 0);
        space.c = vec![0, 0];
        assert!(space.check_invariants().is_err());
        space.build_vectors(true);
        space.d = vec![1, 0];
        assert!(space.check_invariants().is_err());
    }

    #[test]
    fn ties_break_deterministically() {
        let space = PreferenceSpace::synthetic(
            vec![p(0.5, 7, 0.5), p(0.5, 7, 0.5), p(0.5, 7, 0.5)],
            1.0,
            0,
        );
        assert_eq!(space.c, vec![0, 1, 2]);
        assert_eq!(space.s, vec![0, 1, 2]);
    }

    #[test]
    fn accessors() {
        let space = PreferenceSpace::synthetic(vec![p(0.9, 11, 0.25)], 100.0, 3);
        assert_eq!(space.k(), 1);
        assert!(!space.is_empty());
        assert_eq!(space.cost_blocks(0), 11);
        assert!((space.size_factor(0) - 0.25).abs() < 1e-12);
        assert_eq!(space.base_cost_blocks, 3);
        assert!((space.base_rows - 100.0).abs() < 1e-12);
    }
}
