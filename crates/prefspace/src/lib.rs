//! # cqp-prefspace
//!
//! The **Preference Space** module of the CQP architecture (paper Figure 2
//! and Section 4.4): given a query `Q` and a user profile `U`, it determines
//! the set `P` of atomic and implicit selection preferences extracted from
//! `U` and related to `Q`, together with three rank vectors over `P`:
//!
//! * `D` — preferences ordered by decreasing degree of interest,
//! * `C` — ordered by decreasing `cost(Q ∧ p)`,
//! * `S` — ordered by increasing `size(Q ∧ p)`.
//!
//! Extraction (the Figure 3 algorithm, implemented in [`extract`]) performs
//! a best-first traversal of the personalization graph so preferences are
//! produced in decreasing doi order — which is why `D` is simply the
//! identity permutation over `P`.
//!
//! ```
//! use cqp_prefspace::{extract, ExtractConfig};
//! use cqp_engine::QueryBuilder;
//! use cqp_prefs::{Doi, Profile};
//! use cqp_storage::{Database, DataType, RelationSchema, Value};
//!
//! let mut db = Database::new();
//! db.create_relation(RelationSchema::new(
//!     "MOVIE",
//!     vec![("mid", DataType::Int), ("title", DataType::Str), ("did", DataType::Int)],
//! )).unwrap();
//! db.create_relation(RelationSchema::new(
//!     "DIRECTOR",
//!     vec![("did", DataType::Int), ("name", DataType::Str)],
//! )).unwrap();
//! db.insert_into("MOVIE", vec![Value::Int(1), Value::str("Manhattan"), Value::Int(1)]).unwrap();
//! db.insert_into("DIRECTOR", vec![Value::Int(1), Value::str("W. Allen")]).unwrap();
//!
//! let mut profile = Profile::new("al");
//! profile.add_join(db.catalog(), "MOVIE", "did", "DIRECTOR", "did", Doi::new(1.0)).unwrap();
//! profile.add_selection(db.catalog(), "DIRECTOR", "name", "W. Allen", Doi::new(0.8)).unwrap();
//!
//! let query = QueryBuilder::from(db.catalog(), "MOVIE")
//!     .unwrap()
//!     .select("MOVIE", "title")
//!     .unwrap()
//!     .build();
//! let stats = db.analyze();
//! let extraction = extract(&query, &profile, &stats, &ExtractConfig::default());
//!
//! // One implicit selection preference, doi = 1.0 × 0.8.
//! assert_eq!(extraction.space.k(), 1);
//! assert_eq!(extraction.space.doi(0), Doi::new(0.8));
//! ```

pub mod extract;
pub mod space;

pub use extract::{extract, extract_delta, DeltaExtraction, ExtractConfig, Extraction};
pub use space::{pref_key, PrefParams, PreferenceSpace};
