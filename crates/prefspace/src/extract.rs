//! The Preference Space extraction algorithm (paper Figure 3).
//!
//! A best-first traversal of the personalization graph: a priority queue
//! `QP` holds candidate paths in decreasing order of doi. Because `f⊗` is
//! non-increasing in path length (Formula 2), the head of the queue always
//! carries the best doi any remaining candidate can achieve — so
//! preferences are appended to `P` in decreasing doi order, and the
//! algorithm can stop as soon as `K` preferences were extracted or the head
//! doi falls below a threshold.
//!
//! "At various points, the algorithm takes into account the CQP constraints
//! to prune down preferences that can never lead to successful personalized
//! queries" — the two sound prunings implemented here are:
//!
//! * a preference `p` with `cost(Q ∧ p) > cmax` can never belong to a
//!   feasible state of a cost-bounded problem (state cost is the sum of its
//!   members' costs, Formula 6), and
//! * a path doi below `min_doi` can never recover (Formula 2).

use crate::space::{pref_key, PrefParams, PreferenceSpace};
use cqp_engine::{CardEstimator, ConjunctiveQuery, CostModel};
use cqp_prefs::{Doi, JoinEdge, PathCompose, Preference, Profile, SelectionEdge};
use cqp_storage::{DbStats, RelationId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::{HashMap, HashSet};

/// Configuration for preference extraction.
#[derive(Debug, Clone)]
pub struct ExtractConfig {
    /// Maximum number of preferences to extract (`K` in the experiments).
    pub max_k: usize,
    /// Candidates with doi below this are discarded (and, thanks to the
    /// best-first order, extraction stops once the head drops below it).
    pub min_doi: f64,
    /// Prune preferences whose own sub-query already exceeds this cost.
    pub cost_max_blocks: Option<u64>,
    /// Safety bound on path length (number of atomic conditions).
    pub max_path_len: usize,
    /// The `f⊗` used to compose path dois.
    pub compose: PathCompose,
    /// Whether to build the `C`/`S` vectors (`C_PrefSelTime`) or only the
    /// doi order (`D_PrefSelTime`); see paper Figure 12(b).
    pub with_cost_vectors: bool,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig {
            max_k: 20,
            min_doi: 0.0,
            cost_max_blocks: None,
            max_path_len: 4,
            compose: PathCompose::Product,
            with_cost_vectors: true,
        }
    }
}

/// The result of an extraction run.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// The extracted preference space.
    pub space: PreferenceSpace,
    /// Candidates popped from the queue (a work measure for Figure 12(b)).
    pub candidates_examined: usize,
}

/// A candidate path in the queue: a join chain, optionally completed by a
/// terminal selection edge.
#[derive(Debug, Clone)]
struct Candidate {
    joins: Vec<JoinEdge>,
    selection: Option<SelectionEdge>,
    doi: Doi,
    /// Relation at the end of the join chain (where expansion continues).
    tip: RelationId,
    /// Relations already visited (for the acyclicity check).
    visited: Vec<RelationId>,
    /// Insertion sequence number for deterministic tie-breaking.
    seq: usize,
}

impl Candidate {
    fn len(&self) -> usize {
        self.joins.len() + usize::from(self.selection.is_some())
    }
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.doi == other.doi && self.seq == other.seq
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher doi first; FIFO among equal dois.
        self.doi
            .cmp(&other.doi)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The result of a delta extraction: the repaired space plus how much
/// work the cached space saved.
#[derive(Debug, Clone)]
pub struct DeltaExtraction {
    /// The repaired preference space (bit-identical to a fresh
    /// [`extract`] over the same inputs).
    pub space: PreferenceSpace,
    /// Candidates popped from the queue.
    pub candidates_examined: usize,
    /// Preferences whose cost/size parameters were reused from the cached
    /// space (the expensive estimator calls skipped).
    pub params_reused: usize,
    /// Preferences whose parameters had to be estimated fresh.
    pub params_estimated: usize,
    /// Preferences present now but absent from the cached space.
    pub prefs_added: usize,
    /// Cached preferences no longer extracted.
    pub prefs_removed: usize,
}

/// Runs the Figure 3 extraction for `query` against `profile`.
pub fn extract(
    query: &ConjunctiveQuery,
    profile: &Profile,
    stats: &DbStats,
    config: &ExtractConfig,
) -> Extraction {
    let (prefs, params, examined, _, _) = extract_core(query, profile, stats, config, None);
    let cost_model = CostModel::new(stats);
    let card = CardEstimator::new(stats);
    let mut space = PreferenceSpace {
        prefs,
        params,
        base_rows: card.query_rows(query),
        base_cost_blocks: cost_model.query_blocks(query),
        d: Vec::new(),
        c: Vec::new(),
        s: Vec::new(),
    };
    space.build_vectors(config.with_cost_vectors);
    Extraction {
        space,
        candidates_examined: examined,
    }
}

/// [`extract`] against a *cached* space built for the same base query at an
/// older profile version: the traversal re-runs (the profile changed, so
/// dois and the membership of `P` may differ), but the per-preference cost
/// and size estimates — the expensive part, one cost-model and one
/// cardinality call per preference — are reused for every preference whose
/// predicate key survives, and the rank vectors are repaired by
/// [`PreferenceSpace::delta_rerank`] instead of re-sorted. The resulting
/// space is bit-identical to a fresh extraction.
///
/// `cached` must come from the same base query and statistics; parameters
/// are keyed by predicate list, which is query- and stats-independent only
/// within that scope.
pub fn extract_delta(
    query: &ConjunctiveQuery,
    profile: &Profile,
    stats: &DbStats,
    config: &ExtractConfig,
    cached: &PreferenceSpace,
) -> DeltaExtraction {
    let reuse: HashMap<String, (u64, f64)> = cached
        .prefs
        .iter()
        .zip(&cached.params)
        .map(|(p, params)| (pref_key(p), (params.cost_blocks, params.size_factor)))
        .collect();
    let (prefs, params, examined, reused, estimated) =
        extract_core(query, profile, stats, config, Some(&reuse));
    let new_keys: HashSet<String> = prefs.iter().map(pref_key).collect();
    let prefs_added = prefs.len() - reused;
    let prefs_removed = reuse.keys().filter(|k| !new_keys.contains(*k)).count();
    let cost_model = CostModel::new(stats);
    let card = CardEstimator::new(stats);
    let space = PreferenceSpace::delta_rerank(
        cached,
        prefs,
        params,
        card.query_rows(query),
        cost_model.query_blocks(query),
        config.with_cost_vectors,
    );
    DeltaExtraction {
        space,
        candidates_examined: examined,
        params_reused: reused,
        params_estimated: estimated,
        prefs_added,
        prefs_removed,
    }
}

/// The shared Figure 3 traversal: returns `(prefs, params, examined,
/// params_reused, params_estimated)`. With `reuse` set, cost/size estimates
/// are looked up by predicate key before falling back to the estimators.
fn extract_core(
    query: &ConjunctiveQuery,
    profile: &Profile,
    stats: &DbStats,
    config: &ExtractConfig,
    reuse: Option<&HashMap<String, (u64, f64)>>,
) -> (Vec<Preference>, Vec<PrefParams>, usize, usize, usize) {
    let cost_model = CostModel::new(stats);
    let card = CardEstimator::new(stats);
    let graph = profile.graph();

    let mut qp: BinaryHeap<Candidate> = BinaryHeap::new();
    let mut seq = 0usize;
    let push = |qp: &mut BinaryHeap<Candidate>, c: Candidate| {
        if c.doi.value() >= c_min_doi(config) {
            qp.push(c);
        }
    };

    // Step 2: atomic preferences syntactically related to Q.
    for &rel in &query.relations {
        for sel in graph.selections_on(rel) {
            let c = Candidate {
                joins: Vec::new(),
                selection: Some(sel.clone()),
                doi: sel.doi,
                tip: rel,
                visited: vec![rel],
                seq,
            };
            seq += 1;
            push(&mut qp, c);
        }
        for join in graph.joins_from(rel) {
            if join.right.relation == rel {
                continue; // self-loop would cycle immediately
            }
            let c = Candidate {
                joins: vec![join.clone()],
                selection: None,
                doi: join.doi,
                tip: join.right.relation,
                visited: vec![rel, join.right.relation],
                seq,
            };
            seq += 1;
            push(&mut qp, c);
        }
    }

    let mut prefs: Vec<Preference> = Vec::new();
    let mut params: Vec<PrefParams> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut examined = 0usize;
    let mut reused = 0usize;
    let mut estimated = 0usize;

    // Step 3: best-first expansion.
    while let Some(cand) = qp.pop() {
        examined += 1;
        // Best-first + Formula 2: nothing below the threshold can recover.
        if cand.doi.value() < config.min_doi {
            break;
        }
        if prefs.len() >= config.max_k {
            break;
        }

        // Cost prune applies to partial paths too: extending a path only
        // adds relations, so cost(Q ∧ extension) ≥ cost(Q ∧ path).
        if let Some(cmax) = config.cost_max_blocks {
            let preds: Vec<_> = cand
                .joins
                .iter()
                .map(|j| j.predicate())
                .chain(cand.selection.iter().map(|s| s.predicate()))
                .collect();
            let q = query.with_predicates(preds);
            if cost_model.query_blocks(&q) > cmax {
                continue;
            }
        }

        match &cand.selection {
            Some(sel) => {
                // A complete selection preference.
                let pref = if cand.joins.is_empty() {
                    Preference::atomic(sel.clone())
                } else {
                    Preference::implicit(cand.joins.clone(), sel.clone(), config.compose)
                };
                let key = pref_key(&pref);
                if !seen.insert(key.clone()) {
                    continue; // reachable via a second path; keep the best-doi one
                }
                // Cost and size depend only on the predicates (not on the
                // profile's dois), so a cached estimate for this key is
                // exact — the whole point of the repair tier.
                let (cost_blocks, size_factor) = match reuse.and_then(|m| m.get(&key)) {
                    Some(&(cost_blocks, size_factor)) => {
                        reused += 1;
                        (cost_blocks, size_factor)
                    }
                    None => {
                        estimated += 1;
                        let q = query.with_predicates(pref.predicates());
                        (
                            cost_model.query_blocks(&q),
                            card.preference_factor(query, &pref.predicates()),
                        )
                    }
                };
                params.push(PrefParams {
                    doi: pref.doi,
                    cost_blocks,
                    size_factor,
                });
                prefs.push(pref);
            }
            None => {
                // A join-terminated path: extend with adjacent atomic
                // preferences at the tip (Figure 3, step 3.2.2).
                if cand.len() >= config.max_path_len {
                    continue;
                }
                for sel in graph.selections_on(cand.tip) {
                    let doi = config.compose.extend(cand.doi, sel.doi);
                    let c = Candidate {
                        joins: cand.joins.clone(),
                        selection: Some(sel.clone()),
                        doi,
                        tip: cand.tip,
                        visited: cand.visited.clone(),
                        seq,
                    };
                    seq += 1;
                    push(&mut qp, c);
                }
                for join in graph.joins_from(cand.tip) {
                    let next = join.right.relation;
                    if cand.visited.contains(&next) {
                        continue; // acyclic paths only
                    }
                    let doi = config.compose.extend(cand.doi, join.doi);
                    let mut joins = cand.joins.clone();
                    joins.push(join.clone());
                    let mut visited = cand.visited.clone();
                    visited.push(next);
                    let c = Candidate {
                        joins,
                        selection: None,
                        doi,
                        tip: next,
                        visited,
                        seq,
                    };
                    seq += 1;
                    push(&mut qp, c);
                }
            }
        }
    }

    (prefs, params, examined, reused, estimated)
}

fn c_min_doi(config: &ExtractConfig) -> f64 {
    config.min_doi
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_engine::QueryBuilder;
    use cqp_storage::{DataType, Database, RelationSchema, Value};

    /// Movie database with data so statistics are meaningful.
    fn movie_db() -> Database {
        let mut db = Database::with_block_capacity(4);
        db.create_relation(RelationSchema::new(
            "MOVIE",
            vec![
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("duration", DataType::Int),
                ("did", DataType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "DIRECTOR",
            vec![("did", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "GENRE",
            vec![("mid", DataType::Int), ("genre", DataType::Str)],
        ))
        .unwrap();
        for i in 0..40i64 {
            db.insert_into(
                "MOVIE",
                vec![
                    Value::Int(i),
                    Value::str(format!("m{i}")),
                    Value::Int(1980 + (i % 30)),
                    Value::Int(90 + i),
                    Value::Int(i % 5),
                ],
            )
            .unwrap();
            db.insert_into(
                "GENRE",
                vec![
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "musical" } else { "drama" }),
                ],
            )
            .unwrap();
        }
        for d in 0..5i64 {
            db.insert_into(
                "DIRECTOR",
                vec![Value::Int(d), Value::str(format!("dir{d}"))],
            )
            .unwrap();
        }
        db
    }

    fn base_query(db: &Database) -> ConjunctiveQuery {
        QueryBuilder::from(db.catalog(), "MOVIE")
            .unwrap()
            .select("MOVIE", "title")
            .unwrap()
            .build()
    }

    fn figure1_profile(db: &Database) -> Profile {
        Profile::paper_figure1(db.catalog()).unwrap()
    }

    #[test]
    fn extracts_paper_implicit_preferences() {
        let db = movie_db();
        let stats = db.analyze();
        let q = base_query(&db);
        let profile = figure1_profile(&db);
        let ex = extract(&q, &profile, &stats, &ExtractConfig::default());
        let space = &ex.space;
        space.check_invariants().unwrap();

        // From Figure 1 and a query on MOVIE, two implicit selection
        // preferences arise:
        //   p2∧p1: MOVIE.mid=GENRE.mid and GENRE.genre='musical'  (0.9×0.5=0.45)
        //   p3∧p4: MOVIE.did=DIRECTOR.did and DIRECTOR.name='W. Allen' (1.0×0.8=0.8)
        assert_eq!(space.k(), 2);
        assert!((space.doi(0).value() - 0.8).abs() < 1e-12);
        assert!((space.doi(1).value() - 0.45).abs() < 1e-12);
        // The W. Allen path touches MOVIE (10 blocks) + DIRECTOR (2 blocks);
        // the musical path MOVIE + GENRE (10 blocks).
        assert_eq!(space.cost_blocks(0), 12);
        assert_eq!(space.cost_blocks(1), 20);
        // C orders the musical preference (cost 20) first.
        assert_eq!(space.c, vec![1, 0]);
        assert!(ex.candidates_examined >= 2);
    }

    #[test]
    fn unrelated_query_extracts_nothing() {
        let db = movie_db();
        let stats = db.analyze();
        let profile = figure1_profile(&db);
        // Query over DIRECTOR: Figure 1 has a selection on DIRECTOR.name,
        // which IS related; query over GENRE picks the genre selection.
        let q = QueryBuilder::from(db.catalog(), "DIRECTOR")
            .unwrap()
            .select("DIRECTOR", "name")
            .unwrap()
            .build();
        let ex = extract(&q, &profile, &stats, &ExtractConfig::default());
        // Only the atomic DIRECTOR.name selection relates (no join edges
        // leave DIRECTOR in the Figure 1 graph).
        assert_eq!(ex.space.k(), 1);
        assert!((ex.space.doi(0).value() - 0.8).abs() < 1e-12);
        assert!(ex.space.prefs[0].is_atomic());
    }

    #[test]
    fn max_k_truncates_in_doi_order() {
        let db = movie_db();
        let stats = db.analyze();
        let q = base_query(&db);
        let profile = figure1_profile(&db);
        let cfg = ExtractConfig {
            max_k: 1,
            ..Default::default()
        };
        let ex = extract(&q, &profile, &stats, &cfg);
        assert_eq!(ex.space.k(), 1);
        // The best preference must be the W. Allen one (doi 0.8).
        assert!((ex.space.doi(0).value() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn min_doi_prunes_low_paths() {
        let db = movie_db();
        let stats = db.analyze();
        let q = base_query(&db);
        let profile = figure1_profile(&db);
        let cfg = ExtractConfig {
            min_doi: 0.5,
            ..Default::default()
        };
        let ex = extract(&q, &profile, &stats, &cfg);
        assert_eq!(ex.space.k(), 1); // the 0.45 musical path is pruned
    }

    #[test]
    fn cost_prune_removes_expensive_preferences() {
        let db = movie_db();
        let stats = db.analyze();
        let q = base_query(&db);
        let profile = figure1_profile(&db);
        // The musical path costs 20 blocks; the W. Allen path 12.
        let cfg = ExtractConfig {
            cost_max_blocks: Some(15),
            ..Default::default()
        };
        let ex = extract(&q, &profile, &stats, &cfg);
        assert_eq!(ex.space.k(), 1);
        assert_eq!(ex.space.cost_blocks(0), 12);
    }

    #[test]
    fn doi_only_mode_builds_no_cost_vectors() {
        let db = movie_db();
        let stats = db.analyze();
        let q = base_query(&db);
        let profile = figure1_profile(&db);
        let cfg = ExtractConfig {
            with_cost_vectors: false,
            ..Default::default()
        };
        let ex = extract(&q, &profile, &stats, &cfg);
        assert!(ex.space.c.is_empty());
        assert!(ex.space.s.is_empty());
        assert_eq!(ex.space.d.len(), ex.space.k());
    }

    #[test]
    fn longer_chains_compose_through_intermediate_relations() {
        // Add a CASTS/ACTOR chain so MOVIE → CASTS → ACTOR paths arise.
        let mut db = movie_db();
        db.create_relation(RelationSchema::new(
            "CASTS",
            vec![("mid", DataType::Int), ("aid", DataType::Int)],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "ACTOR",
            vec![("aid", DataType::Int), ("name", DataType::Str)],
        ))
        .unwrap();
        for i in 0..40i64 {
            db.insert_into("CASTS", vec![Value::Int(i), Value::Int(i % 7)])
                .unwrap();
        }
        for a in 0..7i64 {
            db.insert_into(
                "ACTOR",
                vec![Value::Int(a), Value::str(format!("actor{a}"))],
            )
            .unwrap();
        }
        let stats = db.analyze();
        let c = db.catalog();
        let mut profile = Profile::new("chain");
        profile
            .add_join(c, "MOVIE", "mid", "CASTS", "mid", Doi::new(0.9))
            .unwrap();
        profile
            .add_join(c, "CASTS", "aid", "ACTOR", "aid", Doi::new(0.8))
            .unwrap();
        profile
            .add_selection(c, "ACTOR", "name", "actor3", Doi::new(0.75))
            .unwrap();
        let q = base_query(&db);
        let ex = extract(&q, &profile, &stats, &ExtractConfig::default());
        assert_eq!(ex.space.k(), 1);
        // 0.9 × 0.8 × 0.75 = 0.54
        assert!((ex.space.doi(0).value() - 0.54).abs() < 1e-12);
        assert_eq!(ex.space.prefs[0].len(), 3);
    }

    #[test]
    fn delta_extraction_is_bit_identical_and_reuses_params() {
        let db = movie_db();
        let stats = db.analyze();
        let q = base_query(&db);
        let profile = figure1_profile(&db);
        let cfg = ExtractConfig::default();
        let cached = extract(&q, &profile, &stats, &cfg).space;

        // Mutate the profile: add a selection (gaining a preference) — the
        // repaired space must equal a cold rebuild bit for bit, with the
        // surviving preferences' estimator calls skipped.
        let mut gained = profile.clone();
        gained
            .add_selection(db.catalog(), "GENRE", "genre", "drama", Doi::new(0.6))
            .unwrap();
        let fresh = extract(&q, &gained, &stats, &cfg);
        let delta = extract_delta(&q, &gained, &stats, &cfg, &cached);
        assert_eq!(delta.space.prefs, fresh.space.prefs);
        assert_eq!(delta.space.params, fresh.space.params);
        assert_eq!(delta.space.c, fresh.space.c);
        assert_eq!(delta.space.s, fresh.space.s);
        assert_eq!(delta.space.d, fresh.space.d);
        assert!((delta.space.base_rows - fresh.space.base_rows).abs() < 1e-12);
        assert_eq!(delta.space.base_cost_blocks, fresh.space.base_cost_blocks);
        delta.space.check_invariants().unwrap();
        assert_eq!(delta.params_reused, cached.k());
        assert_eq!(delta.prefs_added, 1);
        assert_eq!(delta.prefs_removed, 0);
        assert_eq!(delta.params_estimated, 1);

        // Now lose a preference: repair from the *gained* space back under
        // the original profile.
        let fresh_back = extract(&q, &profile, &stats, &cfg);
        let delta_back = extract_delta(&q, &profile, &stats, &cfg, &delta.space);
        assert_eq!(delta_back.space.prefs, fresh_back.space.prefs);
        assert_eq!(delta_back.space.params, fresh_back.space.params);
        assert_eq!(delta_back.space.c, fresh_back.space.c);
        assert_eq!(delta_back.space.s, fresh_back.space.s);
        assert_eq!(delta_back.prefs_removed, 1);
        assert_eq!(delta_back.prefs_added, 0);
        assert_eq!(delta_back.params_estimated, 0);
    }

    #[test]
    fn delta_extraction_against_empty_cache_equals_cold() {
        let db = movie_db();
        let stats = db.analyze();
        let q = base_query(&db);
        let profile = figure1_profile(&db);
        let cfg = ExtractConfig::default();
        let empty = PreferenceSpace::synthetic(Vec::new(), 0.0, 0);
        let fresh = extract(&q, &profile, &stats, &cfg);
        let delta = extract_delta(&q, &profile, &stats, &cfg, &empty);
        assert_eq!(delta.space.prefs, fresh.space.prefs);
        assert_eq!(delta.space.c, fresh.space.c);
        assert_eq!(delta.space.s, fresh.space.s);
        assert_eq!(delta.params_reused, 0);
        assert_eq!(delta.params_estimated, fresh.space.k());
    }

    #[test]
    fn duplicate_paths_are_deduplicated() {
        let db = movie_db();
        let stats = db.analyze();
        let c = db.catalog();
        let mut profile = Profile::new("dup");
        // The same join edge twice with different dois: the extraction must
        // keep one copy of the resulting preference (the higher-doi one
        // comes out of the queue first).
        profile
            .add_join(c, "MOVIE", "did", "DIRECTOR", "did", Doi::new(0.9))
            .unwrap();
        profile
            .add_join(c, "MOVIE", "did", "DIRECTOR", "did", Doi::new(0.4))
            .unwrap();
        profile
            .add_selection(c, "DIRECTOR", "name", "dir1", Doi::new(1.0))
            .unwrap();
        let q = base_query(&db);
        let ex = extract(&q, &profile, &stats, &ExtractConfig::default());
        assert_eq!(ex.space.k(), 1);
        assert!((ex.space.doi(0).value() - 0.9).abs() < 1e-12);
    }
}
