//! Figure 12(a): CQP optimization time as a function of `K`, one Criterion
//! group per algorithm. The `reproduce` binary prints the full paper-style
//! sweep; this bench gives statistically robust per-algorithm timings.

use cqp_bench::experiments::FIG12_ALGORITHMS;
use cqp_bench::harness::Scale;
use cqp_bench::{build_workload, experiments};
use cqp_core::solve_p2;
use cqp_prefs::ConjModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig12a(c: &mut Criterion) {
    let w = build_workload(&Scale::default_scale());
    let mut group = c.benchmark_group("fig12a_time_vs_k");
    group.sample_size(10);
    for k in [10usize, 16] {
        let spaces = experiments::spaces_at_k(&w, k);
        let space = &spaces[0];
        for algo in FIG12_ALGORITHMS {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), k),
                &(space, algo),
                |b, (space, algo)| {
                    b.iter(|| solve_p2(space, ConjModel::NoisyOr, w.scale.cmax_for(space), *algo))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12a);
criterion_main!(benches);
