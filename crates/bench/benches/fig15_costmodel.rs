//! Figure 15: personalized-query execution — the workload validating the
//! paper's cost model. Benches the end-to-end execution of the constructed
//! union/having query and prints estimated-vs-measured once.

use cqp_bench::build_workload;
use cqp_bench::harness::Scale;
use cqp_core::construct::construct;
use cqp_engine::{execute_personalized, CostModel};
use cqp_storage::IoMeter;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig15(c: &mut Criterion) {
    let w = build_workload(&Scale::default_scale());
    let (profile, query) = w.pairs().next().expect("non-empty workload");
    let model = CostModel::new(&w.stats);
    let mut group = c.benchmark_group("fig15_execution");
    group.sample_size(10);
    for k in [5usize, 10, 20] {
        let (space, _) = w.space(profile, query, k, true);
        let all: Vec<usize> = (0..space.k()).collect();
        let pq = construct(query, &space, &all).expect("extracted spaces carry paths");
        let meter = IoMeter::new(1.0);
        execute_personalized(&w.db, &pq, &meter).expect("workload queries execute");
        eprintln!(
            "fig15: K={k}: estimated {:.1} ms, simulated I/O {:.1} ms",
            model.personalized_ms(&pq),
            meter.elapsed_ms()
        );
        group.bench_with_input(BenchmarkId::new("execute", k), &pq, |b, pq| {
            b.iter(|| {
                let meter = IoMeter::new(1.0);
                execute_personalized(&w.db, pq, &meter).expect("workload queries execute")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig15);
criterion_main!(benches);
