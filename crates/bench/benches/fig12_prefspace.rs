//! Figure 12(b): Preference-Space extraction time — doi-only output
//! (`D_PrefSelTime`) vs full `D`/`C`/`S` output (`C_PrefSelTime`).

use cqp_bench::build_workload;
use cqp_bench::harness::Scale;
use cqp_prefspace::{extract, ExtractConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig12b(c: &mut Criterion) {
    let w = build_workload(&Scale::default_scale());
    let (profile, query) = w.pairs().next().expect("non-empty workload");
    let mut group = c.benchmark_group("fig12b_prefspace_time");
    group.sample_size(20);
    for k in [10usize, 20, 40] {
        for (variant, with_cost_vectors) in [("D_PrefSelTime", false), ("C_PrefSelTime", true)] {
            let cfg = ExtractConfig {
                max_k: k,
                with_cost_vectors,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(variant, k), &cfg, |b, cfg| {
                b.iter(|| extract(query, profile, &w.stats, cfg))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12b);
criterion_main!(benches);
