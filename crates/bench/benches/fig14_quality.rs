//! Figure 14: solution quality of the heuristics. The gap to the exact
//! optimum is printed once per configuration; the benched operation is the
//! heuristic solve itself.

use cqp_bench::build_workload;
use cqp_bench::experiments::{self, FIG14_ALGORITHMS};
use cqp_bench::harness::Scale;
use cqp_core::{solve_p2, Algorithm};
use cqp_prefs::ConjModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig14(c: &mut Criterion) {
    let w = build_workload(&Scale::default_scale());
    let spaces = experiments::spaces_at_k(&w, 20);
    let space = &spaces[0];
    let optimal = solve_p2(
        space,
        ConjModel::NoisyOr,
        w.scale.cmax_for(space),
        Algorithm::CBoundaries,
    );
    let mut group = c.benchmark_group("fig14_quality");
    group.sample_size(10);
    for algo in FIG14_ALGORITHMS {
        let sol = solve_p2(space, ConjModel::NoisyOr, w.scale.cmax_for(space), algo);
        eprintln!(
            "fig14: {}: doi {:.6} (optimal {:.6}, gap {:.3e})",
            algo.name(),
            sol.doi.value(),
            optimal.doi.value(),
            optimal.doi.value() - sol.doi.value()
        );
        group.bench_with_input(BenchmarkId::new(algo.name(), 20), &algo, |b, algo| {
            b.iter(|| solve_p2(space, ConjModel::NoisyOr, w.scale.cmax_for(space), *algo))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
