//! Ablation: the paper's specialized algorithms vs generic search
//! (simulated annealing, tabu, genetic) — Related Work's claim quantified.

use cqp_bench::build_workload;
use cqp_bench::experiments;
use cqp_bench::harness::Scale;
use cqp_core::{solve_p2, Algorithm};
use cqp_prefs::ConjModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let w = build_workload(&Scale::default_scale());
    let spaces = experiments::spaces_at_k(&w, 16);
    let space = &spaces[0];
    let algos = [
        Algorithm::CMaxBounds,
        Algorithm::DHeurDoi,
        Algorithm::BranchBound,
        Algorithm::Annealing,
        Algorithm::Tabu,
        Algorithm::Genetic,
    ];
    let mut group = c.benchmark_group("ablation_generic");
    group.sample_size(10);
    for algo in algos {
        let sol = solve_p2(space, ConjModel::NoisyOr, w.scale.cmax_for(space), algo);
        eprintln!(
            "ablation_generic: {}: doi {:.6}",
            algo.name(),
            sol.doi.value()
        );
        group.bench_with_input(BenchmarkId::new(algo.name(), 16), &algo, |b, algo| {
            b.iter(|| solve_p2(space, ConjModel::NoisyOr, w.scale.cmax_for(space), *algo))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
