//! Figures 12(c)/(d): optimization time as a function of `cmax`
//! (% of Supreme Cost) at fixed `K = 20`. The paper's headline shape — a
//! hump peaking near 50% — emerges from the state counts.

use cqp_bench::build_workload;
use cqp_bench::experiments;
use cqp_bench::harness::{supreme_cost_blocks, Scale};
use cqp_core::solve_p2;
use cqp_prefs::ConjModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig12c(c: &mut Criterion) {
    let w = build_workload(&Scale::default_scale());
    let spaces = experiments::spaces_at_k(&w, 20);
    let space = &spaces[0];
    let supreme = supreme_cost_blocks(space);
    let mut group = c.benchmark_group("fig12c_time_vs_cmax");
    group.sample_size(10);
    for pct in [20u64, 50, 80] {
        let cmax = supreme * pct / 100;
        for algo in [
            cqp_core::Algorithm::CBoundaries,
            cqp_core::Algorithm::CMaxBounds,
            cqp_core::Algorithm::DHeurDoi,
        ] {
            group.bench_with_input(BenchmarkId::new(algo.name(), pct), &algo, |b, algo| {
                b.iter(|| solve_p2(space, ConjModel::NoisyOr, cmax, *algo))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12c);
criterion_main!(benches);
