//! Figure 13: memory requirements. Criterion measures time; the tracked
//! peak bytes (the figure's actual metric) are printed once per
//! configuration so the bench output carries both.

use cqp_bench::build_workload;
use cqp_bench::experiments::{self, FIG12_ALGORITHMS};
use cqp_bench::harness::Scale;
use cqp_core::solve_p2;
use cqp_prefs::ConjModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig13(c: &mut Criterion) {
    let w = build_workload(&Scale::default_scale());
    let mut group = c.benchmark_group("fig13_memory");
    group.sample_size(10);
    for k in [10usize, 16] {
        let spaces = experiments::spaces_at_k(&w, k);
        let space = &spaces[0];
        for algo in FIG12_ALGORITHMS {
            let sol = solve_p2(space, ConjModel::NoisyOr, w.scale.cmax_for(space), algo);
            eprintln!(
                "fig13: K={k} {}: peak memory {:.3} KB",
                algo.name(),
                sol.instrument.peak_kbytes()
            );
            group.bench_with_input(BenchmarkId::new(algo.name(), k), &algo, |b, algo| {
                b.iter(|| {
                    solve_p2(space, ConjModel::NoisyOr, w.scale.cmax_for(space), *algo)
                        .instrument
                        .peak_bytes
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
