//! Ablation: alternative conjunction models `r` (Section 7.2.3's remark).
//! The search algorithms only rely on Formula 4's monotonicity, so they run
//! unchanged under every model; this bench shows the cost of doing so.

use cqp_bench::build_workload;
use cqp_bench::experiments;
use cqp_bench::harness::Scale;
use cqp_core::{solve_p2, Algorithm};
use cqp_prefs::ConjModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_doi_model(c: &mut Criterion) {
    let w = build_workload(&Scale::default_scale());
    let spaces = experiments::spaces_at_k(&w, 20);
    let space = &spaces[0];
    let mut group = c.benchmark_group("ablation_doi_model");
    group.sample_size(10);
    for conj in [ConjModel::NoisyOr, ConjModel::Max, ConjModel::Quadrature] {
        for algo in [Algorithm::CBoundaries, Algorithm::CMaxBounds] {
            group.bench_with_input(
                BenchmarkId::new(format!("{conj:?}"), algo.name()),
                &(conj, algo),
                |b, (conj, algo)| b.iter(|| solve_p2(space, *conj, w.scale.cmax_for(space), *algo)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_doi_model);
criterion_main!(benches);
