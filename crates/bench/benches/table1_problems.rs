//! Table 1: the six CQP problems, each solved by the Section 6 state-space
//! adaptation and by exact branch-and-bound.

use cqp_bench::build_workload;
use cqp_bench::experiments;
use cqp_bench::harness::Scale;
use cqp_core::algorithms::branch_bound;
use cqp_core::{general_solve, ProblemSpec};
use cqp_prefs::{ConjModel, Doi};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_table1(c: &mut Criterion) {
    let w = build_workload(&Scale::default_scale());
    let spaces = experiments::spaces_at_k(&w, 20);
    let space = &spaces[0];
    let base = space.base_rows;
    let cmax = w.scale.cmax_for(space);
    let problems: Vec<(usize, ProblemSpec)> = vec![
        (1, ProblemSpec::p1(1.0, base * 0.25)),
        (2, ProblemSpec::p2(cmax)),
        (3, ProblemSpec::p3(cmax, 1.0, base * 0.25)),
        (4, ProblemSpec::p4(Doi::new(0.5))),
        (5, ProblemSpec::p5(Doi::new(0.5), 1.0, base * 0.25)),
        (6, ProblemSpec::p6(1.0, base * 0.25)),
    ];
    let mut group = c.benchmark_group("table1_problems");
    group.sample_size(10);
    for (n, p) in &problems {
        group.bench_with_input(BenchmarkId::new("state_space", n), p, |b, p| {
            b.iter(|| general_solve(space, ConjModel::NoisyOr, p))
        });
        group.bench_with_input(BenchmarkId::new("branch_bound", n), p, |b, p| {
            b.iter(|| branch_bound::solve(space, ConjModel::NoisyOr, p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
