//! Minimal CSV emission for the experiment rows.
//!
//! No external dependency: the rows are flat numeric records, so hand
//! rolling the writer keeps the workspace inside the approved crate set.

use crate::experiments::{
    AlgoTimeRow, CostModelRow, MemoryRow, PrefSelRow, ProblemRow, QualityRow,
};
use std::fs;
use std::io::Write;
use std::path::Path;

/// Writes lines to `dir/name.csv`, creating the directory as needed.
fn write_lines(dir: &Path, name: &str, header: &str, lines: &[String]) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut f = fs::File::create(dir.join(format!("{name}.csv")))?;
    writeln!(f, "{header}")?;
    for l in lines {
        writeln!(f, "{l}")?;
    }
    Ok(())
}

/// Writes algorithm-time rows.
pub fn write_times(dir: &Path, name: &str, rows: &[AlgoTimeRow]) -> std::io::Result<()> {
    let lines: Vec<String> = rows
        .iter()
        .map(|r| format!("{},{},{:.9},{:.1}", r.x, r.algorithm, r.seconds, r.states))
        .collect();
    write_lines(dir, name, "x,algorithm,seconds,states", &lines)
}

/// Writes memory rows.
pub fn write_memory(dir: &Path, name: &str, rows: &[MemoryRow]) -> std::io::Result<()> {
    let lines: Vec<String> = rows
        .iter()
        .map(|r| format!("{},{},{:.4}", r.x, r.algorithm, r.kbytes))
        .collect();
    write_lines(dir, name, "x,algorithm,kbytes", &lines)
}

/// Writes quality rows.
pub fn write_quality(dir: &Path, name: &str, rows: &[QualityRow]) -> std::io::Result<()> {
    let lines: Vec<String> = rows
        .iter()
        .map(|r| format!("{},{},{:.12}", r.x, r.algorithm, r.quality_gap))
        .collect();
    write_lines(dir, name, "x,algorithm,quality_gap", &lines)
}

/// Writes preference-selection rows.
pub fn write_prefsel(dir: &Path, name: &str, rows: &[PrefSelRow]) -> std::io::Result<()> {
    let lines: Vec<String> = rows
        .iter()
        .map(|r| format!("{},{},{:.9}", r.k, r.variant, r.seconds))
        .collect();
    write_lines(dir, name, "k,variant,seconds", &lines)
}

/// Writes cost-model rows.
pub fn write_costmodel(dir: &Path, name: &str, rows: &[CostModelRow]) -> std::io::Result<()> {
    let lines: Vec<String> = rows
        .iter()
        .map(|r| format!("{},{:.3},{:.3}", r.k, r.estimated_ms, r.real_ms))
        .collect();
    write_lines(dir, name, "k,estimated_ms,real_ms", &lines)
}

/// Writes Table 1 rows.
pub fn write_problems(dir: &Path, name: &str, rows: &[ProblemRow]) -> std::io::Result<()> {
    let lines: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},\"{}\",{},{:.6},{:.1},{:.2},{},{}",
                r.problem, r.spec, r.found, r.doi, r.cost_ms, r.size_rows, r.prefs, r.matches_exact
            )
        })
        .collect();
    write_lines(
        dir,
        name,
        "problem,spec,found,doi,cost_ms,size_rows,prefs,matches_exact",
        &lines,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_csv_files() {
        let dir = std::env::temp_dir().join("cqp_csv_test");
        let rows = vec![AlgoTimeRow {
            x: 10.0,
            algorithm: "C_MaxBounds",
            seconds: 0.001,
            states: 42.0,
        }];
        write_times(&dir, "t", &rows).unwrap();
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert!(content.starts_with("x,algorithm,seconds,states"));
        assert!(content.contains("C_MaxBounds"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
