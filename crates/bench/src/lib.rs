//! # cqp-bench
//!
//! The experiment harness for the CQP reproduction: builds the synthetic
//! IMDb-like workloads, runs every experiment of the paper's Section 7, and
//! emits the same rows/series the paper's tables and figures report.
//!
//! * [`harness`] — workload construction (database, profiles, queries) and
//!   preference-space extraction at a given `K`.
//! * [`experiments`] — one function per table/figure (12a–15, Table 1) plus
//!   the ablations DESIGN.md lists.
//! * [`csvout`] — plain CSV emission for plotting.
//!
//! The `reproduce` binary drives everything:
//!
//! ```text
//! cargo run --release -p cqp-bench --bin reproduce -- all
//! cargo run --release -p cqp-bench --bin reproduce -- fig12a --runs 9
//! ```

pub mod csvout;
pub mod experiments;
pub mod harness;

pub use harness::{build_workload, Scale, Workload};
