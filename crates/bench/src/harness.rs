//! Workload construction for the experiments.
//!
//! Paper defaults (Section 7.2): `K = 20`, `cmax = 400 ms` (with
//! `b = 1 ms/block`, i.e. 400 blocks), each point averaged over
//! 20 profiles × 10 queries. The full 200-run setting is available as
//! [`Scale::paper`]; [`Scale::default_scale`] uses a smaller cross product
//! so the complete suite runs in minutes, and [`Scale::tiny`] keeps CI
//! fast.

use cqp_datagen::{
    generate_movie_db, generate_movie_profile, generate_movie_queries, MovieDbConfig,
    ProfileGenConfig, QueryGenConfig,
};
use cqp_engine::ConjunctiveQuery;
use cqp_obs::Obs;
use cqp_prefs::Profile;
use cqp_prefspace::{extract, ExtractConfig, PreferenceSpace};
use cqp_storage::{Database, DbStats};

/// Experiment scale knobs.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Database generator configuration.
    pub db: MovieDbConfig,
    /// Number of profiles per point.
    pub profiles: usize,
    /// Number of queries per point.
    pub queries: usize,
    /// The default cost bound in blocks (the paper's `cmax = 400 ms` at
    /// `b = 1 ms/block`), used when `cmax_supreme_frac` is `None`.
    pub cmax_blocks: u64,
    /// When set, the K-sweep experiments bind the budget at this fraction
    /// of each space's Supreme Cost instead of the constant.
    ///
    /// The paper used a constant 400 ms, which on *its* data sat near the
    /// Figure 12(c) hump (~50 % of Supreme Cost) at the default `K = 20`.
    /// Our synthetic substrate has a different cost scale, so holding the
    /// constant would leave low-K points trivially feasible; holding the
    /// *ratio* keeps every point in the paper's regime.
    pub cmax_supreme_frac: Option<f64>,
    /// Human-readable name.
    pub name: &'static str,
}

impl Scale {
    /// The effective budget for one preference space: the Supreme-Cost
    /// fraction when configured, else the fixed constant.
    pub fn cmax_for(&self, space: &PreferenceSpace) -> u64 {
        match self.cmax_supreme_frac {
            Some(frac) => (supreme_cost_blocks(space) as f64 * frac).round() as u64,
            None => self.cmax_blocks,
        }
    }
}

impl Scale {
    /// Block capacity placing relation block-counts in the paper's regime:
    /// with `cmax = 400` and `b = 1 ms/block`, a feasible personalization
    /// holds on the order of ten preferences, which is where the paper's
    /// Figure 14 quality gaps (~10⁻⁷) live — Formula 10 saturates quickly
    /// as preferences accumulate (Section 7.2.3).
    const PAPER_REGIME_BLOCK_CAPACITY: usize = 256;

    /// The paper's full setting: 20 profiles × 10 queries.
    pub fn paper() -> Self {
        Scale {
            db: MovieDbConfig {
                block_capacity: Self::PAPER_REGIME_BLOCK_CAPACITY,
                ..Default::default()
            },
            profiles: 20,
            queries: 10,
            cmax_blocks: 400,
            cmax_supreme_frac: Some(0.5),
            name: "paper",
        }
    }

    /// A balanced default: the same database, 3 profiles × 3 queries.
    pub fn default_scale() -> Self {
        Scale {
            db: MovieDbConfig {
                block_capacity: Self::PAPER_REGIME_BLOCK_CAPACITY,
                ..Default::default()
            },
            profiles: 3,
            queries: 3,
            cmax_blocks: 400,
            cmax_supreme_frac: Some(0.5),
            name: "default",
        }
    }

    /// A minimal setting for tests and smoke runs.
    pub fn tiny() -> Self {
        Scale {
            db: MovieDbConfig::tiny(42),
            profiles: 2,
            queries: 2,
            cmax_blocks: 120,
            cmax_supreme_frac: None,
            name: "tiny",
        }
    }

    /// Parses a scale name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "paper" => Some(Scale::paper()),
            "default" => Some(Scale::default_scale()),
            "tiny" => Some(Scale::tiny()),
            _ => None,
        }
    }
}

/// A fully built workload: database, statistics, profiles, queries.
pub struct Workload {
    /// The synthetic movie database.
    pub db: Database,
    /// Its statistics (`ANALYZE` output).
    pub stats: DbStats,
    /// The profiles (varied dois per seed).
    pub profiles: Vec<Profile>,
    /// The query workload.
    pub queries: Vec<ConjunctiveQuery>,
    /// The scale it was built at.
    pub scale: Scale,
}

impl Workload {
    /// Every (profile, query) run pair.
    pub fn pairs(&self) -> impl Iterator<Item = (&Profile, &ConjunctiveQuery)> {
        self.profiles
            .iter()
            .flat_map(move |p| self.queries.iter().map(move |q| (p, q)))
    }

    /// Number of run pairs.
    pub fn num_pairs(&self) -> usize {
        self.profiles.len() * self.queries.len()
    }

    /// Extracts a preference space of (up to) `k` preferences for one pair,
    /// returning it with the extraction wall time in seconds.
    pub fn space(
        &self,
        profile: &Profile,
        query: &ConjunctiveQuery,
        k: usize,
        with_cost_vectors: bool,
    ) -> (PreferenceSpace, f64) {
        self.space_recorded(profile, query, k, with_cost_vectors, &Obs::new())
    }

    /// [`Workload::space`] under a shared [`Obs`]: extraction runs inside a
    /// `prefspace.extract` span so repeated calls aggregate in the tracer.
    pub fn space_recorded(
        &self,
        profile: &Profile,
        query: &ConjunctiveQuery,
        k: usize,
        with_cost_vectors: bool,
        obs: &Obs,
    ) -> (PreferenceSpace, f64) {
        let cfg = ExtractConfig {
            max_k: k,
            with_cost_vectors,
            ..Default::default()
        };
        let (ex, secs) = timed_span(obs, "prefspace.extract", || {
            extract(query, profile, &self.stats, &cfg)
        });
        (ex.space, secs)
    }
}

/// Builds the workload for a scale.
pub fn build_workload(scale: &Scale) -> Workload {
    let db = generate_movie_db(&scale.db);
    let stats = db.analyze();
    let base_profile_cfg = ProfileGenConfig {
        n_directors: scale.db.directors,
        n_actors: scale.db.actors,
        ..Default::default()
    };
    let profiles: Vec<Profile> = (0..scale.profiles)
        .map(|i| {
            // Vary the doi distribution across profiles, as in [12]'s
            // setting: different means and deviations.
            let mean = 0.35 + 0.5 * (i as f64 / scale.profiles.max(1) as f64);
            let dev = 0.15 + 0.05 * (i % 4) as f64;
            let cfg = ProfileGenConfig {
                doi_mean: mean,
                doi_deviation: dev,
                seed: 1000 + i as u64,
                ..base_profile_cfg.clone()
            };
            generate_movie_profile(db.catalog(), &cfg)
        })
        .collect();
    let queries = generate_movie_queries(
        db.catalog(),
        &QueryGenConfig {
            count: scale.queries,
            ..Default::default()
        },
    );
    Workload {
        db,
        stats,
        profiles,
        queries,
        scale: scale.clone(),
    }
}

/// The *Supreme Cost* of a space: the cost of the query incorporating all
/// `K` preferences — "the most expensive query based on our cost
/// assumptions" (Section 7.2).
pub fn supreme_cost_blocks(space: &PreferenceSpace) -> u64 {
    (0..space.k()).map(|i| space.cost_blocks(i)).sum()
}

/// Times a closure, returning its output and elapsed seconds. The clock is
/// the span tracer (a throwaway [`Obs`]), so every experiment timing flows
/// through the same instrument as the recorded pipelines.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    timed_span(&Obs::new(), "timed", f)
}

/// Runs `f` inside a root span `name` on `obs` and returns its output plus
/// the wall seconds the tracer attributed to *this* entry (total delta, so
/// it works on an `Obs` shared across repeated runs).
pub fn timed_span<R>(obs: &Obs, name: &'static str, f: impl FnOnce() -> R) -> (R, f64) {
    let before = span_secs(obs, name);
    let r = {
        let _span = obs.span(name);
        f()
    };
    (r, span_secs(obs, name) - before)
}

/// Total wall seconds the tracer has accumulated for spans whose dotted
/// path equals `path` (0.0 if the span never ran).
pub fn span_secs(obs: &Obs, path: &str) -> f64 {
    obs.with_tracer(|t| {
        t.spans()
            .iter()
            .filter(|s| s.path == path)
            .map(|s| s.total.as_secs_f64())
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_builds_and_extracts() {
        let w = build_workload(&Scale::tiny());
        assert_eq!(w.num_pairs(), 4);
        let (p, q) = w.pairs().next().unwrap();
        let (space, secs) = w.space(p, q, 10, true);
        assert!(space.k() > 0, "extraction must find related preferences");
        assert!(space.k() <= 10);
        assert!(secs >= 0.0);
        space.check_invariants().unwrap();
        assert!(supreme_cost_blocks(&space) > 0);
    }

    #[test]
    fn k_is_reachable_at_default_scale_params() {
        // The profile generator must supply >= 40 related preferences.
        let w = build_workload(&Scale::tiny());
        let (p, q) = w.pairs().next().unwrap();
        let (space, _) = w.space(p, q, 40, true);
        // Tiny profiles carry fewer selections; the important invariant is
        // that extraction is capped by max_k and monotone in it.
        let (space5, _) = w.space(p, q, 5, true);
        assert!(space5.k() <= 5);
        assert!(space.k() >= space5.k());
    }

    #[test]
    fn timed_span_times_through_the_tracer() {
        let obs = Obs::new();
        let (v, t1) = timed_span(&obs, "work", || 42);
        assert_eq!(v, 42);
        assert!(t1 >= 0.0);
        let (_, t2) = timed_span(&obs, "work", || ());
        // Both entries aggregate in the tracer, yet each call reported only
        // its own delta.
        assert!((span_secs(&obs, "work") - (t1 + t2)).abs() < 1e-9);
        assert_eq!(obs.with_tracer(|t| t.spans()[0].count), 2);
        assert_eq!(span_secs(&obs, "no-such-span"), 0.0);
    }

    #[test]
    fn scale_lookup() {
        assert_eq!(Scale::by_name("paper").unwrap().profiles, 20);
        assert_eq!(Scale::by_name("tiny").unwrap().name, "tiny");
        assert!(Scale::by_name("nope").is_none());
    }
}
