//! One function per table/figure of the paper's evaluation (Section 7),
//! plus the ablations called out in DESIGN.md.
//!
//! Every function returns plain row structs so the `reproduce` binary can
//! print paper-style series and the CSV writer can persist them. All
//! averages follow the paper's methodology: each data point is the mean
//! over the workload's profile × query pairs.

use crate::harness::{span_secs, supreme_cost_blocks, timed_span, Workload};
use cqp_core::algorithms::{generic, solve_p2, solve_p2_recorded, Algorithm, Solution};
use cqp_core::construct::construct;
use cqp_core::{general_solve, ProblemSpec};
use cqp_engine::CostModel;
use cqp_obs::{Obs, Recorder, RunReport};
use cqp_par::ThreadPool;
use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::PreferenceSpace;
use cqp_storage::IoMeter;
use std::sync::Arc;

/// The algorithms of Figure 12, in the paper's legend order.
pub const FIG12_ALGORITHMS: [Algorithm; 5] = [
    Algorithm::DMaxDoi,
    Algorithm::DSingleMaxDoi,
    Algorithm::CBoundaries,
    Algorithm::CMaxBounds,
    Algorithm::DHeurDoi,
];

/// A time measurement for one algorithm at one sweep position.
#[derive(Debug, Clone)]
pub struct AlgoTimeRow {
    /// Sweep position (`K`, or % of Supreme Cost).
    pub x: f64,
    /// Algorithm name (paper legend spelling).
    pub algorithm: &'static str,
    /// Mean wall-clock seconds per run.
    pub seconds: f64,
    /// Mean states examined (machine-independent work measure).
    pub states: f64,
}

/// A memory measurement (Figure 13).
#[derive(Debug, Clone)]
pub struct MemoryRow {
    /// Sweep position (`K`, or % of Supreme Cost).
    pub x: f64,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Mean peak tracked memory in KBytes.
    pub kbytes: f64,
}

/// A quality measurement (Figure 14): `doi_optimal − doi_found`.
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Sweep position (`K`, or % of Supreme Cost).
    pub x: f64,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Mean quality gap (the paper plots this ×10⁷).
    pub quality_gap: f64,
}

/// A preference-selection timing (Figure 12(b)).
#[derive(Debug, Clone)]
pub struct PrefSelRow {
    /// Number of preferences `K`.
    pub k: usize,
    /// `D_PrefSelTime` (doi order only) or `C_PrefSelTime` (all vectors).
    pub variant: &'static str,
    /// Mean wall-clock seconds.
    pub seconds: f64,
}

/// A cost-model validation point (Figure 15).
#[derive(Debug, Clone)]
pub struct CostModelRow {
    /// Number of preferences integrated.
    pub k: usize,
    /// Estimated execution time, ms (Formula 11 with `b = 1 ms`).
    pub estimated_ms: f64,
    /// Measured execution time, ms (simulated I/O + actual CPU).
    pub real_ms: f64,
}

/// One solved problem of Table 1.
#[derive(Debug, Clone)]
pub struct ProblemRow {
    /// Problem number (1–6).
    pub problem: usize,
    /// Human-readable spec.
    pub spec: String,
    /// Whether a feasible personalization was found.
    pub found: bool,
    /// Solution doi.
    pub doi: f64,
    /// Solution cost in ms.
    pub cost_ms: f64,
    /// Solution estimated size in rows.
    pub size_rows: f64,
    /// Number of preferences selected.
    pub prefs: usize,
    /// Whether the state-space answer matches exact branch-and-bound.
    pub matches_exact: bool,
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Pre-extracts the spaces of every pair at a given `K` (shared across
/// algorithms so extraction cost doesn't pollute search timings).
pub fn spaces_at_k(w: &Workload, k: usize) -> Vec<PreferenceSpace> {
    w.pairs().map(|(p, q)| w.space(p, q, k, true).0).collect()
}

/// One recorded solver run under a shared cell `Obs`. The root span is the
/// algorithm name, so the delta of its tracer total is this run's wall
/// seconds — timing and metrics come from the same instrument.
fn solve_timed(
    obs: &Obs,
    space: &PreferenceSpace,
    conj: ConjModel,
    cmax: u64,
    algo: Algorithm,
) -> (Solution, f64) {
    let before = span_secs(obs, algo.name());
    let sol = solve_p2_recorded(space, conj, cmax, algo, obs);
    (sol, span_secs(obs, algo.name()) - before)
}

/// Figure 12(a): CQP optimization time as a function of `K`.
pub fn fig12a(w: &Workload, ks: &[usize], algorithms: &[Algorithm]) -> Vec<AlgoTimeRow> {
    fig12a_reported(w, ks, algorithms, &mut Vec::new())
}

/// [`fig12a`] collecting one [`RunReport`] per (K, algorithm) cell.
pub fn fig12a_reported(
    w: &Workload,
    ks: &[usize],
    algorithms: &[Algorithm],
    reports: &mut Vec<RunReport>,
) -> Vec<AlgoTimeRow> {
    let mut rows = Vec::new();
    for &k in ks {
        let spaces = spaces_at_k(w, k);
        for &algo in algorithms {
            let obs = Obs::new();
            let mut secs = Vec::new();
            let mut states = Vec::new();
            for space in &spaces {
                let (sol, t) = solve_timed(
                    &obs,
                    space,
                    ConjModel::NoisyOr,
                    w.scale.cmax_for(space),
                    algo,
                );
                secs.push(t);
                states.push(sol.instrument.states_examined as f64);
            }
            rows.push(AlgoTimeRow {
                x: k as f64,
                algorithm: algo.name(),
                seconds: mean(&secs),
                states: mean(&states),
            });
            reports.push(
                RunReport::from_obs("fig12a", algo.name(), &obs)
                    .with_field("k", k as u64)
                    .with_field("runs", spaces.len() as u64)
                    .with_field("mean_seconds", mean(&secs)),
            );
        }
    }
    rows
}

/// Figure 12(b): Preference-Space module time as a function of `K`, for
/// doi-only output (`D_PrefSelTime`) vs full `D`/`C`/`S` output
/// (`C_PrefSelTime`).
pub fn fig12b(w: &Workload, ks: &[usize]) -> Vec<PrefSelRow> {
    fig12b_reported(w, ks, &mut Vec::new())
}

/// [`fig12b`] collecting one [`RunReport`] per (K, variant) cell.
pub fn fig12b_reported(
    w: &Workload,
    ks: &[usize],
    reports: &mut Vec<RunReport>,
) -> Vec<PrefSelRow> {
    let mut rows = Vec::new();
    for &k in ks {
        for (variant, with_cost) in [("D_PrefSelTime", false), ("C_PrefSelTime", true)] {
            let obs = Obs::new();
            let mut secs = Vec::new();
            for (p, q) in w.pairs() {
                let (_, t) = w.space_recorded(p, q, k, with_cost, &obs);
                secs.push(t);
            }
            rows.push(PrefSelRow {
                k,
                variant,
                seconds: mean(&secs),
            });
            reports.push(
                RunReport::from_obs("fig12b", variant, &obs)
                    .with_field("k", k as u64)
                    .with_field("runs", w.num_pairs() as u64)
                    .with_field("mean_seconds", mean(&secs)),
            );
        }
    }
    rows
}

/// [`fig12a_reported`] with the `(K, algorithm)` grid cells fanned across a
/// work-stealing pool. `cells` fixes the row order (cells come back in
/// input order regardless of which worker ran them); each cell gets its own
/// [`Obs`], so cell timings and reports are attributed exactly as in the
/// sequential run. With `threads == 1` the pool inlines and this *is* the
/// sequential run.
pub fn fig12a_parallel(
    w: &Workload,
    cells: &[(usize, Algorithm)],
    threads: usize,
    reports: &mut Vec<RunReport>,
) -> Vec<AlgoTimeRow> {
    let pool = ThreadPool::new(threads);
    // Extract each distinct K's spaces once (shared across that K's cells),
    // itself fanned over the pool.
    let mut distinct_ks: Vec<usize> = Vec::new();
    for &(k, _) in cells {
        if !distinct_ks.contains(&k) {
            distinct_ks.push(k);
        }
    }
    let spaces_by_k: Vec<Vec<PreferenceSpace>> =
        pool.map(distinct_ks.clone(), |_, k| spaces_at_k(w, k));

    let out = pool.map(cells.to_vec(), |_, (k, algo)| {
        let ki = distinct_ks.iter().position(|&d| d == k).unwrap();
        let spaces = &spaces_by_k[ki];
        let obs = Obs::new();
        let mut secs = Vec::new();
        let mut states = Vec::new();
        for space in spaces {
            let (sol, t) = solve_timed(
                &obs,
                space,
                ConjModel::NoisyOr,
                w.scale.cmax_for(space),
                algo,
            );
            secs.push(t);
            states.push(sol.instrument.states_examined as f64);
        }
        let row = AlgoTimeRow {
            x: k as f64,
            algorithm: algo.name(),
            seconds: mean(&secs),
            states: mean(&states),
        };
        let report = RunReport::from_obs("fig12a", algo.name(), &obs)
            .with_field("k", k as u64)
            .with_field("runs", spaces.len() as u64)
            .with_field("mean_seconds", mean(&secs));
        (row, report)
    });
    let mut rows = Vec::new();
    for (row, report) in out {
        rows.push(row);
        reports.push(report);
    }
    rows
}

/// Figures 12(c)/(d): optimization time as a function of `cmax`, expressed
/// as a percentage of each space's Supreme Cost, at fixed `K`.
pub fn fig12c(
    w: &Workload,
    k: usize,
    percents: &[u32],
    algorithms: &[Algorithm],
) -> Vec<AlgoTimeRow> {
    fig12c_reported(w, k, percents, algorithms, &mut Vec::new())
}

/// [`fig12c`] collecting one [`RunReport`] per (percent, algorithm) cell.
pub fn fig12c_reported(
    w: &Workload,
    k: usize,
    percents: &[u32],
    algorithms: &[Algorithm],
    reports: &mut Vec<RunReport>,
) -> Vec<AlgoTimeRow> {
    let spaces = spaces_at_k(w, k);
    let mut rows = Vec::new();
    for &pct in percents {
        for &algo in algorithms {
            let obs = Obs::new();
            let mut secs = Vec::new();
            let mut states = Vec::new();
            for space in &spaces {
                let cmax = supreme_cost_blocks(space) * pct as u64 / 100;
                let (sol, t) = solve_timed(&obs, space, ConjModel::NoisyOr, cmax, algo);
                secs.push(t);
                states.push(sol.instrument.states_examined as f64);
            }
            rows.push(AlgoTimeRow {
                x: pct as f64,
                algorithm: algo.name(),
                seconds: mean(&secs),
                states: mean(&states),
            });
            reports.push(
                RunReport::from_obs("fig12c", algo.name(), &obs)
                    .with_field("percent_supreme", pct as u64)
                    .with_field("k", k as u64)
                    .with_field("runs", spaces.len() as u64)
                    .with_field("mean_seconds", mean(&secs)),
            );
        }
    }
    rows
}

/// [`fig12c_reported`] with the `(percent, algorithm)` grid cells fanned
/// across a work-stealing pool; row/report order matches the sequential
/// run, and `threads == 1` inlines to it.
pub fn fig12c_parallel(
    w: &Workload,
    k: usize,
    percents: &[u32],
    algorithms: &[Algorithm],
    threads: usize,
    reports: &mut Vec<RunReport>,
) -> Vec<AlgoTimeRow> {
    let pool = ThreadPool::new(threads);
    let spaces = spaces_at_k(w, k);
    let cells: Vec<(u32, Algorithm)> = percents
        .iter()
        .flat_map(|&pct| algorithms.iter().map(move |&a| (pct, a)))
        .collect();
    let out = pool.map(cells, |_, (pct, algo)| {
        let obs = Obs::new();
        let mut secs = Vec::new();
        let mut states = Vec::new();
        for space in &spaces {
            let cmax = supreme_cost_blocks(space) * pct as u64 / 100;
            let (sol, t) = solve_timed(&obs, space, ConjModel::NoisyOr, cmax, algo);
            secs.push(t);
            states.push(sol.instrument.states_examined as f64);
        }
        let row = AlgoTimeRow {
            x: pct as f64,
            algorithm: algo.name(),
            seconds: mean(&secs),
            states: mean(&states),
        };
        let report = RunReport::from_obs("fig12c", algo.name(), &obs)
            .with_field("percent_supreme", pct as u64)
            .with_field("k", k as u64)
            .with_field("runs", spaces.len() as u64)
            .with_field("mean_seconds", mean(&secs));
        (row, report)
    });
    let mut rows = Vec::new();
    for (row, report) in out {
        rows.push(row);
        reports.push(report);
    }
    rows
}

/// Figure 13(a): peak memory as a function of `K`.
pub fn fig13a(w: &Workload, ks: &[usize], algorithms: &[Algorithm]) -> Vec<MemoryRow> {
    fig13a_reported(w, ks, algorithms, &mut Vec::new())
}

/// [`fig13a`] collecting one [`RunReport`] per (K, algorithm) cell; the
/// report's `solver.peak_bytes` histogram holds min/mean/max peaks over the
/// cell's runs.
pub fn fig13a_reported(
    w: &Workload,
    ks: &[usize],
    algorithms: &[Algorithm],
    reports: &mut Vec<RunReport>,
) -> Vec<MemoryRow> {
    let mut rows = Vec::new();
    for &k in ks {
        let spaces = spaces_at_k(w, k);
        for &algo in algorithms {
            let obs = Obs::new();
            let kbytes: Vec<f64> = spaces
                .iter()
                .map(|space| {
                    solve_p2_recorded(
                        space,
                        ConjModel::NoisyOr,
                        w.scale.cmax_for(space),
                        algo,
                        &obs,
                    )
                    .instrument
                    .peak_kbytes()
                })
                .collect();
            rows.push(MemoryRow {
                x: k as f64,
                algorithm: algo.name(),
                kbytes: mean(&kbytes),
            });
            reports.push(
                RunReport::from_obs("fig13a", algo.name(), &obs)
                    .with_field("k", k as u64)
                    .with_field("runs", spaces.len() as u64)
                    .with_field("mean_kbytes", mean(&kbytes)),
            );
        }
    }
    rows
}

/// Figure 13(b): peak memory as a function of `cmax` (% of Supreme Cost).
pub fn fig13b(
    w: &Workload,
    k: usize,
    percents: &[u32],
    algorithms: &[Algorithm],
) -> Vec<MemoryRow> {
    fig13b_reported(w, k, percents, algorithms, &mut Vec::new())
}

/// [`fig13b`] collecting one [`RunReport`] per (percent, algorithm) cell.
pub fn fig13b_reported(
    w: &Workload,
    k: usize,
    percents: &[u32],
    algorithms: &[Algorithm],
    reports: &mut Vec<RunReport>,
) -> Vec<MemoryRow> {
    let spaces = spaces_at_k(w, k);
    let mut rows = Vec::new();
    for &pct in percents {
        for &algo in algorithms {
            let obs = Obs::new();
            let kbytes: Vec<f64> = spaces
                .iter()
                .map(|space| {
                    let cmax = supreme_cost_blocks(space) * pct as u64 / 100;
                    solve_p2_recorded(space, ConjModel::NoisyOr, cmax, algo, &obs)
                        .instrument
                        .peak_kbytes()
                })
                .collect();
            rows.push(MemoryRow {
                x: pct as f64,
                algorithm: algo.name(),
                kbytes: mean(&kbytes),
            });
            reports.push(
                RunReport::from_obs("fig13b", algo.name(), &obs)
                    .with_field("percent_supreme", pct as u64)
                    .with_field("k", k as u64)
                    .with_field("runs", spaces.len() as u64)
                    .with_field("mean_kbytes", mean(&kbytes)),
            );
        }
    }
    rows
}

/// The heuristic algorithms evaluated for quality in Figure 14.
pub const FIG14_ALGORITHMS: [Algorithm; 3] = [
    Algorithm::DHeurDoi,
    Algorithm::CMaxBounds,
    Algorithm::DSingleMaxDoi,
];

/// Figure 14(a): quality gap vs `K`.
pub fn fig14a(w: &Workload, ks: &[usize], conj: ConjModel) -> Vec<QualityRow> {
    fig14a_reported(w, ks, conj, &mut Vec::new())
}

/// [`fig14a`] collecting one [`RunReport`] per (K, algorithm) cell. Only
/// the heuristic under evaluation is recorded; the C-BOUNDARIES reference
/// runs unrecorded so its counters don't pollute the cell.
pub fn fig14a_reported(
    w: &Workload,
    ks: &[usize],
    conj: ConjModel,
    reports: &mut Vec<RunReport>,
) -> Vec<QualityRow> {
    let mut rows = Vec::new();
    for &k in ks {
        let spaces = spaces_at_k(w, k);
        for algo in FIG14_ALGORITHMS {
            let obs = Obs::new();
            let gaps: Vec<f64> = spaces
                .iter()
                .map(|space| {
                    let optimal =
                        solve_p2(space, conj, w.scale.cmax_for(space), Algorithm::CBoundaries);
                    let found = solve_p2_recorded(space, conj, w.scale.cmax_for(space), algo, &obs);
                    (optimal.doi.value() - found.doi.value()).max(0.0)
                })
                .collect();
            rows.push(QualityRow {
                x: k as f64,
                algorithm: algo.name(),
                quality_gap: mean(&gaps),
            });
            reports.push(
                RunReport::from_obs("fig14a", algo.name(), &obs)
                    .with_field("k", k as u64)
                    .with_field("conj", format!("{conj:?}"))
                    .with_field("runs", spaces.len() as u64)
                    .with_field("mean_gap", mean(&gaps)),
            );
        }
    }
    rows
}

/// Figure 14(b): quality gap vs `cmax` (% of Supreme Cost) at fixed `K`.
pub fn fig14b(w: &Workload, k: usize, percents: &[u32], conj: ConjModel) -> Vec<QualityRow> {
    fig14b_reported(w, k, percents, conj, &mut Vec::new())
}

/// [`fig14b`] collecting one [`RunReport`] per (percent, algorithm) cell.
pub fn fig14b_reported(
    w: &Workload,
    k: usize,
    percents: &[u32],
    conj: ConjModel,
    reports: &mut Vec<RunReport>,
) -> Vec<QualityRow> {
    let spaces = spaces_at_k(w, k);
    let mut rows = Vec::new();
    for &pct in percents {
        for algo in FIG14_ALGORITHMS {
            let obs = Obs::new();
            let gaps: Vec<f64> = spaces
                .iter()
                .map(|space| {
                    let cmax = supreme_cost_blocks(space) * pct as u64 / 100;
                    let optimal = solve_p2(space, conj, cmax, Algorithm::CBoundaries);
                    let found = solve_p2_recorded(space, conj, cmax, algo, &obs);
                    (optimal.doi.value() - found.doi.value()).max(0.0)
                })
                .collect();
            rows.push(QualityRow {
                x: pct as f64,
                algorithm: algo.name(),
                quality_gap: mean(&gaps),
            });
            reports.push(
                RunReport::from_obs("fig14b", algo.name(), &obs)
                    .with_field("percent_supreme", pct as u64)
                    .with_field("k", k as u64)
                    .with_field("conj", format!("{conj:?}"))
                    .with_field("runs", spaces.len() as u64)
                    .with_field("mean_gap", mean(&gaps)),
            );
        }
    }
    rows
}

/// Figure 15: estimated vs measured execution time of the personalized
/// query integrating all `K` extracted preferences.
///
/// "Estimated" is the paper's Formula 11 (`b × Σ blocks`); "measured"
/// executes the constructed union/having query on the engine, charging the
/// same `b` per block actually read and adding the real CPU time — the
/// residual gap is exactly the group-by/union work the model neglects.
pub fn fig15(w: &Workload, ks: &[usize]) -> Vec<CostModelRow> {
    fig15_reported(w, ks, &mut Vec::new())
}

/// [`fig15`] collecting one [`RunReport`] per `K`; the executor and the
/// I/O meter feed the cell `Obs`, so each report carries the engine scan
/// counters and the physical `storage.blocks_read` totals.
pub fn fig15_reported(
    w: &Workload,
    ks: &[usize],
    reports: &mut Vec<RunReport>,
) -> Vec<CostModelRow> {
    let model = CostModel::new(&w.stats);
    let mut rows = Vec::new();
    for &k in ks {
        let obs = Arc::new(Obs::new());
        let mut est = Vec::new();
        let mut real = Vec::new();
        for (p, q) in w.pairs() {
            let (space, _) = w.space_recorded(p, q, k, true, &obs);
            let all: Vec<usize> = (0..space.k()).collect();
            let pq = construct(q, &space, &all).expect("extracted spaces carry paths");
            est.push(model.personalized_ms(&pq));
            let meter =
                IoMeter::with_recorder(model.ms_per_block(), Arc::clone(&obs) as Arc<dyn Recorder>);
            let before = span_secs(&obs, "engine.execute_personalized");
            cqp_engine::execute_personalized_recorded(&w.db, &pq, &meter, &*obs)
                .expect("workload queries execute");
            let cpu_secs = span_secs(&obs, "engine.execute_personalized") - before;
            real.push(meter.elapsed_ms() + cpu_secs * 1000.0);
        }
        rows.push(CostModelRow {
            k,
            estimated_ms: mean(&est),
            real_ms: mean(&real),
        });
        reports.push(
            RunReport::from_obs("fig15", "all-K personalized query", &obs)
                .with_field("k", k as u64)
                .with_field("runs", w.num_pairs() as u64)
                .with_field("mean_estimated_ms", mean(&est))
                .with_field("mean_real_ms", mean(&real)),
        );
    }
    rows
}

/// Table 1: solve all six CQP problems on the workload's first pair and
/// check each against exact branch-and-bound.
pub fn table1(w: &Workload, k: usize) -> Vec<ProblemRow> {
    table1_reported(w, k, &mut Vec::new())
}

/// [`table1`] collecting one [`RunReport`] for the whole table: each
/// problem solves inside its own `p<N>` span and flushes its transition
/// counters to the shared registry.
pub fn table1_reported(w: &Workload, k: usize, reports: &mut Vec<RunReport>) -> Vec<ProblemRow> {
    const PROBLEM_SPANS: [&str; 6] = ["p1", "p2", "p3", "p4", "p5", "p6"];
    let obs = Obs::new();
    let (p, q) = w.pairs().next().expect("non-empty workload");
    let (space, _) = w.space_recorded(p, q, k, true, &obs);
    let base_rows = space.base_rows;
    let cmax = w.scale.cmax_for(&space);
    let smin = 1.0;
    let smax = (base_rows * 0.25).max(2.0);
    let dmin = Doi::new(0.5);

    let specs: Vec<(usize, String, ProblemSpec)> = vec![
        (
            1,
            format!("MAX doi s.t. {smin:.0} <= size <= {smax:.0}"),
            ProblemSpec::p1(smin, smax),
        ),
        (
            2,
            format!("MAX doi s.t. cost <= {cmax}"),
            ProblemSpec::p2(cmax),
        ),
        (
            3,
            format!("MAX doi s.t. cost <= {cmax}, {smin:.0} <= size <= {smax:.0}"),
            ProblemSpec::p3(cmax, smin, smax),
        ),
        (
            4,
            format!("MIN cost s.t. doi >= {dmin}"),
            ProblemSpec::p4(dmin),
        ),
        (
            5,
            format!("MIN cost s.t. doi >= {dmin}, {smin:.0} <= size <= {smax:.0}"),
            ProblemSpec::p5(dmin, smin, smax),
        ),
        (
            6,
            format!("MIN cost s.t. {smin:.0} <= size <= {smax:.0}"),
            ProblemSpec::p6(smin, smax),
        ),
    ];

    let rows: Vec<ProblemRow> = specs
        .into_iter()
        .map(|(n, spec, problem)| {
            let (sol, _) = timed_span(&obs, PROBLEM_SPANS[n - 1], || {
                general_solve(&space, ConjModel::NoisyOr, &problem)
            });
            sol.instrument.flush_to(&obs);
            let exact =
                cqp_core::algorithms::branch_bound::solve(&space, ConjModel::NoisyOr, &problem);
            let matches_exact = sol.found == exact.found
                && match problem.objective {
                    cqp_core::Objective::MaxDoi => sol.doi == exact.doi,
                    cqp_core::Objective::MinCost => sol.cost_blocks == exact.cost_blocks,
                };
            ProblemRow {
                problem: n,
                spec,
                found: sol.found,
                doi: sol.doi.value(),
                cost_ms: sol.cost_blocks as f64,
                size_rows: sol.size_rows,
                prefs: sol.prefs.len(),
                matches_exact,
            }
        })
        .collect();
    reports.push(RunReport::from_obs("table1", "general_solve", &obs).with_field("k", k as u64));
    rows
}

/// Ablation: the paper's specialized algorithms vs the generic baselines
/// (simulated annealing, tabu, genetic) on time and quality at fixed `K`.
pub fn ablation_generic(w: &Workload, k: usize) -> Vec<(AlgoTimeRow, QualityRow)> {
    ablation_generic_reported(w, k, &mut Vec::new())
}

/// [`ablation_generic`] collecting one [`RunReport`] per algorithm.
pub fn ablation_generic_reported(
    w: &Workload,
    k: usize,
    reports: &mut Vec<RunReport>,
) -> Vec<(AlgoTimeRow, QualityRow)> {
    let spaces = spaces_at_k(w, k);
    let algos: Vec<Algorithm> = vec![
        Algorithm::CBoundaries,
        Algorithm::CMaxBounds,
        Algorithm::DHeurDoi,
        Algorithm::BranchBound,
        Algorithm::Annealing,
        Algorithm::Tabu,
        Algorithm::Genetic,
    ];
    let mut rows = Vec::new();
    for algo in algos {
        let obs = Obs::new();
        let mut secs = Vec::new();
        let mut gaps = Vec::new();
        let mut states = Vec::new();
        for space in &spaces {
            let optimal = solve_p2(
                space,
                ConjModel::NoisyOr,
                w.scale.cmax_for(space),
                Algorithm::CBoundaries,
            );
            let (sol, t) = solve_timed(
                &obs,
                space,
                ConjModel::NoisyOr,
                w.scale.cmax_for(space),
                algo,
            );
            secs.push(t);
            states.push(sol.instrument.states_examined as f64);
            gaps.push((optimal.doi.value() - sol.doi.value()).max(0.0));
        }
        reports.push(
            RunReport::from_obs("ablation_generic", algo.name(), &obs)
                .with_field("k", k as u64)
                .with_field("runs", spaces.len() as u64)
                .with_field("mean_seconds", mean(&secs))
                .with_field("mean_gap", mean(&gaps)),
        );
        rows.push((
            AlgoTimeRow {
                x: k as f64,
                algorithm: algo.name(),
                seconds: mean(&secs),
                states: mean(&states),
            },
            QualityRow {
                x: k as f64,
                algorithm: algo.name(),
                quality_gap: mean(&gaps),
            },
        ));
    }
    rows
}

/// Ablation: quality gaps under alternative conjunction models `r`
/// (Section 7.2.3's remark that a different model "would still exhibit the
/// same growing trends but might have resulted in larger differences").
pub fn ablation_doi_model(w: &Workload, ks: &[usize]) -> Vec<(String, Vec<QualityRow>)> {
    ablation_doi_model_reported(w, ks)
        .into_iter()
        .map(|(model, rows, _)| (model, rows))
        .collect()
}

/// [`ablation_doi_model`] returning the per-model [`RunReport`] lines too
/// (the lines keep `fig14a` as their experiment tag, qualified by the
/// `conj` field).
pub fn ablation_doi_model_reported(
    w: &Workload,
    ks: &[usize],
) -> Vec<(String, Vec<QualityRow>, Vec<RunReport>)> {
    [ConjModel::NoisyOr, ConjModel::Max, ConjModel::Quadrature]
        .into_iter()
        .map(|conj| {
            let mut reports = Vec::new();
            let rows = fig14a_reported(w, ks, conj, &mut reports);
            (format!("{conj:?}"), rows, reports)
        })
        .collect()
}

/// Ablation: generic-baseline tuning — how the annealing step budget
/// trades time for quality (supports the Related Work claim that generic
/// methods need far more work for comparable quality).
pub fn ablation_annealing_budget(w: &Workload, k: usize, budgets: &[usize]) -> Vec<AlgoTimeRow> {
    ablation_annealing_budget_reported(w, k, budgets, &mut Vec::new())
}

/// [`ablation_annealing_budget`] collecting one [`RunReport`] per budget.
pub fn ablation_annealing_budget_reported(
    w: &Workload,
    k: usize,
    budgets: &[usize],
    reports: &mut Vec<RunReport>,
) -> Vec<AlgoTimeRow> {
    let spaces = spaces_at_k(w, k);
    let mut rows = Vec::new();
    for &steps in budgets {
        let obs = Obs::new();
        let mut secs = Vec::new();
        let mut gaps = Vec::new();
        for space in &spaces {
            let optimal = solve_p2(
                space,
                ConjModel::NoisyOr,
                w.scale.cmax_for(space),
                Algorithm::CBoundaries,
            );
            let cfg = generic::annealing::AnnealingConfig {
                steps,
                ..Default::default()
            };
            let (sol, t) = timed_span(&obs, "SimAnnealing", || {
                generic::annealing::solve_p2_with(
                    space,
                    ConjModel::NoisyOr,
                    w.scale.cmax_for(space),
                    0xC0FFEE,
                    cfg,
                )
            });
            sol.instrument.flush_to(&obs);
            secs.push(t);
            gaps.push((optimal.doi.value() - sol.doi.value()).max(0.0));
        }
        rows.push(AlgoTimeRow {
            x: steps as f64,
            algorithm: "SimAnnealing",
            seconds: mean(&secs),
            states: mean(&gaps) * 1e7, // reuse: gap ×10⁷ in the states column
        });
        reports.push(
            RunReport::from_obs("ablation_annealing_budget", "SimAnnealing", &obs)
                .with_field("steps", steps as u64)
                .with_field("runs", spaces.len() as u64)
                .with_field("mean_seconds", mean(&secs))
                .with_field("mean_gap", mean(&gaps)),
        );
    }
    rows
}

/// A cost-model robustness point: one block capacity.
#[derive(Debug, Clone)]
pub struct BlockSizeRow {
    /// Tuples per block.
    pub block_capacity: usize,
    /// Estimated execution time of the all-K personalized query (ms).
    pub estimated_ms: f64,
    /// Simulated I/O actually charged by the executor (ms).
    pub measured_io_ms: f64,
    /// Quality gap of C-MAXBOUNDS vs the exact optimum at 50% Supreme.
    pub heuristic_gap: f64,
}

/// Ablation: the paper's cost model counts *blocks*, so its absolute
/// numbers scale with the page size — but the block-level identity
/// (estimate = blocks read) and the algorithms' relative behaviour must
/// hold at any capacity. Sweeps the tuples-per-block knob.
pub fn ablation_block_size(capacities: &[usize], k: usize) -> Vec<BlockSizeRow> {
    ablation_block_size_reported(capacities, k, &mut Vec::new())
}

/// [`ablation_block_size`] collecting one [`RunReport`] per capacity; the
/// executor feeds the cell `Obs` so `storage.blocks_read` shrinks as the
/// block grows, while the row counters stay put.
pub fn ablation_block_size_reported(
    capacities: &[usize],
    k: usize,
    reports: &mut Vec<RunReport>,
) -> Vec<BlockSizeRow> {
    use cqp_core::construct::construct;
    capacities
        .iter()
        .map(|&cap| {
            let obs = Arc::new(Obs::new());
            let scale = crate::harness::Scale {
                db: cqp_datagen::MovieDbConfig {
                    block_capacity: cap,
                    ..cqp_datagen::MovieDbConfig::tiny(42)
                },
                profiles: 1,
                queries: 1,
                cmax_blocks: 0,
                cmax_supreme_frac: Some(0.5),
                name: "block-size-ablation",
            };
            let w = crate::harness::build_workload(&scale);
            let (p, q) = w.pairs().next().expect("non-empty workload");
            let (space, _) = w.space_recorded(p, q, k, true, &obs);
            let model = CostModel::new(&w.stats);
            let all: Vec<usize> = (0..space.k()).collect();
            let pq = construct(q, &space, &all).expect("extracted spaces carry paths");
            let meter =
                IoMeter::with_recorder(model.ms_per_block(), Arc::clone(&obs) as Arc<dyn Recorder>);
            cqp_engine::execute_personalized_recorded(&w.db, &pq, &meter, &*obs)
                .expect("workload queries execute");
            let cmax = w.scale.cmax_for(&space);
            let exact = solve_p2_recorded(
                &space,
                ConjModel::NoisyOr,
                cmax,
                Algorithm::CBoundaries,
                &*obs,
            );
            let heur = solve_p2_recorded(
                &space,
                ConjModel::NoisyOr,
                cmax,
                Algorithm::CMaxBounds,
                &*obs,
            );
            let row = BlockSizeRow {
                block_capacity: cap,
                estimated_ms: model.personalized_ms(&pq),
                measured_io_ms: meter.elapsed_ms(),
                heuristic_gap: (exact.doi.value() - heur.doi.value()).max(0.0),
            };
            reports.push(
                RunReport::from_obs("ablation_block_size", "block-capacity sweep", &obs)
                    .with_field("block_capacity", cap as u64)
                    .with_field("k", k as u64),
            );
            row
        })
        .collect()
}
