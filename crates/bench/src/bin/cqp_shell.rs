//! `cqp-shell` — an interactive personalization shell.
//!
//! Loads the synthetic movie database plus a profile and personalizes every
//! SQL query you type, under a search context you can change on the fly:
//!
//! ```text
//! cargo run --release -p cqp-bench --bin cqp-shell
//! cqp> \problem p2 150
//! cqp> select title from MOVIE
//! ...
//! cqp> \algo d_heurdoi
//! cqp> \soft select title from MOVIE        -- ranked, any-preference match
//! cqp> \quit
//! ```
//!
//! Commands:
//!
//! * `\problem p1 <smin> <smax>` / `p2 <cmax>` / `p3 <cmax> <smin> <smax>` /
//!   `p4 <dmin>` / `p5 <dmin> <smin> <smax>` / `p6 <smin> <smax>`
//! * `\algo <exhaustive|c_boundaries|c_maxbounds|d_maxdoi|d_singlemaxdoi|d_heurdoi|branch_bound>`
//! * `\profile` — print the loaded profile
//! * `\load <path>` — load a profile file (`cqp-profile v1` format)
//! * `\k <n>` — cap the number of extracted preferences
//! * `\soft <query>` — execute with ranked any-match semantics
//! * `\explain <query>` — show the personalized execution plan
//! * `\trace <query>` — personalize + execute under the tracer, then print
//!   the nested span tree and the metrics registry
//! * `\serve [n]` — start the HTTP serving layer on an ephemeral port and
//!   drive `n` requests through the closed-loop load generator
//! * `\help`, `\quit`
//!
//! Reads stdin; suitable for piping scripts in tests.

use cqp_core::{Algorithm, CqpSystem, ProblemSpec, SolverConfig};
use cqp_datagen::{generate_movie_db, generate_movie_profile, MovieDbConfig, ProfileGenConfig};
use cqp_engine::parse_query;
use cqp_obs::{Obs, Recorder};
use cqp_prefs::{Doi, Profile};
use std::io::{BufRead, Write};
use std::sync::Arc;

fn main() {
    let db_cfg = MovieDbConfig::tiny(42);
    let mut db = generate_movie_db(&db_cfg);
    let mut profile = generate_movie_profile(
        db.catalog(),
        &ProfileGenConfig {
            n_directors: db_cfg.directors,
            n_actors: db_cfg.actors,
            ..ProfileGenConfig::tiny(7)
        },
    );
    let mut problem = ProblemSpec::p2(100);
    let mut config = SolverConfig::default();

    println!(
        "cqp-shell — movie database: {} rows / {} blocks; profile `{}` ({} preferences)",
        db.total_rows(),
        db.total_blocks(),
        profile.name,
        profile.num_preferences()
    );
    println!(
        "type \\help for commands; queries are personalized with {:?}",
        problem.kind()
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("cqp> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix('\\') {
            let mut parts = cmd.split_whitespace();
            match parts.next().unwrap_or("") {
                "quit" | "q" | "exit" => break,
                "help" => help(),
                "profile" => {
                    print!("{}", cqp_prefs::to_text(&profile, db.catalog()));
                }
                "loadcsv" => {
                    let rel = parts.next();
                    let path = parts.next();
                    match (rel, path) {
                        (Some(rel), Some(path)) => match db.catalog().relation_id(rel) {
                            Ok(rid) => match std::fs::read_to_string(path) {
                                Ok(text) => match cqp_storage::load_table(&mut db, rid, &text) {
                                    Ok(n) => println!(
                                        "loaded {n} row(s) into {rel} \
                                                 (statistics refresh on next query)"
                                    ),
                                    Err(e) => println!("csv error: {e}"),
                                },
                                Err(e) => println!("cannot read {path}: {e}"),
                            },
                            Err(e) => println!("{e}"),
                        },
                        _ => println!("usage: \\loadcsv <RELATION> <path>"),
                    }
                }
                "load" => match parts.next() {
                    Some(path) => match std::fs::read_to_string(path) {
                        Ok(text) => match cqp_prefs::from_text(&text, db.catalog()) {
                            Ok(p) => {
                                println!(
                                    "loaded `{}` ({} preferences)",
                                    p.name,
                                    p.num_preferences()
                                );
                                profile = p;
                            }
                            Err(e) => println!("profile error: {e}"),
                        },
                        Err(e) => println!("cannot read {path}: {e}"),
                    },
                    None => println!("usage: \\load <path>"),
                },
                "k" => match parts.next().and_then(|s| s.parse::<usize>().ok()) {
                    Some(k) if k > 0 => {
                        config.extract.max_k = k;
                        println!("K capped at {k}");
                    }
                    _ => println!("usage: \\k <positive integer>"),
                },
                "threads" => match parts.next().and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => {
                        config.parallelism = cqp_core::solver::Parallelism::new(n);
                        println!(
                            "threads: {n} (partitioned exact searches and \\trace \
                             run on a {n}-worker pool)"
                        );
                    }
                    _ => println!("usage: \\threads <positive integer>"),
                },
                "algo" => match parts.next().and_then(parse_algo) {
                    Some(a) => {
                        config.algorithm = a;
                        println!("algorithm: {}", a.name());
                    }
                    None => println!(
                        "usage: \\algo <exhaustive|c_boundaries|c_maxbounds|d_maxdoi|\
                         d_singlemaxdoi|d_heurdoi|branch_bound>"
                    ),
                },
                "problem" => match parse_problem(&mut parts) {
                    Some(p) => {
                        problem = p;
                        println!("problem: {:?} {:?}", problem.kind(), problem.constraints);
                    }
                    None => println!("usage: \\problem p2 <cmax> | p1 <smin> <smax> | …"),
                },
                "explain" => {
                    let rest: String = parts.collect::<Vec<_>>().join(" ");
                    let system = CqpSystem::new(&db);
                    match parse_query(&rest, db.catalog()) {
                        Ok(q) => match system.personalize(&q, &profile, &problem, &config) {
                            Ok(outcome) => {
                                match cqp_engine::explain_personalized(
                                    db.catalog(),
                                    system.stats(),
                                    &outcome.query,
                                ) {
                                    Ok(plan) => print!("{}", plan.render()),
                                    Err(e) => println!("explain error: {e}"),
                                }
                            }
                            Err(e) => println!("personalization error: {e}"),
                        },
                        Err(e) => println!("parse error: {e}"),
                    }
                }
                "soft" => {
                    let rest: String = parts.collect::<Vec<_>>().join(" ");
                    run_query(&db, &profile, &problem, &config, &rest, true);
                }
                "trace" => {
                    let rest: String = parts.collect::<Vec<_>>().join(" ");
                    trace_query(&db, &profile, &problem, &config, &rest);
                }
                "serve" => {
                    let n = parts
                        .next()
                        .and_then(|s| s.parse::<usize>().ok())
                        .unwrap_or(8);
                    serve_demo(&db, &profile, n);
                }
                other => println!("unknown command \\{other}; try \\help"),
            }
        } else {
            run_query(&db, &profile, &problem, &config, line, false);
        }
    }
    println!("bye");
}

fn parse_algo(s: &str) -> Option<Algorithm> {
    // Same tokens the serving API accepts — one vocabulary everywhere.
    Algorithm::by_name(s)
}

/// `\serve [n]` — spins up the HTTP serving layer on an ephemeral port
/// over a copy of the shell's database, stores the current profile as user
/// `me`, drives `n` personalize requests through the closed-loop load
/// generator, and prints what the clients saw.
fn serve_demo(db: &cqp_storage::Database, profile: &Profile, requests: usize) {
    let mut handle =
        match cqp_server::start(Arc::new(db.clone()), cqp_server::ServerConfig::default()) {
            Ok(h) => h,
            Err(e) => {
                println!("serve error: {e}");
                return;
            }
        };
    handle.state().store.put("me", profile.clone());
    let clients = 2usize;
    let load = cqp_server::LoadConfig {
        clients,
        requests_per_client: requests.div_ceil(clients).max(1),
        users: vec!["me".to_string()],
        queries: vec!["SELECT title FROM MOVIE".to_string()],
        ..Default::default()
    };
    println!(
        "serving on http://{} — driving {requests} request(s)",
        handle.addr()
    );
    match cqp_server::run_load(handle.addr(), &load) {
        Ok(report) => println!("{}", report.to_json().render()),
        Err(e) => println!("load error: {e}"),
    }
    handle.stop();
}

fn parse_problem<'a>(parts: &mut impl Iterator<Item = &'a str>) -> Option<ProblemSpec> {
    let kind = parts.next()?;
    let mut num = || parts.next().and_then(|s| s.parse::<f64>().ok());
    match kind {
        "p1" => Some(ProblemSpec::p1(num()?, num()?)),
        "p2" => Some(ProblemSpec::p2(num()? as u64)),
        "p3" => Some(ProblemSpec::p3(num()? as u64, num()?, num()?)),
        "p4" => Some(ProblemSpec::p4(Doi::clamped(num()?))),
        "p5" => Some(ProblemSpec::p5(Doi::clamped(num()?), num()?, num()?)),
        "p6" => Some(ProblemSpec::p6(num()?, num()?)),
        _ => None,
    }
}

fn run_query(
    db: &cqp_storage::Database,
    profile: &Profile,
    problem: &ProblemSpec,
    config: &SolverConfig,
    sql: &str,
    soft: bool,
) {
    // Statistics are re-analyzed here so \loadcsv-ed data is visible.
    let system = CqpSystem::new(db);
    let query = match parse_query(sql, db.catalog()) {
        Ok(q) => q,
        Err(e) => {
            println!("parse error: {e}");
            return;
        }
    };
    match system.personalize(&query, profile, problem, config) {
        Ok(outcome) => {
            println!(
                "{} preference(s); doi {:.3}; est. cost {} ms; est. size {:.1}",
                outcome.solution.prefs.len(),
                outcome.solution.doi.value(),
                outcome.solution.cost_blocks,
                outcome.solution.size_rows
            );
            println!("SQL: {}", outcome.sql);
            if soft {
                let space = system.preference_space(&query, profile, config);
                match system.execute_ranked(&outcome, &space, 1, 1.0) {
                    Ok(rows) => {
                        println!("{} row(s), ranked:", rows.len());
                        for r in rows.iter().take(10) {
                            let vals: Vec<String> = r.row.iter().map(ToString::to_string).collect();
                            println!("  [doi {:.3}] {}", r.doi, vals.join(", "));
                        }
                        if rows.len() > 10 {
                            println!("  … and {} more", rows.len() - 10);
                        }
                    }
                    Err(e) => println!("execution error: {e}"),
                }
            } else {
                match system.execute(&outcome.query, 1.0) {
                    Ok((rows, blocks, ms)) => {
                        println!(
                            "{} row(s) in {ms:.0} ms simulated I/O ({blocks} blocks):",
                            rows.len()
                        );
                        for row in rows.rows.iter().take(10) {
                            let vals: Vec<String> = row.iter().map(ToString::to_string).collect();
                            println!("  {}", vals.join(", "));
                        }
                        if rows.len() > 10 {
                            println!("  … and {} more", rows.len() - 10);
                        }
                    }
                    Err(e) => println!("execution error: {e}"),
                }
            }
        }
        Err(e) => println!("personalization error: {e}"),
    }
}

/// `\trace <query>`: the full personalize-and-execute pipeline under an
/// [`Obs`], followed by the nested span tree (solver phases, engine
/// execution, storage reads) and the metrics registry.
fn trace_query(
    db: &cqp_storage::Database,
    profile: &Profile,
    problem: &ProblemSpec,
    config: &SolverConfig,
    sql: &str,
) {
    let obs = Arc::new(Obs::new());
    let query = match parse_query(sql, db.catalog()) {
        Ok(q) => q,
        Err(e) => {
            println!("parse error: {e}");
            return;
        }
    };
    // With \threads N > 1 the request goes through the batch driver, so the
    // pipeline spans nest under a `workerNN` subtree — the tracer keeps one
    // span stack per OS thread, so concurrent workers can never interleave
    // into each other's subtree.
    let (solution, personalized) = if config.parallelism.threads > 1 {
        let driver =
            cqp_core::batch::BatchDriver::new(Arc::new(db.clone()), config.parallelism.threads);
        let request = cqp_core::batch::BatchRequest {
            query,
            profile: profile.clone(),
            problem: *problem,
            config: config.clone(),
        };
        let (mut results, stats) = driver.run_recorded(vec![request], &*obs);
        match results.remove(0) {
            Ok(item) => {
                println!(
                    "batch of 1 on {} worker(s): {:.1} req/s, p50 {} us",
                    stats.threads, stats.requests_per_sec, stats.p50_us
                );
                (item.solution, item.query)
            }
            Err(e) => {
                println!("personalization error: {e}");
                return;
            }
        }
    } else {
        let system = CqpSystem::new_recorded(db, &*obs);
        match system.personalize_recorded(&query, profile, problem, config, &*obs) {
            Ok(o) => (o.solution, o.query),
            Err(e) => {
                println!("personalization error: {e}");
                return;
            }
        }
    };
    let system = CqpSystem::new_recorded(db, &*obs);
    match system.execute_recorded(&personalized, 1.0, Arc::clone(&obs) as Arc<dyn Recorder>) {
        Ok((rows, blocks, ms)) => {
            println!(
                "{} preference(s); doi {:.3}; {} row(s) in {ms:.0} ms simulated I/O ({blocks} blocks)",
                solution.prefs.len(),
                solution.doi.value(),
                rows.len()
            );
        }
        Err(e) => println!("execution error: {e}"),
    }
    println!("\nspan tree:");
    print!("{}", obs.render_tree());
    let snap = obs.snapshot();
    println!("\ncounters:");
    for (name, value) in &snap.counters {
        println!("  {name:<32} {value}");
    }
    if !snap.gauges.is_empty() {
        println!("gauges:");
        for (name, value) in &snap.gauges {
            println!("  {name:<32} {value}");
        }
    }
    if !snap.histograms.is_empty() {
        println!("histograms:");
        for (name, h) in &snap.histograms {
            println!(
                "  {name:<32} count={} min={} mean={:.1} max={}",
                h.count,
                h.min,
                h.mean(),
                h.max
            );
        }
    }
}

fn help() {
    println!(
        "\\problem p1 <smin> <smax> | p2 <cmax> | p3 <cmax> <smin> <smax> |\n\
         \\        p4 <dmin> | p5 <dmin> <smin> <smax> | p6 <smin> <smax>\n\
         \\algo <exhaustive|c_boundaries|c_maxbounds|d_maxdoi|d_singlemaxdoi|d_heurdoi|branch_bound>\n\
         \\k <n>            cap the number of extracted preferences\n\
         \\profile          print the loaded profile\n\
         \\load <path>      load a cqp-profile v1 file\n\
         \\soft <query>     personalize, then rank rows matching any preference\n\
         \\threads <n>      worker pool width for exact searches and \\trace\n\
         \\trace <query>    personalize + execute, print span tree and metrics\n\
         \\serve [n]        start the HTTP serving layer, drive n requests, report\n\
         <query>           personalize and execute (strict conjunction)\n\
         \\quit"
    );
}
