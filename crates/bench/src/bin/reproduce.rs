//! `reproduce` — regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce <experiment> [--scale tiny|default|paper] [--out DIR] [--full-k]
//!           [--threads N]
//!
//! experiments:
//!   all       every experiment below
//!   fig12a    optimization time vs K
//!   fig12b    preference-selection time vs K
//!   fig12c    optimization time vs cmax (% Supreme Cost)   [incl. fig12d zoom]
//!   fig13a    memory vs K
//!   fig13b    memory vs cmax
//!   fig14a    quality vs K
//!   fig14b    quality vs cmax
//!   fig15     cost-model validation (estimated vs real)
//!   table1    the six CQP problems
//!   table2    the Table 2/3 worked example (D/C/S vectors, state groups)
//!   fig6      the Figure 6 boundary trace (cmax = 185)
//!   fig8      the Figure 8 maximal-boundary trace (cmax = 185)
//!   ablate    generic baselines, doi-model, annealing-budget ablations
//!   bench_par 1-thread vs N-thread batch driver + fig12 grid (BENCH_parallel.json)
//!   resilience seeded fault-injection batch + deadline sweep (degradation rates)
//!   serve     closed-loop socket load against cqp-server (BENCH_serve.json)
//!   obs       tracing overhead off/sampled/100% + captured degraded trace +
//!             Chrome trace dump (BENCH_obs.json, trace_chrome.json)
//!   recovery  WAL crash differential + drain quantiles + breaker trips
//!             (BENCH_recovery.json)
//!   cache     cache-off vs cache-on closed-loop load over a Zipf-skewed
//!             user mix with live profile mutations (BENCH_cache.json)
//!   cluster   distributed tier: SIGKILL-failover write-loss audit against
//!             child serverd pairs + divergent-vs-uniform replica routing
//!             + ring balance (BENCH_cluster.json)
//!   partition seeded split-brain and nemesis-churn schedules against a
//!             nemesis-fronted cluster: epoch fencing on the stale face,
//!             zero lost acked writes by the consistency checker
//!             (BENCH_partition.json)
//!
//! --threads N fans the fig12 grid cells and the batch driver across N
//! work-stealing workers (default 1 = sequential).
//! ```

use cqp_bench::experiments::{self, FIG12_ALGORITHMS};
use cqp_bench::{build_workload, csvout, harness::Scale, Workload};
use cqp_core::algorithms::{c_boundaries, c_maxbounds, Algorithm};
use cqp_core::batch::{BatchDriver, BatchRequest, RetryPolicy};
use cqp_core::budget::Budget;
use cqp_core::spaces::SpaceView;
use cqp_core::{Instrument, ProblemSpec, SolverConfig};
use cqp_obs::{Json, Obs, RunReport};
use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::{ExtractConfig, PrefParams, PreferenceSpace};
use cqp_storage::{FaultMode, FaultPlan};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_owned();
    let mut scale = Scale::default_scale();
    let mut out = PathBuf::from("results");
    let mut full_k = false;
    let mut threads = 1usize;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::by_name(args.get(i).map(String::as_str).unwrap_or(""))
                    .unwrap_or_else(|| die("unknown scale (tiny|default|paper)"));
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).unwrap_or_else(|| die("--out needs a path")));
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
            }
            "--full-k" => full_k = true,
            other if !other.starts_with('-') => experiment = other.to_owned(),
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    // The paper sweeps K in [10, 40]; the exact doi-space algorithms are
    // exponential in practice (that is Figure 12's point), so the default
    // caps their K at 20 unless --full-k is passed.
    let ks: Vec<usize> = if full_k {
        vec![10, 20, 30, 40]
    } else {
        vec![10, 13, 16, 20]
    };
    let percents: Vec<u32> = (1..=10).map(|i| i * 10).collect();

    println!("== CQP reproduction — scale `{}` ==", scale.name);
    let cmax_desc = match scale.cmax_supreme_frac {
        Some(f) => format!("{:.0}% of Supreme Cost per space", f * 100.0),
        None => format!("{} blocks", scale.cmax_blocks),
    };
    println!(
        "   ({} profiles × {} queries per point; cmax = {cmax_desc}; K sweep {:?})",
        scale.profiles, scale.queries, ks
    );
    let w = build_workload(&scale);
    println!(
        "   database: {} rows / {} blocks across {} relations\n",
        w.db.total_rows(),
        w.db.total_blocks(),
        w.db.catalog().len()
    );

    let run_all = experiment == "all";
    let mut ran = false;
    if run_all || experiment == "fig12a" || experiment == "fig12" {
        fig12a(&w, &ks, full_k, threads, &out);
        ran = true;
    }
    if run_all || experiment == "fig12b" || experiment == "fig12" {
        fig12b(&w, &ks, &out);
        ran = true;
    }
    if run_all || experiment == "fig12c" || experiment == "fig12d" || experiment == "fig12" {
        fig12cd(&w, &percents, full_k, threads, &out);
        ran = true;
    }
    if run_all || experiment == "fig13a" {
        fig13a(&w, &ks, full_k, &out);
        ran = true;
    }
    if run_all || experiment == "fig13b" {
        fig13b(&w, &percents, full_k, &out);
        ran = true;
    }
    if run_all || experiment == "fig14a" {
        fig14a(&w, &ks, &out);
        ran = true;
    }
    if run_all || experiment == "fig14b" {
        fig14b(&w, &percents, &out);
        ran = true;
    }
    if run_all || experiment == "fig15" {
        fig15(&w, &ks, &out);
        ran = true;
    }
    if run_all || experiment == "table1" {
        table1(&w, &out);
        ran = true;
    }
    if run_all || experiment == "table2" {
        table2_example();
        ran = true;
    }
    if run_all || experiment == "fig6" {
        fig6_trace();
        ran = true;
    }
    if run_all || experiment == "fig8" {
        fig8_trace();
        ran = true;
    }
    if run_all || experiment == "ablate" {
        ablations(&w, &ks, &out);
        ran = true;
    }
    if run_all || experiment == "bench_par" {
        bench_par(&w, &ks, full_k, threads, &out);
        ran = true;
    }
    if run_all || experiment == "resilience" {
        resilience(&w, threads, &out);
        ran = true;
    }
    if run_all || experiment == "serve" {
        serve(&w, threads, &out);
        ran = true;
    }
    if run_all || experiment == "obs" {
        obs_experiment(&w, threads, &out);
        ran = true;
    }
    if run_all || experiment == "recovery" {
        recovery(&w, &out);
        ran = true;
    }
    if run_all || experiment == "cache" {
        cache_experiment(&w, threads, &out);
        ran = true;
    }
    if run_all || experiment == "cluster" {
        cluster_experiment(&out);
        ran = true;
    }
    if run_all || experiment == "partition" {
        partition_experiment(&out);
        ran = true;
    }
    if !ran {
        die(&format!("unknown experiment `{experiment}`"));
    }
    println!(
        "\nCSV and .report.jsonl run-reports written under {}",
        out.display()
    );
}

fn die(msg: &str) -> ! {
    eprintln!("reproduce: {msg}");
    std::process::exit(2)
}

/// Writes the run-report lines for one experiment next to its CSV, as
/// `<name>.report.jsonl` (truncated first, so reruns don't accumulate).
fn write_reports(out: &Path, name: &str, reports: &[RunReport]) {
    std::fs::create_dir_all(out).expect("results dir");
    let path = out.join(format!("{name}.report.jsonl"));
    let _ = std::fs::remove_file(&path);
    for r in reports {
        r.append_to(&path).expect("report write");
    }
}

/// Algorithms tractable at every K; the exact doi-space ones are capped
/// unless --full-k (their blow-up IS the paper's headline result, but at
/// K=40 it can take minutes — Figure 12(a) reports ~900 s in 2005).
fn algos_for(k: usize, full_k: bool) -> Vec<Algorithm> {
    if full_k || k <= 16 {
        FIG12_ALGORITHMS.to_vec()
    } else {
        vec![
            Algorithm::CBoundaries,
            Algorithm::CMaxBounds,
            Algorithm::DHeurDoi,
        ]
    }
}

fn print_time_series(title: &str, rows: &[experiments::AlgoTimeRow], x_label: &str) {
    println!("--- {title} ---");
    println!(
        "{x_label:>6}  {:<16} {:>12} {:>12}",
        "algorithm", "seconds", "states"
    );
    for r in rows {
        println!(
            "{:>6}  {:<16} {:>12.6} {:>12.1}",
            r.x, r.algorithm, r.seconds, r.states
        );
    }
    println!();
}

/// The fig12a grid as explicit `(K, algorithm)` cells, preserving the
/// sequential row order.
fn fig12a_cells(ks: &[usize], full_k: bool) -> Vec<(usize, Algorithm)> {
    ks.iter()
        .flat_map(|&k| algos_for(k, full_k).into_iter().map(move |a| (k, a)))
        .collect()
}

fn fig12a(w: &Workload, ks: &[usize], full_k: bool, threads: usize, out: &Path) {
    let mut reports = Vec::new();
    let rows = experiments::fig12a_parallel(w, &fig12a_cells(ks, full_k), threads, &mut reports);
    print_time_series("Figure 12(a): CQP optimization time vs K", &rows, "K");
    csvout::write_times(out, "fig12a", &rows).expect("CSV write");
    write_reports(out, "fig12a", &reports);
}

fn fig12b(w: &Workload, ks: &[usize], out: &Path) {
    let mut reports = Vec::new();
    let rows = experiments::fig12b_reported(w, ks, &mut reports);
    println!("--- Figure 12(b): Preference-Space time vs K ---");
    println!("{:>6}  {:<16} {:>12}", "K", "variant", "seconds");
    for r in &rows {
        println!("{:>6}  {:<16} {:>12.6}", r.k, r.variant, r.seconds);
    }
    println!();
    csvout::write_prefsel(out, "fig12b", &rows).expect("CSV write");
    write_reports(out, "fig12b", &reports);
}

fn fig12cd(w: &Workload, percents: &[u32], full_k: bool, threads: usize, out: &Path) {
    let k = 20;
    let mut reports = Vec::new();
    let rows =
        experiments::fig12c_parallel(w, k, percents, &algos_for(k, full_k), threads, &mut reports);
    print_time_series(
        "Figure 12(c): optimization time vs cmax (% Supreme Cost), K=20",
        &rows,
        "%",
    );
    csvout::write_times(out, "fig12c", &rows).expect("CSV write");
    write_reports(out, "fig12c", &reports);
    // Figure 12(d) is the zoom on the two fast algorithms.
    let zoom: Vec<_> = rows
        .iter()
        .filter(|r| r.algorithm == "C_MaxBounds" || r.algorithm == "D_HeurDoi")
        .cloned()
        .collect();
    let zoom_reports: Vec<_> = reports
        .iter()
        .filter(|r| r.label == "C_MaxBounds" || r.label == "D_HeurDoi")
        .cloned()
        .collect();
    print_time_series("Figure 12(d): zoom on C_MaxBounds / D_HeurDoi", &zoom, "%");
    csvout::write_times(out, "fig12d", &zoom).expect("CSV write");
    write_reports(out, "fig12d", &zoom_reports);
}

fn fig13a(w: &Workload, ks: &[usize], full_k: bool, out: &Path) {
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for &k in ks {
        rows.extend(experiments::fig13a_reported(
            w,
            &[k],
            &algos_for(k, full_k),
            &mut reports,
        ));
    }
    println!("--- Figure 13(a): memory requirements vs K ---");
    println!("{:>6}  {:<16} {:>12}", "K", "algorithm", "KBytes");
    for r in &rows {
        println!("{:>6}  {:<16} {:>12.3}", r.x, r.algorithm, r.kbytes);
    }
    println!();
    csvout::write_memory(out, "fig13a", &rows).expect("CSV write");
    write_reports(out, "fig13a", &reports);
}

fn fig13b(w: &Workload, percents: &[u32], full_k: bool, out: &Path) {
    let k = 20;
    let mut reports = Vec::new();
    let rows = experiments::fig13b_reported(w, k, percents, &algos_for(k, full_k), &mut reports);
    println!("--- Figure 13(b): memory requirements vs cmax (% Supreme Cost) ---");
    println!("{:>6}  {:<16} {:>12}", "%", "algorithm", "KBytes");
    for r in &rows {
        println!("{:>6}  {:<16} {:>12.3}", r.x, r.algorithm, r.kbytes);
    }
    println!();
    csvout::write_memory(out, "fig13b", &rows).expect("CSV write");
    write_reports(out, "fig13b", &reports);
}

fn print_quality(title: &str, rows: &[experiments::QualityRow], x_label: &str) {
    println!("--- {title} ---");
    println!("{x_label:>6}  {:<16} {:>16}", "algorithm", "gap (x1e-7)");
    for r in rows {
        println!(
            "{:>6}  {:<16} {:>16.3}",
            r.x,
            r.algorithm,
            r.quality_gap * 1e7
        );
    }
    println!();
}

fn fig14a(w: &Workload, ks: &[usize], out: &Path) {
    let mut reports = Vec::new();
    let rows = experiments::fig14a_reported(w, ks, ConjModel::NoisyOr, &mut reports);
    print_quality("Figure 14(a): quality gap vs K", &rows, "K");
    csvout::write_quality(out, "fig14a", &rows).expect("CSV write");
    write_reports(out, "fig14a", &reports);
}

fn fig14b(w: &Workload, percents: &[u32], out: &Path) {
    let mut reports = Vec::new();
    let rows = experiments::fig14b_reported(w, 20, percents, ConjModel::NoisyOr, &mut reports);
    print_quality(
        "Figure 14(b): quality gap vs cmax (% Supreme Cost)",
        &rows,
        "%",
    );
    csvout::write_quality(out, "fig14b", &rows).expect("CSV write");
    write_reports(out, "fig14b", &reports);
}

fn fig15(w: &Workload, ks: &[usize], out: &Path) {
    let mut reports = Vec::new();
    let rows = experiments::fig15_reported(w, ks, &mut reports);
    println!("--- Figure 15: cost-model validation ---");
    println!("{:>6} {:>16} {:>16}", "K", "estimated (ms)", "real (ms)");
    for r in &rows {
        println!("{:>6} {:>16.2} {:>16.2}", r.k, r.estimated_ms, r.real_ms);
    }
    println!();
    csvout::write_costmodel(out, "fig15", &rows).expect("CSV write");
    write_reports(out, "fig15", &reports);
}

fn table1(w: &Workload, out: &Path) {
    let mut reports = Vec::new();
    let rows = experiments::table1_reported(w, 20, &mut reports);
    println!("--- Table 1: the six CQP problems (K=20, first pair) ---");
    for r in &rows {
        println!(
            "P{}: {:<55} found={} doi={:.4} cost={:.0}ms size={:.1} |PU|={} exact-match={}",
            r.problem, r.spec, r.found, r.doi, r.cost_ms, r.size_rows, r.prefs, r.matches_exact
        );
    }
    println!();
    csvout::write_problems(out, "table1", &rows).expect("CSV write");
    write_reports(out, "table1", &reports);
}

/// The worked example of Tables 2 and 3.
fn table2_example() {
    println!("--- Tables 2/3: worked example ---");
    let space = PreferenceSpace::synthetic(
        vec![
            PrefParams {
                doi: Doi::new(0.5),
                cost_blocks: 10,
                size_factor: 0.3,
            },
            PrefParams {
                doi: Doi::new(0.8),
                cost_blocks: 5,
                size_factor: 0.2,
            },
            PrefParams {
                doi: Doi::new(0.7),
                cost_blocks: 12,
                size_factor: 1.0,
            },
        ],
        10.0,
        0,
    );
    println!(
        "P (by decreasing doi): doi={:?}",
        (0..3).map(|i| space.doi(i).value()).collect::<Vec<_>>()
    );
    println!("C (by decreasing cost): {:?}", space.c);
    println!("S (by increasing size): {:?}", space.s);
    println!("(paper Table 2: D = {{2,3,1}}, C = {{3,1,2}}, S = {{2,1,3}} over p-numbers)");
    // Table 3: groups of states for K = 4.
    println!("Table 3 state groups for K=4:");
    for size in 1..=4u32 {
        let mut states = Vec::new();
        for mask in 1u32..16 {
            if mask.count_ones() == size {
                let s: cqp_core::State = (0..4u16).filter(|i| mask & (1 << i) != 0).collect();
                states.push(s.to_string());
            }
        }
        println!("  group {size}: {}", states.join(" "));
    }
    println!();
}

fn fig6_fixture() -> PreferenceSpace {
    let costs = [120u64, 80, 60, 40, 30];
    let dois = [0.9, 0.8, 0.7, 0.6, 0.5];
    PreferenceSpace::synthetic(
        (0..5)
            .map(|i| PrefParams {
                doi: Doi::new(dois[i]),
                cost_blocks: costs[i],
                size_factor: 0.5,
            })
            .collect(),
        1000.0,
        0,
    )
}

fn fig6_trace() {
    println!("--- Figure 6: FINDBOUNDARY on the paper's example (cmax=185) ---");
    let space = fig6_fixture();
    let view = SpaceView::cost(&space, ConjModel::NoisyOr);
    let mut inst = Instrument::new();
    let bs = c_boundaries::find_boundary(&view, 185, &mut inst);
    println!(
        "boundaries: {}   (paper: c1, c1c3, c2c3c4, c2c4c5 — c2c4c5 is the\n\
         'wrongly identified' one our stronger prune removes)",
        bs.iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("states examined: {}\n", inst.states_examined);
}

fn fig8_trace() {
    println!("--- Figure 8: C-MAXBOUNDS on the paper's example (cmax=185) ---");
    let space = fig6_fixture();
    let view = SpaceView::cost(&space, ConjModel::NoisyOr);
    let mut inst = Instrument::new();
    let mb = c_maxbounds::find_all_max_bounds(&view, 185, &mut inst);
    println!(
        "maximal boundaries: {}   (paper: c1c3, c2c3c4)",
        mb.iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("states examined: {}\n", inst.states_examined);
}

fn ablations(w: &Workload, ks: &[usize], out: &Path) {
    println!("--- Ablation: specialized vs generic search (K=20) ---");
    let mut generic_reports = Vec::new();
    let rows = experiments::ablation_generic_reported(w, 20, &mut generic_reports);
    println!(
        "{:<16} {:>12} {:>12} {:>16}",
        "algorithm", "seconds", "states", "gap (x1e-7)"
    );
    let mut times = Vec::new();
    let mut quals = Vec::new();
    for (t, q) in rows {
        println!(
            "{:<16} {:>12.6} {:>12.1} {:>16.3}",
            t.algorithm,
            t.seconds,
            t.states,
            q.quality_gap * 1e7
        );
        times.push(t);
        quals.push(q);
    }
    csvout::write_times(out, "ablation_generic_time", &times).expect("CSV write");
    csvout::write_quality(out, "ablation_generic_quality", &quals).expect("CSV write");
    write_reports(out, "ablation_generic_time", &generic_reports);
    write_reports(out, "ablation_generic_quality", &generic_reports);
    println!();

    println!("--- Ablation: conjunction model r ---");
    for (model, rows, reports) in experiments::ablation_doi_model_reported(w, ks) {
        let worst = rows.iter().map(|r| r.quality_gap).fold(0.0, f64::max);
        println!("{model:<12} worst heuristic gap = {:.3e}", worst);
        csvout::write_quality(out, &format!("ablation_doimodel_{model}"), &rows)
            .expect("CSV write");
        write_reports(out, &format!("ablation_doimodel_{model}"), &reports);
    }
    println!();

    println!("--- Ablation: annealing budget (steps vs gap x1e-7) ---");
    let mut annealing_reports = Vec::new();
    let rows = experiments::ablation_annealing_budget_reported(
        w,
        20,
        &[250, 1000, 4000, 16000],
        &mut annealing_reports,
    );
    for r in &rows {
        println!(
            "steps {:>7}: {:>10.6}s  gap(x1e-7) {:>10.3}",
            r.x, r.seconds, r.states
        );
    }
    csvout::write_times(out, "ablation_annealing_budget", &rows).expect("CSV write");
    write_reports(out, "ablation_annealing_budget", &annealing_reports);
    println!();

    println!("--- Ablation: block capacity (cost-model robustness) ---");
    let mut blocksize_reports = Vec::new();
    let rows = experiments::ablation_block_size_reported(
        &[16, 32, 64, 128, 256],
        10,
        &mut blocksize_reports,
    );
    println!(
        "{:>10} {:>14} {:>14} {:>16}",
        "tuples/blk", "estimated ms", "I/O ms", "heuristic gap"
    );
    for r in &rows {
        println!(
            "{:>10} {:>14.1} {:>14.1} {:>16.6}",
            r.block_capacity, r.estimated_ms, r.measured_io_ms, r.heuristic_gap
        );
        assert!(
            (r.estimated_ms - r.measured_io_ms).abs() < 1e-9,
            "block-level identity must hold at every capacity"
        );
    }
    let lines: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{:.3},{:.3},{:.9}",
                r.block_capacity, r.estimated_ms, r.measured_io_ms, r.heuristic_gap
            )
        })
        .collect();
    std::fs::create_dir_all(out).expect("results dir");
    std::fs::write(
        out.join("ablation_block_size.csv"),
        format!(
            "block_capacity,estimated_ms,measured_io_ms,heuristic_gap\n{}\n",
            lines.join("\n")
        ),
    )
    .expect("CSV write");
    write_reports(out, "ablation_block_size", &blocksize_reports);
    println!();
}

/// 1-thread vs N-thread comparison of the two parallel hot paths — the
/// batch personalization driver and the fig12(a) grid — written as
/// `BENCH_parallel.json` (in `out` and at the repo root) alongside a
/// `bench_par.report.jsonl` run report. Solutions are asserted
/// bit-identical across thread counts before any timing is reported.
fn bench_par(w: &Workload, ks: &[usize], full_k: bool, threads: usize, out: &Path) {
    let batch_k = 20;
    let mut requests = Vec::new();
    for (profile, query) in w.pairs() {
        let (space, _) = w.space(profile, query, batch_k, true);
        if space.k() == 0 {
            continue;
        }
        let cmax = w.scale.cmax_for(&space);
        for algo in Algorithm::PAPER {
            requests.push(BatchRequest {
                query: query.clone(),
                profile: profile.clone(),
                problem: ProblemSpec::p2(cmax),
                config: SolverConfig {
                    algorithm: algo,
                    extract: ExtractConfig {
                        max_k: batch_k,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            });
        }
    }
    let db = Arc::new(w.db.clone());
    let stats = Arc::new(w.stats.clone());
    let widths: Vec<usize> = if threads > 1 {
        vec![1, threads]
    } else {
        vec![1]
    };

    println!(
        "--- bench_par: batch driver, {} requests ---",
        requests.len()
    );
    let mut batch_rows = Vec::new();
    let mut baseline: Option<Vec<_>> = None;
    let mut reports = Vec::new();
    for &t in &widths {
        let driver = BatchDriver::with_stats(Arc::clone(&db), Arc::clone(&stats), t);
        let obs = Obs::new();
        let (results, stats_t) = driver.run_recorded(requests.clone(), &obs);
        let solutions: Vec<_> = results
            .into_iter()
            .map(|r| r.expect("batch request").solution)
            .collect();
        match &baseline {
            None => baseline = Some(solutions),
            Some(base) => {
                for (a, b) in base.iter().zip(&solutions) {
                    assert_eq!(a.prefs, b.prefs, "parallel batch changed the answer");
                    assert_eq!(a.doi, b.doi);
                    assert_eq!(a.cost_blocks, b.cost_blocks);
                }
            }
        }
        println!(
            "{:>2} thread(s): {:>8.1} req/s  p50 {:>6} us  p95 {:>6} us  p99 {:>6} us  \
             cache {}h/{}m  steals {}",
            t,
            stats_t.requests_per_sec,
            stats_t.p50_us,
            stats_t.p95_us,
            stats_t.p99_us,
            stats_t.cache_hits,
            stats_t.cache_misses,
            stats_t.steals
        );
        reports.push(
            RunReport::from_obs("bench_par", &format!("batch_t{t}"), &obs)
                .with_field("threads", t as u64)
                .with_field("requests_per_sec", stats_t.requests_per_sec),
        );
        batch_rows.push((t, stats_t));
    }

    println!("--- bench_par: fig12(a) grid ---");
    let cells = fig12a_cells(ks, full_k);
    let mut grid_rows = Vec::new();
    for &t in &widths {
        let mut grid_reports = Vec::new();
        let t0 = Instant::now();
        let rows = experiments::fig12a_parallel(w, &cells, t, &mut grid_reports);
        let secs = t0.elapsed().as_secs_f64();
        println!("{:>2} thread(s): {} cells in {:.3} s", t, rows.len(), secs);
        grid_rows.push((t, rows.len(), secs));
    }

    let batch_json = Json::Arr(
        batch_rows
            .iter()
            .map(|(t, s)| {
                Json::obj(vec![
                    ("threads", Json::from(*t as u64)),
                    ("requests", Json::from(s.requests as u64)),
                    ("wall_secs", Json::from(s.wall_secs)),
                    ("requests_per_sec", Json::from(s.requests_per_sec)),
                    ("p50_us", Json::from(s.p50_us)),
                    ("p95_us", Json::from(s.p95_us)),
                    ("p99_us", Json::from(s.p99_us)),
                    ("cache_hits", Json::from(s.cache_hits)),
                    ("cache_misses", Json::from(s.cache_misses)),
                    ("steals", Json::from(s.steals)),
                ])
            })
            .collect(),
    );
    let grid_json = Json::Arr(
        grid_rows
            .iter()
            .map(|(t, cells, secs)| {
                Json::obj(vec![
                    ("threads", Json::from(*t as u64)),
                    ("cells", Json::from(*cells as u64)),
                    ("wall_secs", Json::from(*secs)),
                ])
            })
            .collect(),
    );
    let speedup = |rows: &[(usize, usize, f64)]| -> f64 {
        match rows {
            [(_, _, base), .., (_, _, par)] if *par > 0.0 => base / par,
            _ => 1.0,
        }
    };
    let doc = Json::obj(vec![
        ("experiment", Json::Str("bench_par".into())),
        ("threads_requested", Json::from(threads as u64)),
        ("batch", batch_json),
        ("fig12a_grid", grid_json),
        ("fig12a_speedup", Json::from(speedup(&grid_rows))),
    ]);
    let rendered = doc.render();
    std::fs::create_dir_all(out).expect("results dir");
    std::fs::write(out.join("BENCH_parallel.json"), &rendered).expect("bench write");
    std::fs::write("BENCH_parallel.json", &rendered).expect("bench write");
    write_reports(out, "bench_par", &reports);
    println!(
        "BENCH_parallel.json written ({} and repo root)\n",
        out.display()
    );
}

/// Serving-resilience experiment: (1) a 64-request batch under a seeded
/// [`FaultPlan`] with retry-on-transient-failure — must finish with zero
/// panics and zero errors, retry counters land in
/// `resilience.report.jsonl`; (2) a deadline sweep over the five paper
/// algorithms measuring degradation rates, the serving-time face of the
/// paper's exact-vs-heuristic tradeoff (Figures 12–13).
fn resilience(w: &Workload, threads: usize, out: &Path) {
    let batch_k = 20;
    let mut pool = Vec::new();
    for (profile, query) in w.pairs() {
        let (space, _) = w.space(profile, query, batch_k, true);
        if space.k() == 0 {
            continue;
        }
        let cmax = w.scale.cmax_for(&space);
        for algo in Algorithm::PAPER {
            pool.push(BatchRequest {
                query: query.clone(),
                profile: profile.clone(),
                problem: ProblemSpec::p2(cmax),
                config: SolverConfig {
                    algorithm: algo,
                    extract: ExtractConfig {
                        max_k: batch_k,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            });
        }
    }
    if pool.is_empty() {
        println!("--- resilience: workload produced no requests, skipping ---\n");
        return;
    }
    let requests: Vec<BatchRequest> = (0..64).map(|i| pool[i % pool.len()].clone()).collect();
    let db = Arc::new(w.db.clone());
    let stats = Arc::new(w.stats.clone());
    let mut reports = Vec::new();

    // (1) Fault-injected batch. The seed and mode are the documented
    // reference plan (README "Resilience"): error every 25th metered read,
    // capped at 8 injections so the retry total is deterministic under any
    // thread interleaving; retries(10) covers the worst case of one
    // request absorbing the whole cap.
    let seed: u64 = 0x00C0_FFEE_5EED;
    let plan = Arc::new(FaultPlan::new(seed, FaultMode::EveryNth { n: 25 }).with_max_faults(8));
    let driver = BatchDriver::with_stats(Arc::clone(&db), Arc::clone(&stats), threads)
        .with_execution(0.01)
        .with_fault_plan(Arc::clone(&plan))
        .with_retry_policy(RetryPolicy::retries(10));
    let obs = Obs::new();
    let (results, batch_stats) = driver.run_recorded(requests.clone(), &obs);
    assert_eq!(batch_stats.panics_caught, 0, "fault batch panicked");
    assert_eq!(batch_stats.errors, 0, "retries must absorb injected faults");
    assert!(results.iter().all(|r| r.is_ok()));
    println!(
        "--- resilience: 64-request batch, seed {seed:#x}, every-25th faults (cap 8) ---\n\
         {:>2} thread(s): {:>8.1} req/s  reads {}  faults {}  retries {}  errors {}  panics {}",
        batch_stats.threads,
        batch_stats.requests_per_sec,
        plan.reads_seen(),
        plan.faults_injected(),
        batch_stats.retries,
        batch_stats.errors,
        batch_stats.panics_caught,
    );
    reports.push(
        RunReport::from_obs("resilience", "fault_batch", &obs)
            .with_field("threads", batch_stats.threads as u64)
            .with_field("seed", seed)
            .with_field("faults_injected", plan.faults_injected())
            .with_field("retries", batch_stats.retries)
            .with_field("errors", batch_stats.errors)
            .with_field("panics_caught", batch_stats.panics_caught),
    );

    // (2) Deadline sweep: per paper algorithm, what fraction of requests
    // comes back degraded as the budget shrinks to nothing?
    println!("\n--- resilience: deadline sweep (degraded requests / 64) ---");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "algorithm", "0 ms", "5 ms", "unlimited"
    );
    for algo in Algorithm::PAPER {
        let mut rates = Vec::new();
        for deadline_ms in [Some(0u64), Some(5), None] {
            let budget = match deadline_ms {
                Some(ms) => Budget::with_deadline_ms(ms),
                None => Budget::unlimited(),
            };
            let sweep: Vec<BatchRequest> = requests
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    r.config.algorithm = algo;
                    r.config.budget = budget;
                    r
                })
                .collect();
            let driver = BatchDriver::with_stats(Arc::clone(&db), Arc::clone(&stats), threads);
            let obs = Obs::new();
            let (_, s) = driver.run_recorded(sweep, &obs);
            assert_eq!(
                s.panics_caught,
                0,
                "{} deadline sweep panicked",
                algo.name()
            );
            let label = match deadline_ms {
                Some(ms) => format!("deadline_{ms}ms_{}", algo.name()),
                None => format!("deadline_unlimited_{}", algo.name()),
            };
            reports.push(
                RunReport::from_obs("resilience", &label, &obs)
                    .with_field("degraded", s.degraded)
                    .with_field("requests", s.requests as u64),
            );
            rates.push(s.degraded);
        }
        println!(
            "{:<16} {:>9}/64 {:>9}/64 {:>9}/64",
            algo.name(),
            rates[0],
            rates[1],
            rates[2]
        );
    }
    write_reports(out, "resilience", &reports);
    println!(
        "\nresilience.report.jsonl written under {}\n",
        out.display()
    );
}

/// Serving experiment: starts `cqp-server` over the workload's database on
/// an ephemeral port, stores the workload profiles, drives a deterministic
/// seeded closed-loop load over real sockets, then runs the overload probe
/// (every execution slot held, zero-length queue) so the admission-reject
/// measurement is exact, not timing-dependent. Written as
/// `BENCH_serve.json` in `out` and at the repo root.
fn serve(w: &Workload, threads: usize, out: &Path) {
    let clients = threads.max(2);
    let server_config = cqp_server::ServerConfig {
        max_inflight: clients,
        // Zero queue: under the closed loop (clients == slots) nothing
        // needs to wait, and the overload probe's 429s are deterministic.
        queue_cap: 0,
        seed_users: 0,
        ..cqp_server::ServerConfig::default()
    };
    let mut handle =
        cqp_server::start(Arc::new(w.db.clone()), server_config).expect("server start");
    let users: Vec<String> = w
        .profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let user = format!("user{:04}", i + 1);
            handle.state().store.put(&user, p.clone());
            user
        })
        .collect();
    let queries: Vec<String> = w
        .queries
        .iter()
        .map(|q| cqp_engine::sql::conjunctive_sql(w.db.catalog(), q))
        .collect();
    let cmax = w.scale.cmax_blocks;
    let load = cqp_server::LoadConfig {
        clients,
        requests_per_client: 40,
        seed: 42,
        users,
        queries: queries.clone(),
        // c_boundaries routes its cost evaluations through the driver's
        // persistent submit cache, so the cache counters in the report
        // carry signal.
        algorithms: vec![
            "c_boundaries".to_string(),
            "c_maxbounds".to_string(),
            "d_heurdoi".to_string(),
        ],
        problems: vec![
            format!("{{\"kind\":\"p2\",\"cmax\":{cmax}}}"),
            "{\"kind\":\"p6\",\"smin\":0,\"smax\":1000000}".to_string(),
        ],
        zero_deadline_permille: 150,
        top_k_choices: vec![-1, 2, 4],
        trace_every: 0,
        zipf_theta: 0.0,
        mutate_permille: 0,
        mutation_texts: Vec::new(),
    };
    println!(
        "--- serve: {} closed-loop client(s) x {} requests against {} ---",
        load.clients,
        load.requests_per_client,
        handle.addr()
    );
    let report = cqp_server::run_load(handle.addr(), &load).expect("load run");
    println!(
        "{:>8.1} req/s  p50 {:>6} us  p95 {:>6} us  p99 {:>6} us  \
         ok {}  degraded {}  rejected {}  unavailable {}  errors {}",
        report.requests_per_sec,
        report.p50_us,
        report.p95_us,
        report.p99_us,
        report.ok,
        report.degraded,
        report.rejected,
        report.unavailable,
        report.client_errors + report.server_errors + report.io_errors,
    );
    assert_eq!(report.io_errors, 0, "serve load hit socket errors");
    assert_eq!(report.server_errors, 0, "serve load hit 5xx responses");
    assert!(report.ok > 0, "serve load produced no 200s");
    assert!(
        report.degraded > 0,
        "zero-deadline mix produced no degraded responses"
    );

    let probe_body = format!(
        "{{\"user\":\"user0001\",\"sql\":{},\"problem\":{{\"kind\":\"p2\",\"cmax\":{cmax}}}}}",
        Json::Str(queries[0].clone()).render(),
    );
    let probe = cqp_server::overload_probe(&handle, 16, &probe_body).expect("overload probe");
    println!(
        "overload probe: {}/{} rejected with 429 (retry-after {:?})",
        probe.rejected, probe.attempts, probe.retry_after
    );
    assert_eq!(
        probe.rejected, probe.attempts,
        "held slots + zero queue must shed every probe request"
    );

    let state = handle.state();
    let (admitted, rejected, timed_out) = state.gate.counters();
    let (cache_hits, cache_misses, cache_evictions) = state.driver.submit_cache_counters();
    let panics_caught = state.driver.submit_panics();
    assert_eq!(panics_caught, 0, "serving path caught panics");
    let server_json = Json::obj(vec![
        ("admitted", Json::from(admitted)),
        ("rejected", Json::from(rejected)),
        ("queue_timeouts", Json::from(timed_out)),
        ("cache_hits", Json::from(cache_hits)),
        ("cache_misses", Json::from(cache_misses)),
        ("cache_evictions", Json::from(cache_evictions)),
        ("panics_caught", Json::from(panics_caught)),
    ]);
    let obs_report = cqp_obs::RunReport::from_obs("serve", "load", &state.obs)
        .with_field("requests", report.requests)
        .with_field("ok", report.ok)
        .with_field("degraded", report.degraded)
        .with_field("probe_rejected", probe.rejected);
    handle.stop();

    // Epoll leg: the same seeded closed loop against the reactor backend
    // at 10x request volume. The answer cache keeps the solver out of the
    // hot path after warmup, so this measures the serving core itself.
    let mut epoll_handle = cqp_server::start(
        Arc::new(w.db.clone()),
        cqp_server::ServerConfig {
            backend: cqp_server::Backend::Epoll,
            max_inflight: clients,
            queue_cap: 0,
            seed_users: 0,
            ..cqp_server::ServerConfig::default()
        },
    )
    .expect("epoll server start");
    for (i, p) in w.profiles.iter().enumerate() {
        epoll_handle
            .state()
            .store
            .put(&format!("user{:04}", i + 1), p.clone());
    }
    let epoll_load = cqp_server::LoadConfig {
        requests_per_client: load.requests_per_client * 10,
        ..load.clone()
    };
    println!(
        "--- serve: epoll backend, {} client(s) x {} requests against {} ---",
        epoll_load.clients,
        epoll_load.requests_per_client,
        epoll_handle.addr()
    );
    let report_epoll = cqp_server::run_load(epoll_handle.addr(), &epoll_load).expect("epoll load");
    println!(
        "{:>8.1} req/s  p50 {:>6} us  p95 {:>6} us  p99 {:>6} us  \
         ok {}  degraded {}  rejected {}  unavailable {}  errors {}",
        report_epoll.requests_per_sec,
        report_epoll.p50_us,
        report_epoll.p95_us,
        report_epoll.p99_us,
        report_epoll.ok,
        report_epoll.degraded,
        report_epoll.rejected,
        report_epoll.unavailable,
        report_epoll.client_errors + report_epoll.server_errors + report_epoll.io_errors,
    );
    assert_eq!(report_epoll.io_errors, 0, "epoll leg hit socket errors");
    assert_eq!(report_epoll.server_errors, 0, "epoll leg hit 5xx responses");
    assert!(report_epoll.ok > 0, "epoll leg produced no 200s");
    assert_eq!(epoll_handle.state().driver.submit_panics(), 0);
    let obs_epoll = cqp_obs::RunReport::from_obs("serve", "load_epoll", &epoll_handle.state().obs)
        .with_field("requests", report_epoll.requests)
        .with_field("ok", report_epoll.ok)
        .with_field("degraded", report_epoll.degraded);
    epoll_handle.stop();

    let conn_scale = conn_scale_leg(w);

    let doc = Json::obj(vec![
        ("experiment", Json::Str("serve".into())),
        ("scale", Json::Str(w.scale.name.to_string())),
        ("clients", Json::from(load.clients as u64)),
        ("seed", Json::from(load.seed)),
        ("load", report.to_json()),
        ("load_epoll", report_epoll.to_json()),
        ("conn_scale", conn_scale),
        ("overload_probe", probe.to_json()),
        ("server", server_json),
    ]);
    let rendered = doc.render();
    std::fs::create_dir_all(out).expect("results dir");
    std::fs::write(out.join("BENCH_serve.json"), &rendered).expect("bench write");
    std::fs::write("BENCH_serve.json", &rendered).expect("bench write");
    write_reports(out, "serve", &[obs_report, obs_epoll]);
    println!(
        "BENCH_serve.json written ({} and repo root)\n",
        out.display()
    );
}

/// Connection-scale leg: a C10k-class idle-keepalive herd plus slowloris
/// drippers and two paced request lanes, against the epoll backend.
///
/// Prefers a child `serverd --backend epoll` process (found next to this
/// binary) so the herd's server-side fds live in their own process fd
/// table; falls back to an in-process server with the target capped to
/// what one fd table can hold (two fds per connection). The target comes
/// from `CQP_CONN_TARGET` (default 10000).
fn conn_scale_leg(w: &Workload) -> Json {
    let requested: usize = std::env::var("CQP_CONN_TARGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let scale_config = |target: usize| cqp_server::ConnScaleConfig {
        idle_conns: target,
        slowloris_conns: 32,
        drip_interval_ms: 40,
        lanes: 2,
        lane_rps: 50,
        lane_requests: 100,
        mix: cqp_server::LoadConfig {
            users: (1..=8).map(|i| format!("user{i:04}")).collect(),
            queries: vec!["SELECT title FROM MOVIE".to_string()],
            ..cqp_server::LoadConfig::default()
        },
        reap_patience_ms: 20_000,
        connect_burst: 128,
    };

    let serverd = std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|d| d.join("serverd")))
        .filter(|p| p.is_file());
    let (report, target, mode) = match serverd {
        Some(bin) => {
            let target = requested;
            let mut child = std::process::Command::new(&bin)
                .args(["--addr", "127.0.0.1:0", "--backend", "epoll"])
                .args(["--read-timeout-ms", "1500", "--seed", "7"])
                .args(["--seed-users", "8"])
                .arg("--max-conns")
                .arg((target + 2048).to_string())
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::null())
                .spawn()
                .expect("spawn serverd");
            let addr = {
                use std::io::BufRead;
                let stdout = child.stdout.take().expect("serverd stdout");
                let mut line = String::new();
                std::io::BufReader::new(stdout)
                    .read_line(&mut line)
                    .expect("serverd banner");
                line.strip_prefix("listening on ")
                    .and_then(|rest| rest.split_whitespace().next())
                    .and_then(|a| a.parse().ok())
                    .unwrap_or_else(|| panic!("unparseable serverd banner: {line:?}"))
            };
            println!(
                "--- serve: conn_scale vs child serverd at {addr} \
                 (idle target {target}, 32 slowloris, 2 lanes) ---"
            );
            let report = cqp_server::run_conn_scale(addr, &scale_config(target));
            let _ = child.kill();
            let _ = child.wait();
            (report.expect("conn scale run"), target, "child-process")
        }
        None => {
            // Both endpoints share this process's fd table: 2 fds/conn.
            let _ = cqp_sys::raise_nofile_limit(requested as u64 * 2 + 512);
            let (soft, _) = cqp_sys::nofile_limit().expect("rlimit");
            let target = requested.min((soft.saturating_sub(512) / 2) as usize);
            let mut handle = cqp_server::start(
                Arc::new(w.db.clone()),
                cqp_server::ServerConfig {
                    backend: cqp_server::Backend::Epoll,
                    read_timeout_ms: 1_500,
                    max_connections: target + 256,
                    seed_users: 8,
                    ..cqp_server::ServerConfig::default()
                },
            )
            .expect("epoll server start");
            println!(
                "--- serve: conn_scale in-process at {} \
                 (idle target {target}, 32 slowloris, 2 lanes) ---",
                handle.addr()
            );
            let report = cqp_server::run_conn_scale(handle.addr(), &scale_config(target))
                .expect("conn scale run");
            handle.stop();
            (report, target, "in-process")
        }
    };

    println!(
        "conn_scale [{mode}]: idle {}/{} held, {} reaped, slowloris {}/{} reaped, \
         lane ok {}  shed {}  errors {}  open-loop p99 {} us  leaked {}",
        report.idle_opened,
        target,
        report.idle_reaped,
        report.slowloris_reaped,
        report.slowloris_opened,
        report.lane_ok,
        report.lane_shed,
        report.lane_errors,
        report.open_loop_p99_us,
        report.leaked(),
    );
    assert!(
        report.idle_opened as usize >= target * 9 / 10,
        "idle herd failed to establish: {report:?}"
    );
    assert_eq!(report.leaked(), 0, "connections leaked: {report:?}");
    assert_eq!(
        report.slowloris_reaped, report.slowloris_opened,
        "{report:?}"
    );
    assert_eq!(report.lane_errors, 0, "{report:?}");
    report.to_json()
}

/// One leg of the cache experiment: boots `cqp-server` with the answer
/// cache on or off, seeds the workload profiles, drives the given load,
/// and returns the load report plus the server-side cache counters.
fn cache_leg(
    w: &Workload,
    load: &cqp_server::LoadConfig,
    answer_cache: bool,
) -> (cqp_server::LoadReport, Json) {
    let server_config = cqp_server::ServerConfig {
        max_inflight: load.clients,
        queue_cap: 0,
        seed_users: 0,
        answer_cache,
        ..cqp_server::ServerConfig::default()
    };
    let mut handle =
        cqp_server::start(Arc::new(w.db.clone()), server_config).expect("server start");
    for (i, p) in w.profiles.iter().enumerate() {
        handle
            .state()
            .store
            .put(&format!("user{:04}", i + 1), p.clone());
    }
    let report = cqp_server::run_load(handle.addr(), load).expect("load run");
    let state = handle.state();
    let counters = match state.driver.answer_cache() {
        Some(cache) => {
            let c = cache.counters();
            Json::obj(vec![
                ("hits_exact", Json::from(c.hits_exact)),
                ("hits_warm", Json::from(c.hits_warm)),
                ("hits_repair", Json::from(c.hits_repair)),
                ("misses", Json::from(c.misses)),
                ("invalidations", Json::from(c.invalidations)),
                ("entries", Json::from(cache.entries() as u64)),
                ("families", Json::from(cache.families() as u64)),
            ])
        }
        None => Json::Null,
    };
    handle.stop();
    assert_eq!(report.io_errors, 0, "cache load hit socket errors");
    assert_eq!(report.server_errors, 0, "cache load hit 5xx responses");
    assert!(report.ok > 0, "cache load produced no 200s");
    assert_eq!(
        report.stale_answers, 0,
        "a stale personalization was served"
    );
    (report, counters)
}

/// Answer-cache experiment: the same Zipf-skewed, mutation-carrying
/// closed-loop load, once against a cache-off server and once against a
/// cache-on server. The skew makes templates repeat (exact tier), the two
/// `p2` budgets exercise the warm tier within a family, and the live
/// profile mutations exercise invalidation + delta-repair; the staleness
/// audit inside the load generator must stay at zero in both legs.
/// Written as `BENCH_cache.json` in `out` and at the repo root.
fn cache_experiment(w: &Workload, threads: usize, out: &Path) {
    let clients = threads.max(2);
    let users: Vec<String> = (1..=w.profiles.len())
        .map(|i| format!("user{i:04}"))
        .collect();
    let queries: Vec<String> = w
        .queries
        .iter()
        .map(|q| cqp_engine::sql::conjunctive_sql(w.db.catalog(), q))
        .collect();
    let cmax = w.scale.cmax_blocks;
    let load = cqp_server::LoadConfig {
        clients,
        requests_per_client: 80,
        seed: 42,
        users,
        queries,
        // Branch-and-bound is the one algorithm the warm tier can *seed*
        // (the cached objective is a valid pruning bound under the
        // Formula 4/7/8 monotonicity); exact and repair tiers are
        // algorithm-agnostic.
        algorithms: vec!["branch_bound".to_string()],
        // Two budgets of the same problem kind: same family, different
        // variant key, so a hot template hits the warm tier when only the
        // budget moved.
        problems: vec![
            format!("{{\"kind\":\"p2\",\"cmax\":{cmax}}}"),
            format!("{{\"kind\":\"p2\",\"cmax\":{}}}", cmax / 2),
        ],
        // Degraded answers are never cached, so a zero-deadline mix would
        // only add noise to the off/on comparison.
        zero_deadline_permille: 0,
        top_k_choices: vec![-1],
        trace_every: 0,
        zipf_theta: 1.2,
        mutate_permille: 25,
        mutation_texts: vec![
            "# cqp-profile v1\nprofile m\nselect 0.7 GENRE.genre eq \"comedy\"\n".to_string(),
        ],
    };
    println!(
        "--- cache: {} client(s) x {} requests, zipf {:.1}, {}‰ mutations ---",
        load.clients, load.requests_per_client, load.zipf_theta, load.mutate_permille
    );
    let (off, _) = cache_leg(w, &load, false);
    let (on, counters) = cache_leg(w, &load, true);
    let hit_rate = on.cache_hit_rate();
    let p50_ratio = if off.p50_us == 0 {
        1.0
    } else {
        on.p50_us as f64 / off.p50_us as f64
    };
    println!(
        "cache off: p50 {:>6} us  p95 {:>6} us  ok {}  mutations {}",
        off.p50_us, off.p95_us, off.ok, off.mutations
    );
    println!(
        "cache on : p50 {:>6} us  p95 {:>6} us  ok {}  mutations {}  \
         exact {}  warm {}  repair {}  miss {}  hit rate {:.2}  p50 ratio {:.2}",
        on.p50_us,
        on.p95_us,
        on.ok,
        on.mutations,
        on.cache_exact,
        on.cache_warm,
        on.cache_repair,
        on.cache_miss,
        hit_rate,
        p50_ratio,
    );
    assert_eq!(
        off.cache_exact + off.cache_warm + off.cache_repair,
        0,
        "cache-off leg reported cache hits"
    );
    assert!(on.cache_exact > 0, "cache-on leg saw no exact hits");
    assert!(
        hit_rate >= 0.5,
        "exact+warm hit rate {hit_rate:.2} below the 0.5 acceptance floor"
    );
    assert!(
        p50_ratio <= 0.5,
        "cache-on p50 must be at most half of cache-off p50 (ratio {p50_ratio:.2})"
    );
    let doc = Json::obj(vec![
        ("experiment", Json::Str("cache".into())),
        ("scale", Json::Str(w.scale.name.to_string())),
        ("clients", Json::from(load.clients as u64)),
        ("seed", Json::from(load.seed)),
        ("zipf_theta", Json::from(load.zipf_theta)),
        ("mutate_permille", Json::from(load.mutate_permille as u64)),
        ("cache_off", off.to_json()),
        ("cache_on", on.to_json()),
        ("server_cache", counters),
        ("hit_rate", Json::from(hit_rate)),
        ("p50_ratio", Json::from(p50_ratio)),
    ]);
    let rendered = doc.render();
    std::fs::create_dir_all(out).expect("results dir");
    std::fs::write(out.join("BENCH_cache.json"), &rendered).expect("bench write");
    std::fs::write("BENCH_cache.json", &rendered).expect("bench write");
    println!(
        "BENCH_cache.json written ({} and repo root)\n",
        out.display()
    );
}

/// Observability experiment: what does tracing cost, and what does a
/// captured trace actually show?
///
/// Boots the PR-4 serve workload three times — tracing off, default
/// deterministic sampling (1/16), and 100% capture — and measures
/// closed-loop throughput for each (best of two runs after a warmup, so
/// the overhead numbers measure tracing, not allocator warmup or CI
/// scheduling noise). Then, on the 100% server, sends one explicit-
/// trace-ID request with a 0-ms deadline and pulls its span tree back out
/// of `/debug/traces?id=` — the captured degraded trace embedded in
/// `BENCH_obs.json` — plus the whole ring as a Chrome trace-event file
/// (`trace_chrome.json`, loadable in `chrome://tracing` / Perfetto).
fn obs_experiment(w: &Workload, threads: usize, out: &Path) {
    use std::io::{BufReader, Write};
    use std::net::TcpStream;

    let clients = threads.max(2);
    let cmax = w.scale.cmax_blocks;
    let queries: Vec<String> = w
        .queries
        .iter()
        .map(|q| cqp_engine::sql::conjunctive_sql(w.db.catalog(), q))
        .collect();
    let boot = |sample_every: u64| {
        let config = cqp_server::ServerConfig {
            max_inflight: clients,
            queue_cap: 0,
            seed_users: 0,
            trace_sample_every: sample_every,
            ..cqp_server::ServerConfig::default()
        };
        let handle = cqp_server::start(Arc::new(w.db.clone()), config).expect("server start");
        let users: Vec<String> = w
            .profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let user = format!("user{:04}", i + 1);
                handle.state().store.put(&user, p.clone());
                user
            })
            .collect();
        (handle, users)
    };
    let load_config =
        |users: Vec<String>, trace_every: u64, requests: usize| cqp_server::LoadConfig {
            clients,
            requests_per_client: requests,
            seed: 42,
            users,
            queries: queries.clone(),
            algorithms: vec![
                "c_boundaries".to_string(),
                "c_maxbounds".to_string(),
                "d_heurdoi".to_string(),
            ],
            problems: vec![
                format!("{{\"kind\":\"p2\",\"cmax\":{cmax}}}"),
                "{\"kind\":\"p6\",\"smin\":0,\"smax\":1000000}".to_string(),
            ],
            zero_deadline_permille: 150,
            top_k_choices: vec![-1, 2, 4],
            trace_every,
            zipf_theta: 0.0,
            mutate_permille: 0,
            mutation_texts: Vec::new(),
        };

    // Best-of-N with the modes *interleaved*: closed-loop throughput in a
    // shared container jitters by far more than tracing costs, and the
    // jitter is time-correlated — a slow minute would punish whichever
    // mode happened to run then. Booting all three servers up front and
    // round-robining the measured runs exposes every mode to the same
    // noise, and the per-mode max is the statistic that isolates the
    // instrumentation overhead.
    const MEASURED_RUNS: usize = 5;
    println!(
        "--- obs: tracing overhead, {} client(s) x 40 requests x {MEASURED_RUNS} interleaved runs per mode ---",
        clients
    );
    // (mode label, sample_every, explicit-header period for the loadgen).
    let modes: [(&str, u64, u64); 3] = [("off", 0, 0), ("sampled", 16, 0), ("full", 1, 8)];
    let servers: Vec<(cqp_server::ServerHandle, Vec<String>)> = modes
        .iter()
        .map(|(_, sample_every, _)| boot(*sample_every))
        .collect();
    // Warmup each: populate the submit cache and the allocator.
    for (handle, users) in &servers {
        cqp_server::run_load(handle.addr(), &load_config(users.clone(), 0, 5)).expect("warmup");
    }
    let mut best: [Option<cqp_server::LoadReport>; 3] = [None, None, None];
    for _round in 0..MEASURED_RUNS {
        for (mi, (mode, _, trace_every)) in modes.iter().enumerate() {
            let (handle, users) = &servers[mi];
            let report =
                cqp_server::run_load(handle.addr(), &load_config(users.clone(), *trace_every, 40))
                    .expect("load run");
            assert_eq!(report.io_errors, 0, "{mode}: load hit socket errors");
            assert_eq!(report.server_errors, 0, "{mode}: load hit 5xx responses");
            assert_eq!(
                report.trace_mismatches, 0,
                "{mode}: server echoed a wrong trace ID"
            );
            if best[mi]
                .as_ref()
                .is_none_or(|b| report.requests_per_sec > b.requests_per_sec)
            {
                best[mi] = Some(report);
            }
        }
    }
    let mut mode_docs: Vec<(&str, Json)> = Vec::new();
    let mut mode_rps = [0.0f64; 3];
    let mut reports = Vec::new();
    for (mi, (mode, sample_every, _)) in modes.iter().enumerate() {
        let best = best[mi].as_ref().expect("at least one run");
        let state = servers[mi].0.state();
        let (captured, evicted) = state.telemetry.ring.counters();
        println!(
            "{mode:>8}: {:>8.1} req/s  p50 {:>6} us  p99 {:>6} us  captured {captured} traces",
            best.requests_per_sec, best.p50_us, best.p99_us
        );
        match *sample_every {
            0 => assert_eq!(captured, 0, "tracing off must capture nothing"),
            1 => assert!(
                captured >= best.requests,
                "100% sampling missed requests: {captured} < {}",
                best.requests
            ),
            _ => assert!(captured > 0, "default sampling captured nothing"),
        }
        mode_rps[mi] = best.requests_per_sec;
        mode_docs.push((
            mode,
            Json::obj(vec![
                ("sample_every", Json::from(*sample_every)),
                ("load", best.to_json()),
                ("traces_captured", Json::from(captured)),
                ("traces_evicted", Json::from(evicted)),
            ]),
        ));
        reports.push(
            RunReport::from_obs("obs", mode, &state.obs)
                .with_field("requests", best.requests)
                .with_field("traces_captured", captured),
        );
    }
    let mut servers = servers;
    let (mut off_handle, _) = servers.remove(0);
    let (mut sampled_handle, _) = servers.remove(0);
    let (mut handle, _) = servers.remove(0); // full sampling, kept for probes
    off_handle.stop();
    sampled_handle.stop();
    let addr = handle.addr();

    // One deadline-tripped request with a client-chosen trace ID, then its
    // span tree back out of the debug endpoint.
    let http_get = |path: &str| -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let head = format!("GET {path} HTTP/1.1\r\nhost: b\r\nconnection: close\r\n\r\n");
        stream.write_all(head.as_bytes()).expect("write");
        let resp = cqp_server::http::parse_response(&mut BufReader::new(stream)).expect("response");
        assert_eq!(resp.status, 200, "GET {path}: {}", resp.body_text());
        resp.body_text()
    };
    let trace_id = "deadbeef";
    let body = format!(
        "{{\"user\":\"user0001\",\"sql\":{},\"problem\":{{\"kind\":\"p2\",\"cmax\":{cmax}}},\
         \"deadline_ms\":0}}",
        Json::Str(queries[0].clone()).render(),
    );
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let head = format!(
            "POST /personalize HTTP/1.1\r\nhost: b\r\nconnection: close\r\n\
             x-cqp-trace-id: {trace_id}\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).expect("write head");
        stream.write_all(body.as_bytes()).expect("write body");
        let resp = cqp_server::http::parse_response(&mut BufReader::new(stream)).expect("response");
        assert_eq!(resp.status, 200, "probe: {}", resp.body_text());
        assert_eq!(
            resp.header("x-cqp-trace-id").map(str::to_string),
            Some(format!("{:0>16}", trace_id)),
            "probe response must echo the trace ID"
        );
    }
    let padded = format!("{:0>16}", trace_id);
    let trace_doc = cqp_server::json::parse(&http_get(&format!("/debug/traces?id={trace_id}")))
        .expect("trace JSON");
    let span_paths: Vec<Json> = trace_doc
        .get("spans")
        .and_then(Json::as_array)
        .expect("spans")
        .iter()
        .filter_map(|s| s.get("path").cloned())
        .collect();
    let path_strs: Vec<&str> = span_paths.iter().filter_map(Json::as_str).collect();
    for required in [
        "parse",
        "session",
        "admission",
        "dispatch.personalize.search",
    ] {
        assert!(
            path_strs.contains(&required),
            "degraded trace missing span {required:?}: {path_strs:?}"
        );
    }
    assert_eq!(
        trace_doc
            .get("meta")
            .and_then(|m| m.get("outcome"))
            .and_then(Json::as_str),
        Some("degraded"),
        "0-ms deadline probe must be captured as degraded"
    );
    let degraded_trace = Json::obj(vec![
        ("trace_id", Json::Str(padded)),
        (
            "outcome",
            trace_doc
                .get("meta")
                .and_then(|m| m.get("outcome"))
                .cloned()
                .unwrap_or(Json::Null),
        ),
        (
            "total_us",
            trace_doc.get("total_us").cloned().unwrap_or(Json::Null),
        ),
        ("span_paths", Json::Arr(span_paths)),
    ]);

    // The whole ring as a Chrome trace-event artifact.
    let chrome = http_get("/debug/traces?format=chrome");
    std::fs::create_dir_all(out).expect("results dir");
    std::fs::write(out.join("trace_chrome.json"), &chrome).expect("chrome write");
    let slo = handle.state().telemetry.slo.snapshot();
    handle.stop();

    // Overhead relative to tracing-off, clamped at 0 (a negative sampled
    // overhead is measurement noise, not a speedup).
    let overhead = |rps: f64| {
        if mode_rps[0] > 0.0 {
            ((mode_rps[0] - rps) / mode_rps[0]).max(0.0)
        } else {
            0.0
        }
    };
    let sampled_overhead = overhead(mode_rps[1]);
    let full_overhead = overhead(mode_rps[2]);
    println!(
        "overhead vs off: sampled {:.1}%  full {:.1}%",
        sampled_overhead * 100.0,
        full_overhead * 100.0
    );
    let doc = Json::obj(vec![
        ("experiment", Json::Str("obs".into())),
        ("scale", Json::Str(w.scale.name.to_string())),
        ("clients", Json::from(clients as u64)),
        ("seed", Json::from(42u64)),
        (
            "modes",
            Json::Obj(
                mode_docs
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        ),
        (
            "overhead",
            Json::obj(vec![
                ("sampled_vs_off", Json::from(sampled_overhead)),
                ("full_vs_off", Json::from(full_overhead)),
                ("objective", Json::from(0.05)),
                (
                    "sampled_within_objective",
                    Json::Bool(sampled_overhead <= 0.05),
                ),
            ]),
        ),
        (
            "slo",
            Json::obj(vec![
                ("objective_us", Json::from(slo.objective_us)),
                ("window_secs", Json::from(slo.window_secs)),
                ("requests", Json::from(slo.requests)),
                ("over_objective", Json::from(slo.over_objective)),
                ("burn_ratio", Json::from(slo.burn_ratio)),
                ("rate_per_sec", Json::from(slo.rate_per_sec)),
            ]),
        ),
        ("degraded_trace", degraded_trace),
    ]);
    let rendered = doc.render();
    std::fs::write(out.join("BENCH_obs.json"), &rendered).expect("bench write");
    std::fs::write("BENCH_obs.json", &rendered).expect("bench write");
    write_reports(out, "obs", &reports);
    println!(
        "BENCH_obs.json written ({} and repo root); Chrome trace at {}\n",
        out.display(),
        out.join("trace_chrome.json").display()
    );
}

/// Recovery experiment: the crash-safety face of the serving layer.
///
/// Four measurements: (1) a crash differential — a WAL-backed session
/// store is killed mid-write-burst at seeded byte offsets and every
/// replayed store must equal the reference store holding exactly the
/// records that were fully on disk; (2) cold replay throughput over the
/// full log; (3) graceful-drain latency quantiles over repeated
/// boot/drain cycles, each with an idle connection and a request that
/// finishes its arrival mid-drain (answered `503 + Connection: close`);
/// (4) deterministic circuit-breaker trip/half-open/close counts under
/// first-K injected faults. Emits `BENCH_recovery.json` in `out` and at
/// the repo root plus a `recovery.report.jsonl` run report.
fn recovery(w: &Workload, out: &Path) {
    use cqp_core::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
    use cqp_server::http::parse_response;
    use cqp_server::server::Phase;
    use cqp_server::SessionStore;
    use std::io::{BufReader, Read, Write};
    use std::net::TcpStream;

    let catalog = w.db.catalog();
    let seed: u64 = 0x5E55_10F5;
    let n_ops = 240usize;
    let n_users = w.profiles.len().max(1);
    let op = |i: usize| {
        (
            format!("user{:04}", i % n_users + 1),
            &w.profiles[(i * 7 + 3) % n_users],
        )
    };
    let reference_dump = |k: usize| {
        let store = SessionStore::new(8);
        for i in 0..k {
            let (user, profile) = op(i);
            store.put(&user, profile.clone());
        }
        store.dump(catalog)
    };

    // (1) Write burst through the durable store, then crash replicas of
    // its log at seeded offsets and diff each replay.
    std::fs::create_dir_all(out).expect("results dir");
    let wal_root = out.join("recovery-wal");
    let _ = std::fs::remove_dir_all(&wal_root);
    let burst_dir = wal_root.join("burst");
    let (store, fresh) = SessionStore::recover(8, &burst_dir, catalog).expect("fresh store");
    assert_eq!(fresh.records_replayed(), 0);
    for i in 0..n_ops {
        let (user, profile) = op(i);
        store.put(&user, profile.clone());
    }
    let uncrashed = store.dump(catalog);
    drop(store);
    let log = std::fs::read(burst_dir.join("log.wal")).expect("read log");
    // Every frame is newline-terminated and payloads escape raw
    // newlines, so each `\n` ends one record.
    let mut bounds = vec![0usize];
    bounds.extend(
        log.iter()
            .enumerate()
            .filter(|(_, c)| **c == b'\n')
            .map(|(i, _)| i + 1),
    );
    assert_eq!(bounds.len(), n_ops + 1, "one WAL record per put");

    let crash_points = 8usize;
    let mut replays_exact = 0usize;
    for p in 0..crash_points {
        let mut r = seed ^ (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        r ^= r >> 30;
        r = r.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        r ^= r >> 27;
        let cut = (r as usize) % (log.len() + 1);
        let complete = bounds.iter().filter(|b| **b <= cut).count() - 1;
        let dir = wal_root.join(format!("crash{p}"));
        std::fs::create_dir_all(&dir).expect("crash dir");
        std::fs::write(dir.join("log.wal"), &log[..cut]).expect("crash image");
        let (replayed, report) = SessionStore::recover(8, &dir, catalog).expect("replay");
        assert_eq!(report.records_replayed(), complete as u64, "cut {cut}");
        assert_eq!(
            replayed.dump(catalog),
            reference_dump(complete),
            "crash point {p} (cut {cut}, {complete} records) must replay exactly"
        );
        replays_exact += 1;
    }

    // (2) Cold replay throughput over the intact log.
    let (full, replay) = SessionStore::recover(8, &burst_dir, catalog).expect("full replay");
    assert_eq!(full.dump(catalog), uncrashed, "uncrashed differential");
    assert_eq!(replay.records_replayed(), n_ops as u64);
    assert_eq!(replay.torn_tail_bytes, 0);
    let replay_secs = replay.replay_secs.max(1e-9);
    let records_per_sec = replay.records_replayed() as f64 / replay_secs;
    let bytes_per_sec = replay.bytes_replayed as f64 / replay_secs;
    drop(full);
    println!(
        "--- recovery: {} records, {} crash points replayed exactly; \
         cold replay {:.0} rec/s ({:.1} MB/s) ---",
        n_ops,
        replays_exact,
        records_per_sec,
        bytes_per_sec / 1e6,
    );

    // (3) Drain latency: boot, open an idle connection plus a request
    // whose body arrives only after the drain begins, then shut down.
    let db = Arc::new(w.db.clone());
    let drain_iters = 20usize;
    let mut drain_hist = cqp_obs::Histogram::default();
    let mut graceful = 0usize;
    let mut forced_total = 0usize;
    let mut rejected_503 = 0usize;
    for _ in 0..drain_iters {
        let handle = cqp_server::start(
            Arc::clone(&db),
            cqp_server::ServerConfig {
                seed_users: 0,
                read_timeout_ms: 5_000,
                drain_deadline_ms: 5_000,
                ..cqp_server::ServerConfig::default()
            },
        )
        .expect("server start");
        let addr = handle.addr();
        let state = Arc::clone(handle.state());
        let mut conn_mid = TcpStream::connect(addr).expect("conn_mid");
        conn_mid
            .write_all(b"POST /profiles/u1 HTTP/1.1\r\nhost: t\r\ncontent-length: 4\r\n\r\n")
            .expect("head");
        let mut conn_idle = TcpStream::connect(addr).expect("conn_idle");
        conn_idle
            .set_read_timeout(Some(std::time::Duration::from_millis(3_000)))
            .expect("idle timeout");
        std::thread::sleep(std::time::Duration::from_millis(20));
        let t0 = Instant::now();
        let drainer = std::thread::spawn(move || {
            let mut handle = handle;
            handle.shutdown(std::time::Duration::from_millis(5_000))
        });
        while state.phase() == Phase::Live {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        conn_mid.write_all(b"body").expect("body");
        let resp = parse_response(&mut BufReader::new(&mut conn_mid)).expect("mid response");
        if resp.status == 503 {
            rejected_503 += 1;
        }
        let stats = drainer.join().expect("drainer");
        drain_hist.observe(t0.elapsed().as_micros() as u64);
        if stats.graceful {
            graceful += 1;
        }
        forced_total += stats.forced;
        let mut buf = [0u8; 8];
        assert_eq!(
            conn_idle.read(&mut buf).expect("idle EOF"),
            0,
            "idle connection must be closed by the drain"
        );
        assert_eq!(state.active_connections(), 0);
    }
    assert_eq!(graceful, drain_iters, "every drain must finish in time");
    assert_eq!(forced_total, 0, "no connection may be force-severed");
    assert_eq!(
        rejected_503, drain_iters,
        "mid-drain arrivals get their 503"
    );
    println!(
        "drain ({} cycles): p50 {} us  p95 {} us  max {} us  graceful {}/{}  503s {}",
        drain_iters,
        drain_hist.quantile(0.5),
        drain_hist.quantile(0.95),
        drain_hist.max(),
        graceful,
        drain_iters,
        rejected_503,
    );

    // (4) Breaker trips under first-K faults, with retries off so every
    // injected fault is one transient failure: two failures trip the
    // breaker, sheds follow, and each cooldown's half-open probe either
    // re-trips (faults remain) or closes (faults exhausted).
    let obs = Obs::new();
    let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
        window: 8,
        failure_threshold: 0.5,
        min_samples: 2,
        cooldown_ms: 50,
        half_open_probes: 1,
    }));
    let driver = BatchDriver::new(Arc::clone(&db), 1)
        .with_execution(0.0)
        .with_fault_plan(Arc::new(FaultPlan::new(seed, FaultMode::FirstK { k: 4 })))
        .with_breaker(Arc::clone(&breaker));
    let (profile, query) = w.pairs().next().expect("workload pair");
    let req = || BatchRequest {
        query: query.clone(),
        profile: profile.clone(),
        problem: ProblemSpec::p2(w.scale.cmax_blocks),
        config: SolverConfig::default(),
    };
    let mut shed = 0usize;
    let mut transient = 0usize;
    let mut ok = 0usize;
    for i in 0..8 {
        if i >= 5 {
            // Let the cooldown lapse so the next submit is the probe.
            std::thread::sleep(std::time::Duration::from_millis(70));
        }
        match driver.submit_recorded(req(), &obs) {
            Ok(_) => ok += 1,
            Err(e) if matches!(e.kind(), "circuit_open") => shed += 1,
            Err(e) => {
                assert!(e.is_transient(), "unexpected breaker-path error: {e}");
                transient += 1;
            }
        }
    }
    let (opened, half_opened, closed, shed_count) = breaker.counters();
    assert_eq!(
        (transient, shed, ok),
        (4, 3, 1),
        "first-K fault schedule is deterministic"
    );
    assert_eq!((opened, half_opened, closed), (3, 3, 1));
    assert_eq!(shed_count, shed as u64);
    assert_eq!(breaker.state(), BreakerState::Closed);
    println!(
        "breaker: opened {opened}  half-open {half_opened}  closed {closed}  shed {shed_count}  final {}",
        breaker.state().as_str()
    );

    let doc = Json::obj(vec![
        ("experiment", Json::Str("recovery".into())),
        ("scale", Json::Str(w.scale.name.to_string())),
        ("seed", Json::from(seed)),
        (
            "crash_differential",
            Json::obj(vec![
                ("records_written", Json::from(n_ops as u64)),
                ("log_bytes", Json::from(log.len() as u64)),
                ("crash_points", Json::from(crash_points as u64)),
                ("replays_exact", Json::from(replays_exact as u64)),
            ]),
        ),
        (
            "replay",
            Json::obj(vec![
                ("records_recovered", Json::from(replay.records_replayed())),
                ("bytes_replayed", Json::from(replay.bytes_replayed)),
                ("torn_tail_bytes", Json::from(replay.torn_tail_bytes)),
                ("replay_secs", Json::from(replay_secs)),
                ("records_per_sec", Json::from(records_per_sec)),
                ("bytes_per_sec", Json::from(bytes_per_sec)),
            ]),
        ),
        (
            "drain",
            Json::obj(vec![
                ("iterations", Json::from(drain_iters as u64)),
                ("graceful", Json::from(graceful as u64)),
                ("forced", Json::from(forced_total as u64)),
                ("rejected_503", Json::from(rejected_503 as u64)),
                (
                    "latency_us",
                    Json::obj(vec![
                        ("p50", Json::from(drain_hist.quantile(0.5))),
                        ("p95", Json::from(drain_hist.quantile(0.95))),
                        ("max", Json::from(drain_hist.max())),
                    ]),
                ),
            ]),
        ),
        (
            "breaker",
            Json::obj(vec![
                ("submits", Json::from(8u64)),
                ("transient_failures", Json::from(transient as u64)),
                ("shed", Json::from(shed_count)),
                ("opened", Json::from(opened)),
                ("half_opened", Json::from(half_opened)),
                ("closed", Json::from(closed)),
                ("final_state", Json::Str(breaker.state().as_str().into())),
            ]),
        ),
    ]);
    let report = RunReport::from_obs("recovery", "summary", &obs)
        .with_field("records_written", n_ops as u64)
        .with_field("replays_exact", replays_exact as u64)
        .with_field("drain_graceful", graceful as u64)
        .with_field("breaker_opened", opened);
    let rendered = doc.render();
    std::fs::write(out.join("BENCH_recovery.json"), &rendered).expect("bench write");
    std::fs::write("BENCH_recovery.json", &rendered).expect("bench write");
    write_reports(out, "recovery", &[report]);
    let _ = std::fs::remove_dir_all(&wal_root);
    println!(
        "BENCH_recovery.json written ({} and repo root)\n",
        out.display()
    );
}

/// One bench-side HTTP request over a fresh connection.
fn cluster_http(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<cqp_server::http::ClientResponse> {
    use std::io::{BufReader, Write};
    let stream = std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_secs(2))?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(20)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n");
    if let Some(b) = body {
        head.push_str(&format!("content-length: {}\r\n", b.len()));
    }
    head.push_str("\r\n");
    let mut payload = head.into_bytes();
    if let Some(b) = body {
        payload.extend_from_slice(b.as_bytes());
    }
    writer.write_all(&payload)?;
    writer.flush()?;
    cqp_server::http::parse_response(&mut BufReader::new(stream))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Removes `fields` from every object level of `json` — used to compare
/// personalize answers minus the per-run fields (`latency_us`, `cache`).
fn cluster_strip(json: Json, fields: &[&str]) -> Json {
    match json {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| !fields.contains(&k.as_str()))
                .map(|(k, v)| (k, cluster_strip(v, fields)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(
            items
                .into_iter()
                .map(|v| cluster_strip(v, fields))
                .collect(),
        ),
        other => other,
    }
}

/// One op of the seeded failover burst: `(user, profile wire text)`.
fn cluster_burst_op(seed: u64, round: u64, i: u64) -> (String, String) {
    const USERS: [&str; 6] = ["al", "bo", "cy", "di", "ed", "fay"];
    const GENRES: [&str; 4] = ["comedy", "drama", "horror", "scifi"];
    let r = rand::splitmix64_mix(seed ^ rand::splitmix64_mix(round.wrapping_mul(0x9E37) ^ i));
    let user = USERS[(r % USERS.len() as u64) as usize];
    let genre = GENRES[((r >> 8) % GENRES.len() as u64) as usize];
    let year = 1970 + ((r >> 16) % 50);
    let text = format!(
        "# cqp-profile v1\n\
         profile {user}\n\
         join 0.9 MOVIE.mid GENRE.mid\n\
         select 0.8 GENRE.genre eq \"{genre}\"\n\
         select 0.6 MOVIE.year ge {year}\n"
    );
    (user.to_string(), text)
}

fn cluster_personalize_body(user: &str, sql: &str) -> String {
    format!(
        "{{\"user\":{},\"sql\":{},\"problem\":{{\"kind\":\"p2\",\"cmax\":500}},\
         \"algorithm\":\"c_maxbounds\"}}",
        Json::Str(user.to_string()).render(),
        Json::Str(sql.to_string()).render()
    )
}

/// Outcome of one kill-the-primary audit round.
struct ClusterRound {
    kill_at: u64,
    acked: u64,
    lost: u64,
    mismatches: u64,
}

/// The write-loss audit against an already-running primary/follower pair:
/// runs a seeded profile burst against the primary, invokes `kill` after
/// `kill_at` acknowledged writes (SIGKILL for child processes), promotes
/// the follower, and checks that every acknowledged write — and the
/// personalize answer it implies — is present on the promoted follower,
/// bit-identical to a fresh single-node reference that replayed the same
/// acknowledged sequence.
fn cluster_audit_round(
    db: &Arc<cqp_storage::Database>,
    primary_addr: std::net::SocketAddr,
    follower_addr: std::net::SocketAddr,
    kill: &mut dyn FnMut(),
    seed: u64,
    round: u64,
) -> ClusterRound {
    let total = 60u64;
    let kill_at = 15 + rand::splitmix64_mix(seed.wrapping_add(round.wrapping_mul(0xC13))) % 30;
    let mut acked: Vec<(String, String)> = Vec::new();
    for i in 0..total {
        let (user, text) = cluster_burst_op(seed, round, i);
        match cluster_http(
            primary_addr,
            "POST",
            &format!("/profiles/{user}"),
            Some(&text),
        ) {
            Ok(resp) if resp.status == 200 => acked.push((user, text)),
            // The primary is gone (or refused): nothing past this point
            // was acknowledged, so nothing past this point is owed.
            _ => break,
        }
        if acked.len() as u64 == kill_at {
            kill();
        }
    }
    let promoted =
        cluster_http(follower_addr, "POST", "/admin/promote", Some("")).expect("promote follower");
    assert_eq!(promoted.status, 200, "{}", promoted.body_text());

    // A fresh single-node reference replays the same acknowledged writes;
    // the promoted follower must agree with it bit-for-bit.
    let mut reference = cqp_server::start(
        Arc::clone(db),
        cqp_server::ServerConfig {
            addr: "127.0.0.1:0".into(),
            seed_users: 0,
            ..Default::default()
        },
    )
    .expect("reference server");
    for (user, text) in &acked {
        let resp = cluster_http(
            reference.addr(),
            "POST",
            &format!("/profiles/{user}"),
            Some(text),
        )
        .expect("reference upsert");
        assert_eq!(resp.status, 200, "{}", resp.body_text());
    }
    let users: std::collections::BTreeSet<&str> = acked.iter().map(|(u, _)| u.as_str()).collect();
    let mut lost = 0u64;
    let mut mismatches = 0u64;
    for user in &users {
        let on_follower = cluster_http(follower_addr, "GET", &format!("/profiles/{user}"), None);
        let on_reference =
            cluster_http(reference.addr(), "GET", &format!("/profiles/{user}"), None)
                .expect("reference read");
        match on_follower {
            Ok(resp) if resp.status == 200 && resp.body == on_reference.body => {}
            _ => lost += 1,
        }
        for sql in [
            "SELECT title FROM MOVIE",
            "SELECT title FROM MOVIE WHERE MOVIE.year >= 1990",
        ] {
            let body = cluster_personalize_body(user, sql);
            let f = cluster_http(follower_addr, "POST", "/personalize", Some(&body))
                .expect("follower personalize");
            let r = cluster_http(reference.addr(), "POST", "/personalize", Some(&body))
                .expect("reference personalize");
            assert_eq!(f.status, 200, "{}", f.body_text());
            assert_eq!(r.status, 200, "{}", r.body_text());
            let strip = |resp: &cqp_server::http::ClientResponse| {
                cluster_strip(
                    cqp_server::json::parse(&resp.body_text()).expect("personalize JSON"),
                    &["latency_us", "cache"],
                )
                .render()
            };
            if strip(&f) != strip(&r) {
                mismatches += 1;
            }
        }
    }
    reference.stop();
    ClusterRound {
        kill_at,
        acked: acked.len() as u64,
        lost,
        mismatches,
    }
}

/// Spawns a child `serverd`, reading its banner lines. Returns the child,
/// its serving address, and (for primaries) its replication address.
fn cluster_spawn_serverd(
    bin: &Path,
    wal_dir: &Path,
    role_args: &[&str],
) -> (
    std::process::Child,
    std::net::SocketAddr,
    Option<std::net::SocketAddr>,
) {
    use std::io::BufRead;
    let mut child = std::process::Command::new(bin)
        .args(["--addr", "127.0.0.1:0", "--seed", "7", "--seed-users", "0"])
        .arg("--wal-dir")
        .arg(wal_dir)
        .args(role_args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serverd");
    let stdout = child.stdout.take().expect("serverd stdout");
    let mut repl_addr = None;
    let mut addr = None;
    for line in std::io::BufReader::new(stdout).lines() {
        let line = line.expect("serverd banner");
        if let Some(rest) = line.strip_prefix("replication on ") {
            repl_addr = rest.split_whitespace().next().and_then(|a| a.parse().ok());
        } else if let Some(rest) = line.strip_prefix("listening on ") {
            addr = rest.split_whitespace().next().and_then(|a| a.parse().ok());
            break;
        }
    }
    (child, addr.expect("serverd readiness banner"), repl_addr)
}

/// One arm of the divergent-vs-uniform comparison: boots a 2-group
/// in-process cluster under `policy`, seeds profiles through the router
/// (so ring placement is real), and drives a Zipf-skewed template mix.
fn cluster_routing_leg(policy: cqp_cluster::RoutingPolicy, root: &Path) -> cqp_server::LoadReport {
    use cqp_cluster::{Cluster, ClusterConfig};
    let mut config = ClusterConfig::new(2, root.join(policy.as_str()));
    config.policy = policy;
    let mut cluster = Cluster::start(config).expect("cluster start");
    let addr = cluster.router.addr();
    let users: Vec<String> = (0..12).map(|i| format!("user{i:03}")).collect();
    for user in &users {
        let text = format!(
            "# cqp-profile v1\n\
             profile {user}\n\
             join 0.9 MOVIE.mid GENRE.mid\n\
             select 0.8 GENRE.genre eq \"comedy\"\n\
             select 0.6 MOVIE.year ge 1990\n"
        );
        let resp = cluster_http(addr, "POST", &format!("/profiles/{user}"), Some(&text))
            .expect("seed profile");
        assert_eq!(resp.status, 200, "{}", resp.body_text());
    }
    let load = cqp_server::LoadConfig {
        clients: 4,
        requests_per_client: 150,
        seed: 42,
        users,
        queries: (0..6)
            .map(|i| {
                format!(
                    "SELECT title FROM MOVIE WHERE MOVIE.year >= {}",
                    1970 + i * 5
                )
            })
            .collect(),
        algorithms: vec!["c_maxbounds".to_string()],
        problems: vec!["{\"kind\":\"p2\",\"cmax\":500}".to_string()],
        zero_deadline_permille: 0,
        top_k_choices: vec![-1],
        zipf_theta: 0.8,
        ..cqp_server::LoadConfig::default()
    };
    let report = cqp_server::run_load_targets(&[addr], &load).expect("cluster load");
    cluster.stop();
    report
}

/// `reproduce cluster` — the distributed-tier audit. Three legs:
///
/// 1. **SIGKILL failover, zero lost acknowledged writes** — seeded
///    rounds against child `serverd` primary/follower pairs (in-process
///    pairs when the binary is absent): SIGKILL the primary at a seeded
///    point mid-burst, promote the follower, and verify every
///    acknowledged write — profile bytes and the personalize answer they
///    imply — against a fresh single-node reference.
/// 2. **Divergent vs uniform read routing** — the same Zipf template mix
///    through a 2-group cluster under both policies; divergent (template
///    class → pinned replica) must beat uniform on answer-cache hits.
/// 3. **Ring balance** — placement spread of 10k users over 4 groups.
///
/// Emits `BENCH_cluster.json` in `out` and at the repo root.
fn cluster_experiment(out: &Path) {
    use cqp_cluster::{Ring, RoutingPolicy};
    use cqp_datagen::{generate_movie_db, MovieDbConfig};

    println!("--- cluster: failover audit + divergent routing + ring balance ---");
    let seed = 7u64;
    let rounds = 3u64;
    let root = out.join("cluster-wal");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("cluster wal root");
    let db = Arc::new(generate_movie_db(&MovieDbConfig::tiny(seed)));

    let serverd = std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|d| d.join("serverd")))
        .filter(|p| p.is_file());
    let mode = if serverd.is_some() {
        "child-process"
    } else {
        "in-process"
    };
    let mut round_docs = Vec::new();
    let mut total_acked = 0u64;
    let mut total_lost = 0u64;
    let mut total_mismatches = 0u64;
    for round in 0..rounds {
        let outcome = match &serverd {
            Some(bin) => {
                let (mut primary, primary_addr, repl_addr) = cluster_spawn_serverd(
                    bin,
                    &root.join(format!("r{round}-primary")),
                    &["--repl-listen", "127.0.0.1:0"],
                );
                let repl_addr = repl_addr.expect("primary replication banner");
                let (mut follower, follower_addr, _) = cluster_spawn_serverd(
                    bin,
                    &root.join(format!("r{round}-follower")),
                    &["--follow", &repl_addr.to_string()],
                );
                let outcome = cluster_audit_round(
                    &db,
                    primary_addr,
                    follower_addr,
                    &mut || {
                        // SIGKILL: no drain, no flush courtesy — the
                        // acked-write contract must hold anyway.
                        let _ = primary.kill();
                        let _ = primary.wait();
                    },
                    seed,
                    round,
                );
                // Idempotent: the round's kill closure already SIGKILLed
                // the primary on the expected path.
                let _ = primary.kill();
                let _ = primary.wait();
                let _ = follower.kill();
                let _ = follower.wait();
                outcome
            }
            None => {
                let mut primary = cqp_server::start(
                    Arc::clone(&db),
                    cqp_server::ServerConfig {
                        addr: "127.0.0.1:0".into(),
                        wal_dir: Some(root.join(format!("r{round}-primary"))),
                        repl_listen: Some("127.0.0.1:0".into()),
                        seed_users: 0,
                        ..Default::default()
                    },
                )
                .expect("primary start");
                let repl_addr = primary.repl_addr().expect("primary repl addr");
                let mut follower = cqp_server::start(
                    Arc::clone(&db),
                    cqp_server::ServerConfig {
                        addr: "127.0.0.1:0".into(),
                        wal_dir: Some(root.join(format!("r{round}-follower"))),
                        follow: Some(repl_addr.to_string()),
                        seed_users: 0,
                        ..Default::default()
                    },
                )
                .expect("follower start");
                let primary_addr = primary.addr();
                let follower_addr = follower.addr();
                let outcome = cluster_audit_round(
                    &db,
                    primary_addr,
                    follower_addr,
                    &mut || primary.stop(),
                    seed,
                    round,
                );
                follower.stop();
                outcome
            }
        };
        println!(
            "round {round}: killed primary after {} acks ({} acked total) — \
             lost {}  personalize mismatches {}",
            outcome.kill_at, outcome.acked, outcome.lost, outcome.mismatches
        );
        total_acked += outcome.acked;
        total_lost += outcome.lost;
        total_mismatches += outcome.mismatches;
        round_docs.push(Json::obj(vec![
            ("round", Json::from(round)),
            ("kill_after_acks", Json::from(outcome.kill_at)),
            ("acked_writes", Json::from(outcome.acked)),
            ("lost_acked_writes", Json::from(outcome.lost)),
            ("personalize_mismatches", Json::from(outcome.mismatches)),
        ]));
    }
    assert_eq!(total_lost, 0, "acknowledged writes lost across failover");
    assert_eq!(
        total_mismatches, 0,
        "post-failover personalize diverged from the single-node reference"
    );

    let divergent = cluster_routing_leg(RoutingPolicy::Divergent, &root);
    let uniform = cluster_routing_leg(RoutingPolicy::Uniform, &root);
    println!(
        "routing: divergent hit rate {:.3} at {:.0} req/s vs uniform {:.3} at {:.0} req/s",
        divergent.cache_hit_rate(),
        divergent.requests_per_sec,
        uniform.cache_hit_rate(),
        uniform.requests_per_sec
    );
    assert_eq!(divergent.io_errors, 0, "{divergent:?}");
    assert_eq!(uniform.io_errors, 0, "{uniform:?}");
    assert!(
        divergent.cache_hit_rate() > uniform.cache_hit_rate(),
        "divergent routing must beat uniform on cache hits: {:.3} vs {:.3}",
        divergent.cache_hit_rate(),
        uniform.cache_hit_rate()
    );

    let ring = Ring::with_groups(&["g0", "g1", "g2", "g3"]);
    let keys: Vec<String> = (0..10_000).map(|i| format!("user{i:05}")).collect();
    let load = ring.load(&keys);
    let max = load.iter().map(|(_, c)| *c).max().unwrap_or(0);
    let min = load.iter().map(|(_, c)| *c).min().unwrap_or(0);
    println!(
        "ring: 10k users over 4 groups — min {min}, max {max}, ratio {:.2}",
        max as f64 / min.max(1) as f64
    );

    let doc = Json::obj(vec![
        ("experiment", Json::Str("cluster".into())),
        ("seed", Json::from(seed)),
        ("mode", Json::Str(mode.into())),
        (
            "failover",
            Json::obj(vec![
                ("rounds", Json::from(rounds)),
                ("acked_writes", Json::from(total_acked)),
                ("lost_acked_writes", Json::from(total_lost)),
                ("personalize_mismatches", Json::from(total_mismatches)),
                ("rounds_detail", Json::Arr(round_docs)),
            ]),
        ),
        (
            "routing",
            Json::obj(vec![
                ("divergent", divergent.to_json()),
                ("uniform", uniform.to_json()),
                ("divergent_hit_rate", Json::from(divergent.cache_hit_rate())),
                ("uniform_hit_rate", Json::from(uniform.cache_hit_rate())),
                (
                    "hit_rate_advantage",
                    Json::from(divergent.cache_hit_rate() - uniform.cache_hit_rate()),
                ),
                ("divergent_rps", Json::from(divergent.requests_per_sec)),
                ("uniform_rps", Json::from(uniform.requests_per_sec)),
            ]),
        ),
        (
            "ring",
            Json::obj(vec![
                ("groups", Json::from(4u64)),
                ("keys", Json::from(10_000u64)),
                ("min_load", Json::from(min as u64)),
                ("max_load", Json::from(max as u64)),
                ("load_ratio", Json::from(max as f64 / min.max(1) as f64)),
            ]),
        ),
    ]);
    let rendered = doc.render();
    std::fs::write(out.join("BENCH_cluster.json"), &rendered).expect("bench write");
    std::fs::write("BENCH_cluster.json", &rendered).expect("bench write");
    let _ = std::fs::remove_dir_all(&root);
    println!(
        "BENCH_cluster.json written ({} and repo root)\n",
        out.display()
    );
}

/// [`cluster_http`] with extra request headers (the partition legs stamp
/// `x-cqp-epoch` to play the newer-primary side of a split brain).
fn partition_http(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> std::io::Result<cqp_server::http::ClientResponse> {
    use std::io::{BufReader, Write};
    let stream = std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_secs(2))?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(20)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!(
        "content-length: {}\r\n\r\n",
        body.map_or(0, str::len)
    ));
    let mut payload = head.into_bytes();
    if let Some(b) = body {
        payload.extend_from_slice(b.as_bytes());
    }
    writer.write_all(&payload)?;
    writer.flush()?;
    cqp_server::http::parse_response(&mut BufReader::new(stream))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Writes `user`'s profile through `addr`; a 200 records the ack (version
/// and epoch from the response body) into `log`. Transport errors and
/// refusals return normally — in a partition schedule only acks count.
fn partition_acked_write(
    addr: std::net::SocketAddr,
    user: &str,
    log: &cqp_cluster::AckLog,
) -> std::io::Result<cqp_server::http::ClientResponse> {
    let text = format!(
        "# cqp-profile v1\n\
         profile {user}\n\
         join 0.9 MOVIE.mid GENRE.mid\n\
         select 0.8 GENRE.genre eq \"comedy\"\n\
         select 0.6 MOVIE.year ge 1990\n"
    );
    let resp = partition_http(addr, "POST", &format!("/profiles/{user}"), &[], Some(&text))?;
    if resp.status == 200 {
        let body = cqp_server::json::parse(&resp.body_text())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let version = body.get("version").and_then(Json::as_u64).unwrap_or(0);
        let epoch = body.get("epoch").and_then(Json::as_u64).unwrap_or(0);
        log.record(user, version, epoch, &text);
    }
    Ok(resp)
}

/// Polls `f` until it returns true or `timeout` elapses.
fn partition_wait(timeout: std::time::Duration, mut f: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        if f() {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    false
}

/// A replica's `/healthz/ready` role, read directly ("?" on any failure).
fn partition_role(addr: std::net::SocketAddr) -> String {
    cluster_http(addr, "GET", "/healthz/ready", None)
        .ok()
        .and_then(|resp| cqp_server::json::parse(&resp.body_text()).ok())
        .and_then(|j| j.get("role").and_then(|r| r.as_str().map(str::to_string)))
        .unwrap_or_else(|| "?".to_string())
}

/// Outcome of one partition leg: the checker verdict plus leg counters.
struct PartitionLeg {
    acked: u64,
    fenced_write_rejections: u64,
    report: cqp_cluster::ConsistencyReport,
    detail: Json,
}

/// The split-brain schedule: partition the primary (HTTP and repl at
/// once), let the router promote the follower at a higher epoch, write
/// through both faces of the brain, heal, and run the checker. Every
/// write the stale face refuses with `stale_epoch` counts as a fenced
/// rejection — the number the shape gate requires to be positive.
fn partition_split_brain_leg(root: &Path, seed: u64) -> PartitionLeg {
    use cqp_cluster::nemesis::Fault;
    use cqp_cluster::{check, AckLog, Cluster, ClusterConfig, ReplicaDump};

    let mut cluster =
        Cluster::start(ClusterConfig::with_nemesis(1, root.join("split"))).expect("cluster start");
    let router_addr = cluster.router.addr();
    let acks = AckLog::new();
    let users: Vec<String> = (0..6).map(|i| format!("user{i:03}")).collect();
    for user in &users {
        let resp = partition_acked_write(router_addr, user, &acks).expect("healthy write");
        assert_eq!(resp.status, 200, "{}", resp.body_text());
    }

    {
        let nemesis = cluster.groups[0].nemesis.as_ref().expect("nemesis cluster");
        nemesis.primary_http.set_fault(Fault::Partition);
        nemesis.repl.set_fault(Fault::Partition);
    }
    let promoted = partition_wait(std::time::Duration::from_secs(20), || {
        cluster_http(router_addr, "GET", "/router/stats", None)
            .ok()
            .and_then(|s| cqp_server::json::parse(&s.body_text()).ok())
            .and_then(|j| j.get("failovers").and_then(Json::as_u64))
            .is_some_and(|n| n >= 1)
    });
    assert!(promoted, "router never failed over the partitioned primary");
    for user in &users {
        let ok = partition_wait(std::time::Duration::from_secs(10), || {
            partition_acked_write(router_addr, user, &acks)
                .map(|r| r.status == 200)
                .unwrap_or(false)
        });
        assert!(ok, "{user}: healthy side of the brain must accept writes");
    }

    // The stale face: clients on the old primary's side of the partition
    // reach it directly. The first write carrying the new epoch fences
    // it; every refusal is what the experiment exists to count.
    let old_primary = cluster.groups[0].primary.addr();
    let stats = cluster_http(router_addr, "GET", "/router/stats", None).expect("router stats");
    let new_epoch = cqp_server::json::parse(&stats.body_text())
        .ok()
        .and_then(|j| j.get("groups")?.as_array()?.first()?.get("epoch")?.as_u64())
        .expect("router stats expose the group epoch");
    assert!(new_epoch >= 1, "failover must bump the epoch");
    let epoch_header = new_epoch.to_string();
    let mut fenced_write_rejections = 0u64;
    let mut stale_acks = 0u64;
    for user in &users {
        let text = format!("# cqp-profile v1\nprofile {user}\nselect 0.5 MOVIE.year ge 2000\n");
        let resp = partition_http(
            old_primary,
            "POST",
            &format!("/profiles/{user}"),
            &[("x-cqp-epoch", &epoch_header)],
            Some(&text),
        )
        .expect("old primary reachable directly");
        if resp.status == 503 {
            fenced_write_rejections += 1;
        } else if resp.status == 200 {
            stale_acks += 1;
        }
    }
    assert_eq!(stale_acks, 0, "the stale face acknowledged a write");
    let fenced_role = partition_role(old_primary);
    assert_eq!(fenced_role, "fenced", "old primary must end up fenced");

    {
        let nemesis = cluster.groups[0].nemesis.as_ref().expect("nemesis cluster");
        nemesis.primary_http.heal();
        nemesis.repl.heal();
    }
    let healed = partition_wait(std::time::Duration::from_secs(10), || {
        partition_acked_write(router_addr, &users[0], &acks)
            .map(|r| r.status == 200)
            .unwrap_or(false)
    });
    assert!(
        healed,
        "cluster never healed after the split-brain schedule"
    );

    let catalog = cluster.db().catalog().clone();
    let dumps = vec![
        ReplicaDump {
            name: "g0/old-primary".into(),
            fenced: true,
            sessions: cluster.groups[0].primary.state().store.dump(&catalog),
        },
        ReplicaDump {
            name: "g0/new-primary".into(),
            fenced: false,
            sessions: cluster.groups[0].follower.state().store.dump(&catalog),
        },
    ];
    let snapshot = acks.snapshot();
    let report = check(&snapshot, &dumps);
    println!(
        "split brain: {} acked writes, {} fenced rejections, epoch {new_epoch} — \
         lost {}  divergent {}  order violations {}",
        snapshot.len(),
        fenced_write_rejections,
        report.lost_acked_writes,
        report.split_brain_divergence,
        report.order_violations
    );
    cluster.stop();
    let detail = Json::obj(vec![
        ("schedule", Json::Str("split_brain".into())),
        ("seed", Json::from(seed)),
        ("failover_epoch", Json::from(new_epoch)),
        ("checker", report.to_json()),
    ]);
    PartitionLeg {
        acked: snapshot.len() as u64,
        fenced_write_rejections,
        report,
        detail,
    }
}

/// The churn schedule: a seeded [`NemesisPlan`] timeline (partitions,
/// delays, connection drops) flaps the primary's HTTP link while writes
/// race it best-effort; after the plan drains and the links heal, the
/// checker audits every ack that made it through.
///
/// [`NemesisPlan`]: cqp_cluster::NemesisPlan
fn partition_churn_leg(root: &Path, seed: u64) -> PartitionLeg {
    use cqp_cluster::{check, AckLog, Cluster, ClusterConfig, NemesisPlan, ReplicaDump};

    let mut cluster =
        Cluster::start(ClusterConfig::with_nemesis(1, root.join("churn"))).expect("cluster start");
    let router_addr = cluster.router.addr();
    let acks = AckLog::new();
    let users: Vec<String> = (0..4).map(|i| format!("user{i:03}")).collect();
    for user in &users {
        let resp = partition_acked_write(router_addr, user, &acks).expect("healthy write");
        assert_eq!(resp.status, 200, "{}", resp.body_text());
    }

    let plan = NemesisPlan::seeded(seed, 8, 40);
    {
        let nemesis = cluster.groups[0].nemesis.as_mut().expect("nemesis cluster");
        nemesis.primary_http.run_plan(plan);
    }
    let mut attempted = 0u64;
    for _round in 0..8 {
        for user in &users {
            attempted += 1;
            let _ = partition_acked_write(router_addr, user, &acks);
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
    }
    {
        let nemesis = cluster.groups[0].nemesis.as_mut().expect("nemesis cluster");
        nemesis.primary_http.join_plan();
        nemesis.primary_http.heal();
        nemesis.repl.heal();
    }
    let healed = partition_wait(std::time::Duration::from_secs(10), || {
        partition_acked_write(router_addr, &users[0], &acks)
            .map(|r| r.status == 200)
            .unwrap_or(false)
    });
    assert!(healed, "cluster never healed after the churn plan");

    let catalog = cluster.db().catalog().clone();
    let dumps: Vec<ReplicaDump> = [
        ("g0/primary", &cluster.groups[0].primary),
        ("g0/follower", &cluster.groups[0].follower),
    ]
    .into_iter()
    .map(|(name, server)| ReplicaDump {
        name: name.into(),
        fenced: partition_role(server.addr()) == "fenced",
        sessions: server.state().store.dump(&catalog),
    })
    .collect();
    let snapshot = acks.snapshot();
    let report = check(&snapshot, &dumps);
    println!(
        "churn: {} acked writes ({attempted} raced the seeded plan) — \
         lost {}  divergent {}  order violations {}",
        snapshot.len(),
        report.lost_acked_writes,
        report.split_brain_divergence,
        report.order_violations
    );
    cluster.stop();
    let detail = Json::obj(vec![
        ("schedule", Json::Str("seeded_churn".into())),
        ("seed", Json::from(seed)),
        ("attempted_writes", Json::from(attempted)),
        ("checker", report.to_json()),
    ]);
    PartitionLeg {
        acked: snapshot.len() as u64,
        fenced_write_rejections: 0,
        report,
        detail,
    }
}

/// `reproduce partition` — the partition-tolerance audit. Two seeded
/// schedules against a nemesis-fronted in-process cluster:
///
/// 1. **Split brain** — partition the primary, promote the follower at a
///    higher epoch, write through both faces, heal. The stale face must
///    refuse every write with `stale_epoch` (counted as
///    `fenced_write_rejections`) and the checker must find zero lost
///    acked writes and zero divergent `(user, version)` slots.
/// 2. **Seeded churn** — a deterministic nemesis timeline flaps the
///    primary's HTTP link under a best-effort write load; every ack that
///    made it through must survive.
///
/// Emits `BENCH_partition.json` in `out` and at the repo root; its
/// top-level `lost_acked_writes`, `split_brain_divergence`, and
/// `fenced_write_rejections` fields are CI's shape gate.
fn partition_experiment(out: &Path) {
    println!("--- partition: split-brain fencing + seeded churn audit ---");
    let seed = 0xC0FFEE_u64;
    let root = out.join("partition-wal");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("partition wal root");

    let split = partition_split_brain_leg(&root, seed);
    let churn = partition_churn_leg(&root, seed);

    let lost = split.report.lost_acked_writes + churn.report.lost_acked_writes;
    let divergence = split.report.split_brain_divergence + churn.report.split_brain_divergence;
    let order = split.report.order_violations + churn.report.order_violations;
    let fenced = split.fenced_write_rejections + churn.fenced_write_rejections;
    assert_eq!(lost, 0, "acked writes lost across partition schedules");
    assert_eq!(divergence, 0, "split brain merged divergent state");
    assert_eq!(order, 0, "acked order not linearizable");
    assert!(
        fenced > 0,
        "no write ever hit the fence — schedule is vacuous"
    );

    let doc = Json::obj(vec![
        ("experiment", Json::Str("partition".into())),
        ("seed", Json::from(seed)),
        ("acked_writes", Json::from(split.acked + churn.acked)),
        ("lost_acked_writes", Json::from(lost as u64)),
        ("split_brain_divergence", Json::from(divergence as u64)),
        ("order_violations", Json::from(order as u64)),
        ("fenced_write_rejections", Json::from(fenced)),
        ("schedules", Json::Arr(vec![split.detail, churn.detail])),
    ]);
    let rendered = doc.render();
    std::fs::write(out.join("BENCH_partition.json"), &rendered).expect("bench write");
    std::fs::write("BENCH_partition.json", &rendered).expect("bench write");
    let _ = std::fs::remove_dir_all(&root);
    println!(
        "BENCH_partition.json written ({} and repo root)\n",
        out.display()
    );
}
