//! Random user-profile generation over the movie schema.
//!
//! The evaluation setting (paper Section 7, following [12]) varies the doi
//! values and their deviations across profiles; each experiment point
//! averages 20 profiles. Profiles here consist of:
//!
//! * join preferences along the schema's foreign keys
//!   (`MOVIE→GENRE`, `MOVIE→DIRECTOR`, `MOVIE→CASTS`, `CASTS→ACTOR`), and
//! * selection preferences over genre names, director names, actor names,
//!   and movie years,
//!
//! with dois drawn from a configurable `mean ± deviation` band. The counts
//! default high enough that a query on MOVIE yields ≥ 40 related
//! preferences — the paper's largest `K`.

use crate::movies::{actor_name, director_name, GENRES};
use cqp_engine::CmpOp;
use cqp_prefs::{Doi, Profile};
use cqp_storage::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Profile generator configuration.
#[derive(Debug, Clone)]
pub struct ProfileGenConfig {
    /// Selection preferences on GENRE.genre.
    pub genre_selections: usize,
    /// Selection preferences on DIRECTOR.name.
    pub director_selections: usize,
    /// Selection preferences on ACTOR.name.
    pub actor_selections: usize,
    /// Selection preferences on MOVIE.year (as `year >= v`).
    pub year_selections: usize,
    /// Mean of the selection doi distribution.
    pub doi_mean: f64,
    /// Half-width of the uniform doi band around the mean.
    pub doi_deviation: f64,
    /// Number of directors in the database (for name sampling).
    pub n_directors: usize,
    /// Number of actors in the database (for name sampling).
    pub n_actors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProfileGenConfig {
    fn default() -> Self {
        ProfileGenConfig {
            genre_selections: 12,
            director_selections: 15,
            actor_selections: 15,
            year_selections: 4,
            doi_mean: 0.6,
            doi_deviation: 0.3,
            n_directors: 300,
            n_actors: 2000,
            seed: 7,
        }
    }
}

impl ProfileGenConfig {
    /// A small configuration matched to [`crate::MovieDbConfig::tiny`].
    pub fn tiny(seed: u64) -> Self {
        ProfileGenConfig {
            genre_selections: 5,
            director_selections: 5,
            actor_selections: 5,
            year_selections: 2,
            n_directors: 20,
            n_actors: 100,
            seed,
            ..Default::default()
        }
    }

    fn sample_doi(&self, rng: &mut StdRng) -> Doi {
        let lo = (self.doi_mean - self.doi_deviation).max(0.01);
        let hi = (self.doi_mean + self.doi_deviation).min(0.99);
        Doi::clamped(rng.gen_range(lo..=hi))
    }
}

/// Generates a profile over the movie schema.
///
/// # Panics
/// Panics if the catalog does not contain the movie schema.
pub fn generate_movie_profile(catalog: &Catalog, config: &ProfileGenConfig) -> Profile {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut p = Profile::new(format!("profile-{}", config.seed));

    // Join preferences along the schema graph. Join dois are kept high:
    // they model structural relevance (the paper's Figure 1 join dois are
    // 0.9 and 1.0).
    let mut join = |l: (&str, &str), r: (&str, &str), rng: &mut StdRng| {
        let doi = Doi::clamped(rng.gen_range(0.8..=1.0));
        p.add_join(catalog, l.0, l.1, r.0, r.1, doi)
            .expect("movie schema present");
    };
    join(("MOVIE", "mid"), ("GENRE", "mid"), &mut rng);
    join(("MOVIE", "did"), ("DIRECTOR", "did"), &mut rng);
    join(("MOVIE", "mid"), ("CASTS", "mid"), &mut rng);
    join(("CASTS", "aid"), ("ACTOR", "aid"), &mut rng);

    // Selection preferences with sampled values and dois.
    let mut used_genres: Vec<usize> = Vec::new();
    for _ in 0..config.genre_selections.min(GENRES.len()) {
        let mut g = rng.gen_range(0..GENRES.len());
        while used_genres.contains(&g) {
            g = rng.gen_range(0..GENRES.len());
        }
        used_genres.push(g);
        let doi = config.sample_doi(&mut rng);
        p.add_selection(catalog, "GENRE", "genre", GENRES[g], doi)
            .expect("movie schema present");
    }
    for _ in 0..config.director_selections {
        let d = rng.gen_range(0..config.n_directors.max(1));
        let doi = config.sample_doi(&mut rng);
        p.add_selection(catalog, "DIRECTOR", "name", director_name(d), doi)
            .expect("movie schema present");
    }
    for _ in 0..config.actor_selections {
        let a = rng.gen_range(0..config.n_actors.max(1));
        let doi = config.sample_doi(&mut rng);
        p.add_selection(catalog, "ACTOR", "name", actor_name(a), doi)
            .expect("movie schema present");
    }
    for _ in 0..config.year_selections {
        let year = 1960 + rng.gen_range(0..45) as i64;
        let doi = config.sample_doi(&mut rng);
        p.add_selection_op(catalog, "MOVIE", "year", CmpOp::Ge, year, doi)
            .expect("movie schema present");
    }

    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movies::{generate_movie_db, MovieDbConfig};

    #[test]
    fn generates_enough_preferences_for_k40() {
        let db = generate_movie_db(&MovieDbConfig::tiny(1));
        let cfg = ProfileGenConfig {
            genre_selections: 12,
            director_selections: 15,
            actor_selections: 15,
            year_selections: 4,
            n_directors: 20,
            n_actors: 100,
            ..ProfileGenConfig::tiny(3)
        };
        let p = generate_movie_profile(db.catalog(), &cfg);
        // 4 joins + 46 selections.
        assert_eq!(p.num_preferences(), 50);
    }

    #[test]
    fn deterministic_per_seed() {
        let db = generate_movie_db(&MovieDbConfig::tiny(1));
        let a = generate_movie_profile(db.catalog(), &ProfileGenConfig::tiny(9));
        let b = generate_movie_profile(db.catalog(), &ProfileGenConfig::tiny(9));
        assert_eq!(a.graph().selections(), b.graph().selections());
        assert_eq!(a.graph().joins(), b.graph().joins());
        let c = generate_movie_profile(db.catalog(), &ProfileGenConfig::tiny(10));
        assert_ne!(a.graph().selections(), c.graph().selections());
    }

    #[test]
    fn dois_respect_the_band() {
        let db = generate_movie_db(&MovieDbConfig::tiny(1));
        let cfg = ProfileGenConfig {
            doi_mean: 0.5,
            doi_deviation: 0.1,
            ..ProfileGenConfig::tiny(4)
        };
        let p = generate_movie_profile(db.catalog(), &cfg);
        for e in p.graph().selections() {
            assert!(e.doi.value() >= 0.39 && e.doi.value() <= 0.61, "{}", e.doi);
        }
    }

    #[test]
    fn genre_selections_are_distinct() {
        let db = generate_movie_db(&MovieDbConfig::tiny(1));
        let p = generate_movie_profile(db.catalog(), &ProfileGenConfig::tiny(5));
        let genre = db.catalog().relation_id("GENRE").unwrap();
        let mut values: Vec<String> = p
            .graph()
            .selections_on(genre)
            .map(|e| e.value.to_string())
            .collect();
        let before = values.len();
        values.sort();
        values.dedup();
        assert_eq!(values.len(), before);
    }
}
