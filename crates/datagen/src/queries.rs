//! Query-workload generation.
//!
//! The paper's experiments personalize queries over movies (Section 4.2's
//! `select title from MOVIE` is the canonical shape) and average every data
//! point over 10 queries. The workload here varies the projection and an
//! optional base selection so queries differ in base cost and size while
//! remaining anchored at MOVIE — the relation the profiles' preference
//! paths attach to.

use cqp_engine::{CmpOp, ConjunctiveQuery, QueryBuilder};
use cqp_storage::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct QueryGenConfig {
    /// Number of queries to generate.
    pub count: usize,
    /// Probability that a query carries a base selection on `year`.
    pub selection_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            count: 10,
            selection_probability: 0.4,
            seed: 11,
        }
    }
}

/// Generates a workload of MOVIE queries.
///
/// # Panics
/// Panics if the catalog lacks the movie schema.
pub fn generate_movie_queries(catalog: &Catalog, config: &QueryGenConfig) -> Vec<ConjunctiveQuery> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let projections: [&[&str]; 4] = [
        &["title"],
        &["title", "year"],
        &["mid", "title"],
        &["title", "duration"],
    ];
    (0..config.count)
        .map(|_| {
            let proj = projections[rng.gen_range(0..projections.len())];
            let mut qb = QueryBuilder::from(catalog, "MOVIE").expect("movie schema present");
            for attr in proj {
                qb = qb.select("MOVIE", attr).expect("movie schema present");
            }
            if rng.gen::<f64>() < config.selection_probability {
                let year = 1970 + rng.gen_range(0..35) as i64;
                qb = qb
                    .filter("MOVIE", "year", CmpOp::Ge, year)
                    .expect("movie schema present");
            }
            qb.build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movies::{generate_movie_db, MovieDbConfig};

    #[test]
    fn generates_valid_queries() {
        let db = generate_movie_db(&MovieDbConfig::tiny(1));
        let qs = generate_movie_queries(db.catalog(), &QueryGenConfig::default());
        assert_eq!(qs.len(), 10);
        for q in &qs {
            q.validate(db.catalog()).unwrap();
            assert!(!q.projection.is_empty());
        }
    }

    #[test]
    fn deterministic_and_varied() {
        let db = generate_movie_db(&MovieDbConfig::tiny(1));
        let a = generate_movie_queries(db.catalog(), &QueryGenConfig::default());
        let b = generate_movie_queries(db.catalog(), &QueryGenConfig::default());
        assert_eq!(a, b);
        // With 10 queries, at least two distinct shapes appear.
        let distinct: std::collections::HashSet<String> =
            a.iter().map(|q| format!("{q:?}")).collect();
        assert!(distinct.len() >= 2);
    }

    #[test]
    fn selection_probability_zero_means_pure_scans() {
        let db = generate_movie_db(&MovieDbConfig::tiny(1));
        let qs = generate_movie_queries(
            db.catalog(),
            &QueryGenConfig {
                selection_probability: 0.0,
                count: 5,
                seed: 3,
            },
        );
        for q in qs {
            assert!(q.predicates.is_empty());
        }
    }
}
