//! A seeded Zipf(θ) sampler over `{0, …, n-1}`.
//!
//! Real-world attribute values (genres, directors, cast sizes) are heavily
//! skewed; Zipf is the standard model. Implemented with a precomputed CDF
//! and binary search — O(n) setup, O(log n) per sample, fully
//! deterministic under a caller-provided RNG.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `theta`.
///
/// `theta = 0` degenerates to uniform; `theta = 1` is the classic Zipf.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one outcome");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of outcomes.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..n` (0 is the most frequent).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(50, 1.0);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..50 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_matches_skew() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 20];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should be clearly more frequent than rank 10.
        assert!(counts[0] > counts[10] * 3, "{counts:?}");
        // Every count within the sampler's support was produced at least
        // once for this size/seed.
        assert!(counts.iter().filter(|&&c| c > 0).count() >= 15);
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(30, 0.8);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn zero_outcomes_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
