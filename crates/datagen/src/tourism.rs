//! The tourist-information scenario of the paper's introduction.
//!
//! "Al is registered with a web-based service providing tourist information
//! for various places … When Al is in Pisa, he may ask for a few local
//! restaurants using his palmtop." The schema:
//!
//! ```text
//! CITY(cid, name, country)
//! RESTAURANT(rid, name, cid, cuisine, price)
//! HOTEL(hid, name, cid, stars)
//! SIGHT(sid, name, cid, kind)
//! ```

use crate::zipf::Zipf;
use cqp_storage::{DataType, Database, RelationSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cuisines used by the generator.
pub const CUISINES: [&str; 8] = [
    "italian",
    "tuscan",
    "seafood",
    "pizzeria",
    "french",
    "indian",
    "japanese",
    "vegetarian",
];

/// Sight kinds used by the generator.
pub const SIGHT_KINDS: [&str; 5] = ["museum", "church", "tower", "square", "gallery"];

/// City names used by the generator (Pisa first, for the paper's example).
pub const CITIES: [&str; 10] = [
    "Pisa", "Florence", "Rome", "Siena", "Venice", "Milan", "Naples", "Bologna", "Turin", "Genoa",
];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TourismConfig {
    /// Restaurants per city (on average).
    pub restaurants_per_city: usize,
    /// Hotels per city (on average).
    pub hotels_per_city: usize,
    /// Sights per city (on average).
    pub sights_per_city: usize,
    /// Tuples per block.
    pub block_capacity: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TourismConfig {
    fn default() -> Self {
        TourismConfig {
            restaurants_per_city: 60,
            hotels_per_city: 25,
            sights_per_city: 15,
            block_capacity: 32,
            seed: 17,
        }
    }
}

/// Generates the tourist-information database.
pub fn generate_tourism_db(config: &TourismConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::with_block_capacity(config.block_capacity);

    db.create_relation(RelationSchema::new(
        "CITY",
        vec![
            ("cid", DataType::Int),
            ("name", DataType::Str),
            ("country", DataType::Str),
        ],
    ))
    .expect("fresh database");
    db.create_relation(RelationSchema::new(
        "RESTAURANT",
        vec![
            ("rid", DataType::Int),
            ("name", DataType::Str),
            ("cid", DataType::Int),
            ("cuisine", DataType::Str),
            ("price", DataType::Int),
        ],
    ))
    .expect("fresh database");
    db.create_relation(RelationSchema::new(
        "HOTEL",
        vec![
            ("hid", DataType::Int),
            ("name", DataType::Str),
            ("cid", DataType::Int),
            ("stars", DataType::Int),
        ],
    ))
    .expect("fresh database");
    db.create_relation(RelationSchema::new(
        "SIGHT",
        vec![
            ("sid", DataType::Int),
            ("name", DataType::Str),
            ("cid", DataType::Int),
            ("kind", DataType::Str),
        ],
    ))
    .expect("fresh database");

    for (cid, name) in CITIES.iter().enumerate() {
        db.insert_into(
            "CITY",
            vec![
                Value::Int(cid as i64),
                Value::str(*name),
                Value::str("Italy"),
            ],
        )
        .expect("valid row");
    }

    let cuisine_z = Zipf::new(CUISINES.len(), 0.8);
    let kind_z = Zipf::new(SIGHT_KINDS.len(), 0.8);
    let mut rid = 0i64;
    let mut hid = 0i64;
    let mut sid = 0i64;
    for cid in 0..CITIES.len() as i64 {
        for _ in 0..config.restaurants_per_city {
            let cuisine = CUISINES[cuisine_z.sample(&mut rng)];
            let price = 10 + rng.gen_range(0..80) as i64;
            db.insert_into(
                "RESTAURANT",
                vec![
                    Value::Int(rid),
                    Value::str(format!("Ristorante {rid:04}")),
                    Value::Int(cid),
                    Value::str(cuisine),
                    Value::Int(price),
                ],
            )
            .expect("valid row");
            rid += 1;
        }
        for _ in 0..config.hotels_per_city {
            db.insert_into(
                "HOTEL",
                vec![
                    Value::Int(hid),
                    Value::str(format!("Hotel {hid:04}")),
                    Value::Int(cid),
                    Value::Int(rng.gen_range(1..=5) as i64),
                ],
            )
            .expect("valid row");
            hid += 1;
        }
        for _ in 0..config.sights_per_city {
            db.insert_into(
                "SIGHT",
                vec![
                    Value::Int(sid),
                    Value::str(format!("Sight {sid:04}")),
                    Value::Int(cid),
                    Value::str(SIGHT_KINDS[kind_z.sample(&mut rng)]),
                ],
            )
            .expect("valid row");
            sid += 1;
        }
    }

    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_integrity() {
        let db = generate_tourism_db(&TourismConfig::default());
        let c = db.catalog();
        assert_eq!(c.len(), 4);
        let city = c.relation_id("CITY").unwrap();
        let rest = c.relation_id("RESTAURANT").unwrap();
        assert_eq!(db.table(city).unwrap().num_rows(), CITIES.len());
        assert_eq!(db.table(rest).unwrap().num_rows(), CITIES.len() * 60);
        // Every restaurant's cid is a valid city.
        for row in db.table(rest).unwrap().rows() {
            let Value::Int(cid) = row[2] else {
                panic!("cid must be int")
            };
            assert!((cid as usize) < CITIES.len());
        }
    }

    #[test]
    fn pisa_exists_with_restaurants() {
        let db = generate_tourism_db(&TourismConfig::default());
        let city = db.catalog().relation_id("CITY").unwrap();
        let pisa = db
            .table(city)
            .unwrap()
            .rows()
            .find(|r| r[1] == Value::str("Pisa"))
            .expect("Pisa generated");
        assert_eq!(pisa[0], Value::Int(0));
    }

    #[test]
    fn deterministic() {
        let a = generate_tourism_db(&TourismConfig::default());
        let b = generate_tourism_db(&TourismConfig::default());
        let rest = a.catalog().relation_id("RESTAURANT").unwrap();
        let ra: Vec<_> = a.table(rest).unwrap().rows().cloned().collect();
        let rb: Vec<_> = b.table(rest).unwrap().rows().cloned().collect();
        assert_eq!(ra, rb);
    }
}
