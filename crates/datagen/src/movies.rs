//! The IMDb-like movie database generator.
//!
//! Schema (a superset of the paper's Section 3 example):
//!
//! ```text
//! MOVIE(mid, title, year, duration, did)
//! DIRECTOR(did, name)
//! GENRE(mid, genre)
//! ACTOR(aid, name)
//! CASTS(mid, aid)
//! ```
//!
//! Value distributions are Zipf-skewed — a few prolific directors, popular
//! genres and busy actors dominate, as in the real IMDb — which gives the
//! statistics module realistic selectivity spreads.

use crate::zipf::Zipf;
use cqp_storage::{DataType, Database, RelationSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The genre vocabulary.
pub const GENRES: [&str; 16] = [
    "drama",
    "comedy",
    "action",
    "thriller",
    "romance",
    "crime",
    "adventure",
    "sci-fi",
    "horror",
    "musical",
    "fantasy",
    "mystery",
    "war",
    "western",
    "animation",
    "documentary",
];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct MovieDbConfig {
    /// Number of movies.
    pub movies: usize,
    /// Number of directors.
    pub directors: usize,
    /// Number of actors.
    pub actors: usize,
    /// Genre rows per movie (minimum 1).
    pub genres_per_movie: usize,
    /// Cast rows per movie (minimum 1).
    pub cast_per_movie: usize,
    /// Tuples per block.
    pub block_capacity: usize,
    /// Zipf skew applied to directors, genres, and actors.
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MovieDbConfig {
    fn default() -> Self {
        MovieDbConfig {
            movies: 3000,
            directors: 300,
            actors: 2000,
            genres_per_movie: 2,
            cast_per_movie: 5,
            block_capacity: 64,
            theta: 0.9,
            seed: 42,
        }
    }
}

impl MovieDbConfig {
    /// A small configuration for unit tests (fast to build and analyze).
    pub fn tiny(seed: u64) -> Self {
        MovieDbConfig {
            movies: 200,
            directors: 20,
            actors: 100,
            genres_per_movie: 2,
            cast_per_movie: 3,
            block_capacity: 16,
            theta: 0.9,
            seed,
        }
    }
}

/// Generates the movie database.
pub fn generate_movie_db(config: &MovieDbConfig) -> Database {
    assert!(config.movies > 0 && config.directors > 0 && config.actors > 0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::with_block_capacity(config.block_capacity);

    db.create_relation(RelationSchema::new(
        "MOVIE",
        vec![
            ("mid", DataType::Int),
            ("title", DataType::Str),
            ("year", DataType::Int),
            ("duration", DataType::Int),
            ("did", DataType::Int),
        ],
    ))
    .expect("fresh database");
    db.create_relation(RelationSchema::new(
        "DIRECTOR",
        vec![("did", DataType::Int), ("name", DataType::Str)],
    ))
    .expect("fresh database");
    db.create_relation(RelationSchema::new(
        "GENRE",
        vec![("mid", DataType::Int), ("genre", DataType::Str)],
    ))
    .expect("fresh database");
    db.create_relation(RelationSchema::new(
        "ACTOR",
        vec![("aid", DataType::Int), ("name", DataType::Str)],
    ))
    .expect("fresh database");
    db.create_relation(RelationSchema::new(
        "CASTS",
        vec![("mid", DataType::Int), ("aid", DataType::Int)],
    ))
    .expect("fresh database");

    let director_z = Zipf::new(config.directors, config.theta);
    let genre_z = Zipf::new(GENRES.len(), config.theta);
    let actor_z = Zipf::new(config.actors, config.theta);
    let year_z = Zipf::new(60, 0.5); // recent years more common

    for d in 0..config.directors {
        db.insert_into(
            "DIRECTOR",
            vec![Value::Int(d as i64), Value::str(director_name(d))],
        )
        .expect("valid row");
    }
    for a in 0..config.actors {
        db.insert_into(
            "ACTOR",
            vec![Value::Int(a as i64), Value::str(actor_name(a))],
        )
        .expect("valid row");
    }

    for m in 0..config.movies {
        let year = 2005 - year_z.sample(&mut rng) as i64;
        let duration = 60 + rng.gen_range(0..120) as i64;
        let did = director_z.sample(&mut rng) as i64;
        db.insert_into(
            "MOVIE",
            vec![
                Value::Int(m as i64),
                Value::str(format!("Movie #{m:05}")),
                Value::Int(year),
                Value::Int(duration),
                Value::Int(did),
            ],
        )
        .expect("valid row");

        // Distinct genres per movie.
        let mut genres: Vec<usize> = Vec::new();
        while genres.len() < config.genres_per_movie.max(1).min(GENRES.len()) {
            let g = genre_z.sample(&mut rng);
            if !genres.contains(&g) {
                genres.push(g);
            }
        }
        for g in genres {
            db.insert_into("GENRE", vec![Value::Int(m as i64), Value::str(GENRES[g])])
                .expect("valid row");
        }

        // Distinct cast members per movie.
        let mut cast: Vec<usize> = Vec::new();
        let want = config.cast_per_movie.max(1).min(config.actors);
        while cast.len() < want {
            let a = actor_z.sample(&mut rng);
            if !cast.contains(&a) {
                cast.push(a);
            }
        }
        for a in cast {
            db.insert_into("CASTS", vec![Value::Int(m as i64), Value::Int(a as i64)])
                .expect("valid row");
        }
    }

    db
}

/// Deterministic director name for an id.
pub fn director_name(d: usize) -> String {
    format!("Director {d:04}")
}

/// Deterministic actor name for an id.
pub fn actor_name(a: usize) -> String {
    format!("Actor {a:05}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_shape() {
        let db = generate_movie_db(&MovieDbConfig::tiny(1));
        let c = db.catalog();
        assert_eq!(c.len(), 5);
        let movie = c.relation_id("MOVIE").unwrap();
        let genre = c.relation_id("GENRE").unwrap();
        let casts = c.relation_id("CASTS").unwrap();
        assert_eq!(db.table(movie).unwrap().num_rows(), 200);
        assert_eq!(db.table(genre).unwrap().num_rows(), 400);
        assert_eq!(db.table(casts).unwrap().num_rows(), 600);
        assert!(db.total_blocks() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_movie_db(&MovieDbConfig::tiny(5));
        let b = generate_movie_db(&MovieDbConfig::tiny(5));
        let movie = a.catalog().relation_id("MOVIE").unwrap();
        let rows_a: Vec<_> = a.table(movie).unwrap().rows().cloned().collect();
        let rows_b: Vec<_> = b.table(movie).unwrap().rows().cloned().collect();
        assert_eq!(rows_a, rows_b);
        let c = generate_movie_db(&MovieDbConfig::tiny(6));
        let rows_c: Vec<_> = c.table(movie).unwrap().rows().cloned().collect();
        assert_ne!(rows_a, rows_c);
    }

    #[test]
    fn genres_are_skewed() {
        let db = generate_movie_db(&MovieDbConfig::tiny(2));
        let stats = db.analyze();
        let genre = db.catalog().relation_id("GENRE").unwrap();
        let col = &stats.table(genre.index()).unwrap().columns[1];
        // The most common genre covers clearly more than a uniform share.
        let top = col.mcv[0].1 as f64 / col.n_rows as f64;
        assert!(top > 1.5 / GENRES.len() as f64, "top share {top}");
    }

    #[test]
    fn referential_integrity() {
        let db = generate_movie_db(&MovieDbConfig::tiny(3));
        let c = db.catalog();
        let movie = c.relation_id("MOVIE").unwrap();
        let n_directors = db
            .table(c.relation_id("DIRECTOR").unwrap())
            .unwrap()
            .num_rows();
        for row in db.table(movie).unwrap().rows() {
            let Value::Int(did) = row[4] else {
                panic!("did must be int")
            };
            assert!((did as usize) < n_directors);
        }
    }
}
