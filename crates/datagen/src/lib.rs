//! # cqp-datagen
//!
//! Seeded synthetic workloads for the CQP experiments.
//!
//! The paper evaluated on the Internet Movie Database [7] with the
//! evaluation setting of [12] — "a broad range of doi values, doi-value
//! deviations, queries, etc." (Section 7). Neither artefact is available,
//! and the experiments depend only on *statistical shape*: relation block
//! counts, attribute selectivities, and the distribution of preference
//! dois. This crate regenerates that shape deterministically:
//!
//! * [`movies`] — an IMDb-like database (MOVIE, DIRECTOR, GENRE, ACTOR,
//!   CASTS) with Zipf-skewed value distributions,
//! * [`tourism`] — the tourist-information schema of the paper's
//!   introduction (Al planning his trip to Pisa),
//! * [`profiles`] — random user profiles over either schema,
//! * [`queries`] — query workloads (the experiments average over
//!   20 profiles × 10 queries per data point),
//! * [`zipf`] — the skew engine underneath.

pub mod movies;
pub mod profiles;
pub mod queries;
pub mod tourism;
pub mod zipf;

pub use movies::{generate_movie_db, MovieDbConfig};
pub use profiles::{generate_movie_profile, ProfileGenConfig};
pub use queries::{generate_movie_queries, QueryGenConfig};
pub use tourism::{generate_tourism_db, TourismConfig};
pub use zipf::Zipf;
