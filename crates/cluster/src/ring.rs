//! Consistent-hash ring: user → shard-group placement.
//!
//! Classic Karger-style consistent hashing with virtual nodes: each
//! group contributes `vnodes` points on a `u64` circle (FNV-1a over
//! `"{name}#{i}"`), and a key lands on the first point clockwise from
//! its own hash. Two properties make this the right placement function
//! for a session-sharded cluster:
//!
//! * **Balance** — with enough virtual nodes, group loads concentrate
//!   near `keys / groups` (the property test bounds the max/min ratio).
//! * **Minimal movement** — adding a group only *steals* keys for the
//!   new group, and removing one only *re-homes* the removed group's
//!   keys: a key whose group survives the change never moves. That is
//!   what keeps WAL-shipped session state mostly in place during
//!   topology changes, unlike `hash(key) % n` which reshuffles nearly
//!   everything.
//!
//! The hash is the shared workspace FNV-1a
//! ([`cqp_core::answer_cache::fnv1a`]) finished with the shared
//! splitmix64 mixer: FNV alone leaves sequential keys (`user0001`,
//! `user0002`, …) clustered in the high bits that decide ring position,
//! and the finalizer disperses them. Placement is deterministic across
//! processes and runs, so the router, the bench, and the tests all
//! agree on who owns a user.

use cqp_core::answer_cache::{fnv1a, FNV_OFFSET};
use rand::splitmix64_mix;

/// Virtual nodes per group when none is specified. 128 keeps the
/// balance ratio comfortably under 2 for single-digit group counts
/// while the ring stays tiny (an 8-group ring is 1024 points).
pub const DEFAULT_VNODES: usize = 128;

/// A consistent-hash ring over named groups.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, group index)` sorted by point.
    points: Vec<(u64, usize)>,
    groups: Vec<String>,
    vnodes: usize,
}

/// The stable key hash: where `key` sits on the circle.
pub fn key_point(key: &str) -> u64 {
    splitmix64_mix(fnv1a(FNV_OFFSET, key.as_bytes()))
}

impl Ring {
    /// An empty ring with `vnodes` virtual nodes per group (≥ 1).
    pub fn new(vnodes: usize) -> Self {
        Ring {
            points: Vec::new(),
            groups: Vec::new(),
            vnodes: vnodes.max(1),
        }
    }

    /// A ring over `names` with [`DEFAULT_VNODES`].
    pub fn with_groups<S: AsRef<str>>(names: &[S]) -> Self {
        let mut ring = Ring::new(DEFAULT_VNODES);
        for n in names {
            ring.add_group(n.as_ref());
        }
        ring
    }

    /// Group names in insertion order.
    pub fn groups(&self) -> &[String] {
        &self.groups
    }

    /// Number of groups on the ring.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no group has been added.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Adds a group; duplicate names are ignored (the ring is a set).
    pub fn add_group(&mut self, name: &str) {
        if self.groups.iter().any(|g| g == name) {
            return;
        }
        let index = self.groups.len();
        self.groups.push(name.to_string());
        for i in 0..self.vnodes {
            let point = splitmix64_mix(fnv1a(FNV_OFFSET, format!("{name}#{i}").as_bytes()));
            self.points.push((point, index));
        }
        // Sort by point; ties (astronomically unlikely with 64-bit FNV)
        // break by group index so placement stays deterministic.
        self.points.sort_unstable();
    }

    /// Removes a group (no-op when absent). Keys it owned re-home to
    /// their next point clockwise; everyone else stays put.
    pub fn remove_group(&mut self, name: &str) {
        let Some(index) = self.groups.iter().position(|g| g == name) else {
            return;
        };
        self.groups.remove(index);
        self.points.retain(|(_, g)| *g != index);
        // Indices above the removed one shift down by one.
        for (_, g) in &mut self.points {
            if *g > index {
                *g -= 1;
            }
        }
    }

    /// The group owning `key`: the first virtual node clockwise from the
    /// key's point (wrapping). `None` on an empty ring.
    pub fn place(&self, key: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let point = key_point(key);
        let i = self.points.partition_point(|(p, _)| *p < point);
        let (_, group) = self.points[if i == self.points.len() { 0 } else { i }];
        Some(&self.groups[group])
    }

    /// Per-group key counts for `keys` — the balance diagnostic the
    /// property tests and `BENCH_cluster.json` report.
    pub fn load<S: AsRef<str>>(&self, keys: &[S]) -> Vec<(String, usize)> {
        let mut counts = vec![0usize; self.groups.len()];
        for k in keys {
            if let Some(g) = self.place(k.as_ref()) {
                let idx = self.groups.iter().position(|n| n == g).unwrap();
                counts[idx] += 1;
            }
        }
        self.groups.iter().cloned().zip(counts).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("user{i:05}")).collect()
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let ring = Ring::with_groups(&["g0", "g1", "g2"]);
        let again = Ring::with_groups(&["g0", "g1", "g2"]);
        for k in keys(500) {
            let g = ring.place(&k).unwrap();
            assert_eq!(Some(g), again.place(&k));
            assert!(ring.groups().iter().any(|n| n == g));
        }
        assert_eq!(Ring::new(8).place("anyone"), None);
    }

    #[test]
    fn duplicate_add_is_ignored_and_remove_is_safe() {
        let mut ring = Ring::with_groups(&["a", "b"]);
        ring.add_group("a");
        assert_eq!(ring.len(), 2);
        ring.remove_group("missing");
        assert_eq!(ring.len(), 2);
        ring.remove_group("a");
        assert_eq!(ring.len(), 1);
        for k in keys(100) {
            assert_eq!(ring.place(&k), Some("b"));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Balance: across 2–8 groups and 10k keys, the most loaded
        /// group holds at most 4× the least loaded — the virtual-node
        /// concentration bound, far from `%`-free-for-all but loose
        /// enough to never flake under FNV's fixed geometry.
        #[test]
        fn load_ratio_is_bounded(groups in 2usize..=8, salt in 0u64..1000) {
            let names: Vec<String> =
                (0..groups).map(|i| format!("shard-{salt}-{i}")).collect();
            let ring = Ring::with_groups(&names);
            let load = ring.load(&keys(10_000));
            let max = load.iter().map(|(_, c)| *c).max().unwrap();
            let min = load.iter().map(|(_, c)| *c).min().unwrap();
            prop_assert!(min > 0, "a group got zero keys: {load:?}");
            prop_assert!(
                (max as f64) / (min as f64) <= 4.0,
                "load ratio {max}/{min} exceeds 4.0: {load:?}"
            );
        }

        /// Minimal movement, join: adding a group only *steals* keys —
        /// every key either keeps its old group or moves to the new one,
        /// and the stolen fraction stays near 1/(n+1).
        #[test]
        fn join_moves_only_to_the_new_group(groups in 2usize..=8, salt in 0u64..1000) {
            let names: Vec<String> =
                (0..groups).map(|i| format!("shard-{salt}-{i}")).collect();
            let mut ring = Ring::with_groups(&names);
            let ks = keys(5_000);
            let before: Vec<String> =
                ks.iter().map(|k| ring.place(k).unwrap().to_string()).collect();
            ring.add_group("joiner");
            let mut stolen = 0usize;
            for (k, old) in ks.iter().zip(&before) {
                let now = ring.place(k).unwrap();
                if now != old {
                    prop_assert_eq!(now, "joiner", "key {} moved between old groups", k);
                    stolen += 1;
                }
            }
            // Expected share 1/(n+1); allow 3× plus slack for FNV's
            // fixed arc lengths.
            let expected = ks.len() / (groups + 1);
            prop_assert!(
                stolen <= 3 * expected + 100,
                "join stole {stolen} keys, expected ~{expected}"
            );
        }

        /// Minimal movement, leave: removing a group re-homes only its
        /// own keys; keys on surviving groups never move.
        #[test]
        fn leave_moves_only_the_removed_groups_keys(groups in 2usize..=8, salt in 0u64..1000) {
            let names: Vec<String> =
                (0..groups).map(|i| format!("shard-{salt}-{i}")).collect();
            let mut ring = Ring::with_groups(&names);
            let ks = keys(5_000);
            let victim = names[(salt as usize) % names.len()].clone();
            let before: Vec<String> =
                ks.iter().map(|k| ring.place(k).unwrap().to_string()).collect();
            ring.remove_group(&victim);
            for (k, old) in ks.iter().zip(&before) {
                let now = ring.place(k).unwrap();
                if *old == victim {
                    prop_assert!(now != victim);
                } else {
                    prop_assert_eq!(now, old, "surviving key {} moved", k);
                }
            }
        }
    }
}
