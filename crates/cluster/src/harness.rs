//! In-process cluster harness: N primary/follower shard groups behind a
//! router, all in one process.
//!
//! This is the CI-runnable shape of the distributed tier: every replica
//! is a real `cqp-server` instance with its own WAL directory, real
//! loopback sockets, and a real replication stream — only the process
//! boundary is folded away so tests can reach into [`ServerHandle`]s
//! (stop a primary, dump a store) without signals. The `reproduce
//! cluster` bench uses actual child `serverd` processes for the SIGKILL
//! failover audit; everything else runs on this harness.

use crate::nemesis::{start_nemesis, NemesisHandle};
use crate::router::{start_router, RouterConfig, RouterHandle, RoutingPolicy, ShardSpec};
use cqp_datagen::{generate_movie_db, MovieDbConfig};
use cqp_server::{start, ServerConfig, ServerHandle};
use cqp_storage::Database;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Cluster topology knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Shard groups; each gets one primary and one follower.
    pub groups: usize,
    /// Datagen database seed (all replicas share the database).
    pub seed: u64,
    /// Read-routing policy for the router.
    pub policy: RoutingPolicy,
    /// Root directory for WAL storage: group `i` journals under
    /// `root/g{i}/primary` and `root/g{i}/follower`.
    pub root: PathBuf,
    /// Router health-probe period (also the failover detection bound).
    pub probe_interval: Duration,
    /// When `true`, every link — primary HTTP, follower HTTP, and the
    /// replication stream — is fronted by a [`crate::nemesis`] proxy so
    /// tests can partition, delay, or flap any of them independently.
    pub nemesis: bool,
}

impl ClusterConfig {
    /// A `groups`-group cluster journaling under `root`.
    pub fn new(groups: usize, root: impl Into<PathBuf>) -> ClusterConfig {
        ClusterConfig {
            groups,
            seed: 7,
            policy: RoutingPolicy::Divergent,
            root: root.into(),
            probe_interval: Duration::from_millis(100),
            nemesis: false,
        }
    }

    /// Same, with every link nemesis-fronted for partition testing.
    pub fn with_nemesis(groups: usize, root: impl Into<PathBuf>) -> ClusterConfig {
        ClusterConfig {
            nemesis: true,
            ..ClusterConfig::new(groups, root)
        }
    }
}

/// The nemesis proxies fronting one group's links (present when
/// [`ClusterConfig::nemesis`] is set).
#[derive(Debug)]
pub struct GroupNemesis {
    /// Fronts the replication stream (follower connects through this).
    pub repl: NemesisHandle,
    /// Fronts the primary's HTTP endpoint (what the router probes and
    /// writes through).
    pub primary_http: NemesisHandle,
    /// Fronts the follower's HTTP endpoint.
    pub follower_http: NemesisHandle,
}

/// One running shard group.
#[derive(Debug)]
pub struct ClusterGroup {
    /// Ring name (`g{i}`) — what the router places users onto.
    pub name: String,
    /// The initial primary (ships its WAL to the follower).
    pub primary: ServerHandle,
    /// The follower (applies the stream; promotable).
    pub follower: ServerHandle,
    /// Fault-injection proxies fronting this group's links, when the
    /// cluster was started with [`ClusterConfig::nemesis`].
    pub nemesis: Option<GroupNemesis>,
}

/// A running in-process cluster.
#[derive(Debug)]
pub struct Cluster {
    /// The shard groups, index-aligned with the router's ring names.
    pub groups: Vec<ClusterGroup>,
    /// The front door.
    pub router: RouterHandle,
    db: Arc<Database>,
}

impl Cluster {
    /// Boots `config.groups` primary/follower pairs and a router over
    /// them. Stores start empty — populate through the router so ring
    /// placement is real.
    pub fn start(config: ClusterConfig) -> io::Result<Cluster> {
        let db = Arc::new(generate_movie_db(&MovieDbConfig::tiny(config.seed)));
        let mut groups = Vec::with_capacity(config.groups);
        let mut shards = Vec::with_capacity(config.groups);
        for i in 0..config.groups {
            let name = format!("g{i}");
            let primary = start(
                Arc::clone(&db),
                ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    wal_dir: Some(config.root.join(&name).join("primary")),
                    repl_listen: Some("127.0.0.1:0".into()),
                    seed_users: 0,
                    seed: config.seed,
                    ..Default::default()
                },
            )?;
            let repl_addr = primary.repl_addr().ok_or_else(|| {
                io::Error::other("primary started without a replication listener")
            })?;
            // With the nemesis enabled, the follower follows *through*
            // the repl proxy and the router reaches both replicas
            // *through* the HTTP proxies — so tests can cut any link.
            let repl_nemesis = if config.nemesis {
                Some(start_nemesis(repl_addr)?)
            } else {
                None
            };
            let follow_addr = repl_nemesis.as_ref().map(|n| n.addr()).unwrap_or(repl_addr);
            let follower = start(
                Arc::clone(&db),
                ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    wal_dir: Some(config.root.join(&name).join("follower")),
                    follow: Some(follow_addr.to_string()),
                    seed_users: 0,
                    seed: config.seed,
                    ..Default::default()
                },
            )?;
            let (nemesis, replicas) = if let Some(repl) = repl_nemesis {
                let primary_http = start_nemesis(primary.addr())?;
                let follower_http = start_nemesis(follower.addr())?;
                let replicas = vec![primary_http.addr(), follower_http.addr()];
                (
                    Some(GroupNemesis {
                        repl,
                        primary_http,
                        follower_http,
                    }),
                    replicas,
                )
            } else {
                (None, vec![primary.addr(), follower.addr()])
            };
            shards.push(ShardSpec {
                name: name.clone(),
                replicas,
            });
            groups.push(ClusterGroup {
                name,
                primary,
                follower,
                nemesis,
            });
        }
        let router = start_router(RouterConfig {
            shards,
            policy: config.policy,
            probe_interval: config.probe_interval,
            ..Default::default()
        })?;
        Ok(Cluster { groups, router, db })
    }

    /// The shared movie database every replica serves.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Stops the router, then every replica (drains in-flight work),
    /// then the nemesis proxies.
    pub fn stop(&mut self) {
        self.router.stop();
        for group in &mut self.groups {
            group.primary.stop();
            group.follower.stop();
            if let Some(nemesis) = &mut group.nemesis {
                nemesis.repl.stop();
                nemesis.primary_http.stop();
                nemesis.follower_http.stop();
            }
        }
    }
}
