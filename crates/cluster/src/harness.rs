//! In-process cluster harness: N primary/follower shard groups behind a
//! router, all in one process.
//!
//! This is the CI-runnable shape of the distributed tier: every replica
//! is a real `cqp-server` instance with its own WAL directory, real
//! loopback sockets, and a real replication stream — only the process
//! boundary is folded away so tests can reach into [`ServerHandle`]s
//! (stop a primary, dump a store) without signals. The `reproduce
//! cluster` bench uses actual child `serverd` processes for the SIGKILL
//! failover audit; everything else runs on this harness.

use crate::router::{start_router, RouterConfig, RouterHandle, RoutingPolicy, ShardSpec};
use cqp_datagen::{generate_movie_db, MovieDbConfig};
use cqp_server::{start, ServerConfig, ServerHandle};
use cqp_storage::Database;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Cluster topology knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Shard groups; each gets one primary and one follower.
    pub groups: usize,
    /// Datagen database seed (all replicas share the database).
    pub seed: u64,
    /// Read-routing policy for the router.
    pub policy: RoutingPolicy,
    /// Root directory for WAL storage: group `i` journals under
    /// `root/g{i}/primary` and `root/g{i}/follower`.
    pub root: PathBuf,
    /// Router health-probe period (also the failover detection bound).
    pub probe_interval: Duration,
}

impl ClusterConfig {
    /// A `groups`-group cluster journaling under `root`.
    pub fn new(groups: usize, root: impl Into<PathBuf>) -> ClusterConfig {
        ClusterConfig {
            groups,
            seed: 7,
            policy: RoutingPolicy::Divergent,
            root: root.into(),
            probe_interval: Duration::from_millis(100),
        }
    }
}

/// One running shard group.
#[derive(Debug)]
pub struct ClusterGroup {
    /// Ring name (`g{i}`) — what the router places users onto.
    pub name: String,
    /// The initial primary (ships its WAL to the follower).
    pub primary: ServerHandle,
    /// The follower (applies the stream; promotable).
    pub follower: ServerHandle,
}

/// A running in-process cluster.
#[derive(Debug)]
pub struct Cluster {
    /// The shard groups, index-aligned with the router's ring names.
    pub groups: Vec<ClusterGroup>,
    /// The front door.
    pub router: RouterHandle,
    db: Arc<Database>,
}

impl Cluster {
    /// Boots `config.groups` primary/follower pairs and a router over
    /// them. Stores start empty — populate through the router so ring
    /// placement is real.
    pub fn start(config: ClusterConfig) -> io::Result<Cluster> {
        let db = Arc::new(generate_movie_db(&MovieDbConfig::tiny(config.seed)));
        let mut groups = Vec::with_capacity(config.groups);
        let mut shards = Vec::with_capacity(config.groups);
        for i in 0..config.groups {
            let name = format!("g{i}");
            let primary = start(
                Arc::clone(&db),
                ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    wal_dir: Some(config.root.join(&name).join("primary")),
                    repl_listen: Some("127.0.0.1:0".into()),
                    seed_users: 0,
                    seed: config.seed,
                    ..Default::default()
                },
            )?;
            let repl_addr = primary.repl_addr().ok_or_else(|| {
                io::Error::other("primary started without a replication listener")
            })?;
            let follower = start(
                Arc::clone(&db),
                ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    wal_dir: Some(config.root.join(&name).join("follower")),
                    follow: Some(repl_addr.to_string()),
                    seed_users: 0,
                    seed: config.seed,
                    ..Default::default()
                },
            )?;
            shards.push(ShardSpec {
                name: name.clone(),
                replicas: vec![primary.addr(), follower.addr()],
            });
            groups.push(ClusterGroup {
                name,
                primary,
                follower,
            });
        }
        let router = start_router(RouterConfig {
            shards,
            policy: config.policy,
            probe_interval: config.probe_interval,
            ..Default::default()
        })?;
        Ok(Cluster { groups, router, db })
    }

    /// The shared movie database every replica serves.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Stops the router, then every replica (drains in-flight work).
    pub fn stop(&mut self) {
        self.router.stop();
        for group in &mut self.groups {
            group.primary.stop();
            group.follower.stop();
        }
    }
}
