//! cqp-cluster — the distributed tier: a consistent-hash router over
//! WAL-shipping shard groups.
//!
//! One shard group = a primary `cqp-server` plus a follower joined by
//! the synchronous replication stream (`cqp_server::repl`): the primary
//! acknowledges a profile write only after the follower has applied it,
//! so killing a primary loses no acknowledged write. The router
//! ([`start_router`]) places users on groups with a consistent-hash
//! [`Ring`], sends writes to primaries (no retry — failover instead),
//! and routes reads *divergently*: each canonical SQL template class is
//! pinned to one replica so that replica's answer/cost caches stay warm
//! for it, instead of every replica paying every cold miss.
//!
//! Five layers:
//!
//! * [`ring`] — placement (balance + minimal movement, property-tested).
//! * [`router`] — the HTTP front door: routing, failover, health
//!   probes, epoch fencing.
//! * [`harness`] — an in-process N-group cluster for tests and benches,
//!   optionally with every link fronted by a nemesis proxy.
//! * [`nemesis`] — a deterministic, seeded TCP fault injector
//!   (partition / delay / connection-drop) for partition testing.
//! * [`checker`] — the acked-write consistency checker that decides
//!   whether a partition schedule lost or diverged any acknowledged
//!   write.
//!
//! The `routerd` binary wraps [`start_router`] for real multi-process
//! deployments (see `serverd --repl-listen/--follow` for the replicas).

pub mod checker;
pub mod harness;
pub mod nemesis;
pub mod ring;
pub mod router;

pub use checker::{check, AckLog, AckedWrite, ConsistencyReport, ReplicaDump};
pub use harness::{Cluster, ClusterConfig, ClusterGroup, GroupNemesis};
pub use nemesis::{start_nemesis, Fault, NemesisCounters, NemesisHandle, NemesisPlan, PlanStep};
pub use ring::{key_point, Ring, DEFAULT_VNODES};
pub use router::{start_router, Router, RouterConfig, RouterHandle, RoutingPolicy, ShardSpec};
