//! cqp-cluster — the distributed tier: a consistent-hash router over
//! WAL-shipping shard groups.
//!
//! One shard group = a primary `cqp-server` plus a follower joined by
//! the synchronous replication stream (`cqp_server::repl`): the primary
//! acknowledges a profile write only after the follower has applied it,
//! so killing a primary loses no acknowledged write. The router
//! ([`start_router`]) places users on groups with a consistent-hash
//! [`Ring`], sends writes to primaries (no retry — failover instead),
//! and routes reads *divergently*: each canonical SQL template class is
//! pinned to one replica so that replica's answer/cost caches stay warm
//! for it, instead of every replica paying every cold miss.
//!
//! Three layers:
//!
//! * [`ring`] — placement (balance + minimal movement, property-tested).
//! * [`router`] — the HTTP front door: routing, failover, health probes.
//! * [`harness`] — an in-process N-group cluster for tests and benches.
//!
//! The `routerd` binary wraps [`start_router`] for real multi-process
//! deployments (see `serverd --repl-listen/--follow` for the replicas).

pub mod harness;
pub mod ring;
pub mod router;

pub use harness::{Cluster, ClusterConfig, ClusterGroup};
pub use ring::{key_point, Ring, DEFAULT_VNODES};
pub use router::{start_router, Router, RouterConfig, RouterHandle, RoutingPolicy, ShardSpec};
