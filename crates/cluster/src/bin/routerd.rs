//! `routerd` — a standalone consistent-hash router process.
//!
//! Fronts N shard groups of `serverd` replicas (primary/follower pairs
//! wired with `--repl-listen`/`--follow`). CI's kill-primary smoke
//! drives this binary against three child `serverd` processes.
//!
//! ```text
//! routerd --addr 127.0.0.1:9100 \
//!         --shard g0=127.0.0.1:9142,127.0.0.1:9143 \
//!         --shard g1=127.0.0.1:9144,127.0.0.1:9145 \
//!         [--routing divergent|uniform] [--probe-ms N]
//! ```
//!
//! Each `--shard` is `name=primary[,follower...]` — the first address
//! starts as the group's primary. The last line printed on successful
//! boot is `routing on ADDR` (the readiness contract with spawners).

use cqp_cluster::{start_router, RouterConfig, RoutingPolicy, ShardSpec};
use std::net::SocketAddr;
use std::time::Duration;

fn main() {
    let mut config = RouterConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("routerd: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--shard" => {
                let spec = value("--shard");
                let Some((name, addrs)) = spec.split_once('=') else {
                    eprintln!("routerd: --shard wants name=addr[,addr...], got {spec:?}");
                    std::process::exit(2);
                };
                let replicas: Vec<SocketAddr> = addrs
                    .split(',')
                    .map(|a| {
                        a.parse().unwrap_or_else(|_| {
                            eprintln!("routerd: bad replica address {a:?} in --shard {spec:?}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                config.shards.push(ShardSpec {
                    name: name.to_string(),
                    replicas,
                });
            }
            "--routing" => {
                let v = value("--routing");
                config.policy = RoutingPolicy::parse(&v).unwrap_or_else(|| {
                    eprintln!("routerd: --routing must be 'divergent' or 'uniform'");
                    std::process::exit(2);
                });
            }
            "--probe-ms" => {
                let ms: u64 = value("--probe-ms").parse().unwrap_or_else(|_| {
                    eprintln!("routerd: --probe-ms must be an integer");
                    std::process::exit(2);
                });
                config.probe_interval = Duration::from_millis(ms.max(1));
            }
            "--help" | "-h" => {
                println!(
                    "routerd — consistent-hash router over serverd shard groups\n\
                     \n\
                     usage: routerd --shard name=primary[,follower...] [FLAGS]\n\
                     \n\
                     \x20 --addr HOST:PORT   bind address (default 127.0.0.1:0 = ephemeral port)\n\
                     \x20 --shard SPEC       add a shard group, name=addr[,addr...]; repeatable;\n\
                     \x20                    the first address starts as the group's primary\n\
                     \x20 --routing POLICY   read routing: 'divergent' pins each canonical SQL\n\
                     \x20                    template class to one replica (warm caches);\n\
                     \x20                    'uniform' alternates replicas (default divergent)\n\
                     \x20 --probe-ms N       health-probe period, milliseconds (default 250)\n\
                     \n\
                     Routes /profiles/{{user}} (writes to the group primary, no retry;\n\
                     failover on primary death) and /personalize (policy-routed reads).\n\
                     GET /router/stats reports counters and topology; GET /healthz/live\n\
                     answers from the router itself.\n\
                     \n\
                     The readiness contract: the last line printed on successful boot is\n\
                     `routing on ADDR`."
                );
                return;
            }
            other => {
                eprintln!("routerd: unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let policy = config.policy;
    let shards = config.shards.len();
    let mut handle = match start_router(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("routerd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    // The "routing on" line is the readiness contract with CI scripts.
    println!(
        "routing on {} ({} shard groups, {} reads)",
        handle.addr(),
        shards,
        policy.as_str()
    );
    wait_for_termination();
    // Graceful drain: stop() unblocks and joins the accept loop and the
    // probe thread; in-flight connection handlers (each owning its
    // pooled backend connections) finish their current exchange and
    // exit, closing those connections with them.
    eprintln!("routerd: termination signal received, draining");
    handle.stop();
    std::process::exit(0);
}

/// Parks until SIGTERM/SIGINT on Linux; forever elsewhere (the process
/// dies with the default signal disposition there, as before).
fn wait_for_termination() {
    #[cfg(target_os = "linux")]
    {
        if cqp_sys::install_termination_flag().is_ok() {
            while !cqp_sys::termination_requested() {
                std::thread::sleep(Duration::from_millis(100));
            }
            return;
        }
    }
    loop {
        std::thread::park();
    }
}
