//! A deterministic partition nemesis: a seeded TCP fault-injection
//! proxy for cluster links.
//!
//! The nemesis sits between two real sockets — router→serverd, or the
//! primary→follower replication stream — and forwards bytes until told
//! to misbehave. Faults are the classic partition-test repertoire:
//!
//! * [`Fault::Partition`] — refuse new connections **and** sever every
//!   established one, both directions. This is what a switch failure
//!   looks like to TCP: existing streams die mid-flight, reconnects
//!   fail fast.
//! * [`Fault::Delay`] — forward every chunk after a fixed pause, in
//!   both directions (a slow or congested link).
//! * [`Fault::DropEveryNth`] — accept then immediately drop every
//!   `n`-th connection (a flapping link that kills some handshakes).
//! * [`Fault::Open`] — heal: forward everything again.
//!
//! Two properties make it a *nemesis* rather than a toy proxy:
//!
//! 1. **Determinism.** Nothing in here consults a wall clock or an OS
//!    RNG for decisions. Fault *schedules* come from a seeded
//!    [`NemesisPlan`] (splitmix64, same discipline as the chaos
//!    client), so a failing partition test replays byte-for-byte from
//!    its seed.
//! 2. **Severability.** Partitioning does not wait for in-flight
//!    requests to finish: the proxy keeps handles to both legs of every
//!    live connection and calls `shutdown(Both)` on them, so a write
//!    caught mid-replication observes a genuine connection reset — the
//!    case the epoch-fencing protocol exists for.
//!
//! The harness ([`crate::harness`]) can front every link of an
//! in-process cluster with one of these; `reproduce partition` drives
//! the split-brain schedule through it.

use rand::{splitmix64, splitmix64_mix};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// What the link is currently doing to traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Healthy: forward everything.
    Open,
    /// Refuse new connections and sever established ones.
    Partition,
    /// Forward each chunk after `ms` milliseconds, both directions.
    Delay {
        /// Added one-way latency per forwarded chunk.
        ms: u64,
    },
    /// Accept, then immediately drop, every `n`-th connection.
    DropEveryNth {
        /// Drop cadence; `n = 1` drops everything.
        n: u64,
    },
}

impl Fault {
    /// The wire/report name of this fault.
    pub fn as_str(&self) -> &'static str {
        match self {
            Fault::Open => "open",
            Fault::Partition => "partition",
            Fault::Delay { .. } => "delay",
            Fault::DropEveryNth { .. } => "drop_every_nth",
        }
    }
}

/// Monotonic nemesis counters (diagnostics, `Ordering::Relaxed`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NemesisCounters {
    /// Connections accepted and proxied.
    pub proxied: u64,
    /// Connections refused at accept time (partition or drop cadence).
    pub refused: u64,
    /// Established connections severed by a partition.
    pub severed: u64,
    /// Chunks forwarded late under a delay fault.
    pub delayed_chunks: u64,
}

/// Shared proxy state: current fault, live-connection registry,
/// counters.
#[derive(Debug)]
struct NemesisState {
    upstream: SocketAddr,
    fault: Mutex<Fault>,
    /// Both legs of every live connection, kept so a partition can
    /// sever them without waiting for the pumps to notice.
    conns: Mutex<Vec<(TcpStream, TcpStream)>>,
    accepted_seq: AtomicU64,
    proxied: AtomicU64,
    refused: AtomicU64,
    severed: AtomicU64,
    delayed_chunks: AtomicU64,
    stopping: AtomicBool,
}

/// A running nemesis proxy; dropping it stops the proxy.
#[derive(Debug)]
pub struct NemesisHandle {
    addr: SocketAddr,
    state: Arc<NemesisState>,
    accept: Option<JoinHandle<()>>,
    driver: Option<JoinHandle<()>>,
}

/// Starts a nemesis proxy on an ephemeral loopback port, forwarding to
/// `upstream`. The link starts [`Fault::Open`].
pub fn start_nemesis(upstream: SocketAddr) -> io::Result<NemesisHandle> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let state = Arc::new(NemesisState {
        upstream,
        fault: Mutex::new(Fault::Open),
        conns: Mutex::new(Vec::new()),
        accepted_seq: AtomicU64::new(0),
        proxied: AtomicU64::new(0),
        refused: AtomicU64::new(0),
        severed: AtomicU64::new(0),
        delayed_chunks: AtomicU64::new(0),
        stopping: AtomicBool::new(false),
    });
    let accept = {
        let state = Arc::clone(&state);
        thread::Builder::new()
            .name("nemesis-accept".into())
            .spawn(move || accept_loop(&state, listener))?
    };
    Ok(NemesisHandle {
        addr,
        state,
        accept: Some(accept),
        driver: None,
    })
}

impl NemesisHandle {
    /// The address clients should connect to instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The address the proxy forwards to.
    pub fn upstream(&self) -> SocketAddr {
        self.state.upstream
    }

    /// Applies `fault` immediately. [`Fault::Partition`] also severs
    /// every established connection (both directions).
    pub fn set_fault(&self, fault: Fault) {
        *self.state.fault.lock().unwrap_or_else(|p| p.into_inner()) = fault;
        if fault == Fault::Partition {
            self.state.sever_all();
        }
    }

    /// Heals the link: equivalent to `set_fault(Fault::Open)`.
    pub fn heal(&self) {
        self.set_fault(Fault::Open);
    }

    /// The fault currently in force.
    pub fn fault(&self) -> Fault {
        *self.state.fault.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Counter snapshot.
    pub fn counters(&self) -> NemesisCounters {
        NemesisCounters {
            proxied: self.state.proxied.load(Ordering::Relaxed),
            refused: self.state.refused.load(Ordering::Relaxed),
            severed: self.state.severed.load(Ordering::Relaxed),
            delayed_chunks: self.state.delayed_chunks.load(Ordering::Relaxed),
        }
    }

    /// Runs `plan` on a background thread: sleep each step's gap, apply
    /// its fault, repeat. At most one plan runs at a time (starting a
    /// new one joins the previous). The thread exits after the last
    /// step; the final fault stays in force until [`Self::heal`].
    pub fn run_plan(&mut self, plan: NemesisPlan) {
        if let Some(t) = self.driver.take() {
            let _ = t.join();
        }
        let state = Arc::clone(&self.state);
        self.driver = Some(
            thread::Builder::new()
                .name("nemesis-driver".into())
                .spawn(move || {
                    for step in plan.steps {
                        if state.stopping.load(Ordering::SeqCst) {
                            return;
                        }
                        thread::sleep(step.after);
                        *state.fault.lock().unwrap_or_else(|p| p.into_inner()) = step.fault;
                        if step.fault == Fault::Partition {
                            state.sever_all();
                        }
                    }
                })
                .expect("spawn nemesis-driver"),
        );
    }

    /// Blocks until the running plan (if any) has applied its last step.
    pub fn join_plan(&mut self) {
        if let Some(t) = self.driver.take() {
            let _ = t.join();
        }
    }

    /// Stops the proxy: no new connections, every live one severed.
    pub fn stop(&mut self) {
        if self.state.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.driver.take() {
            let _ = t.join();
        }
        self.state.sever_all();
    }
}

impl Drop for NemesisHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl NemesisState {
    /// Severs every registered connection, both legs, both directions.
    fn sever_all(&self) {
        let mut conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
        for (client, upstream) in conns.drain(..) {
            let _ = client.shutdown(Shutdown::Both);
            let _ = upstream.shutdown(Shutdown::Both);
            self.severed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops connection registry entries whose pumps have finished
    /// (best-effort: identified by peer address equality is unreliable,
    /// so instead the registry is pruned when it grows — severing an
    /// already-dead stream is a harmless no-op).
    fn register(&self, client: &TcpStream, upstream: &TcpStream) {
        if let (Ok(c), Ok(u)) = (client.try_clone(), upstream.try_clone()) {
            let mut conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
            conns.push((c, u));
            // Keep the registry bounded: entries for long-closed
            // connections only waste fds, and shutting them down twice
            // is harmless.
            if conns.len() > 512 {
                conns.drain(..256).for_each(drop);
            }
        }
    }
}

/// Accepts connections and applies the accept-time half of the fault
/// model (refuse under partition, drop every `n`-th).
fn accept_loop(state: &Arc<NemesisState>, listener: TcpListener) {
    for stream in listener.incoming() {
        if state.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(client) = stream else { continue };
        let fault = *state.fault.lock().unwrap_or_else(|p| p.into_inner());
        let seq = state.accepted_seq.fetch_add(1, Ordering::Relaxed);
        match fault {
            Fault::Partition => {
                state.refused.fetch_add(1, Ordering::Relaxed);
                let _ = client.shutdown(Shutdown::Both);
                continue;
            }
            Fault::DropEveryNth { n } if n > 0 && seq % n == 0 => {
                state.refused.fetch_add(1, Ordering::Relaxed);
                let _ = client.shutdown(Shutdown::Both);
                continue;
            }
            _ => {}
        }
        let Ok(upstream) = TcpStream::connect_timeout(&state.upstream, Duration::from_secs(1))
        else {
            state.refused.fetch_add(1, Ordering::Relaxed);
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        let _ = client.set_nodelay(true);
        let _ = upstream.set_nodelay(true);
        state.register(&client, &upstream);
        state.proxied.fetch_add(1, Ordering::Relaxed);
        spawn_pump(state, &client, &upstream, "nemesis-up");
        spawn_pump(state, &upstream, &client, "nemesis-down");
    }
}

/// Spawns one direction of the byte pump (`from` → `to`).
fn spawn_pump(state: &Arc<NemesisState>, from: &TcpStream, to: &TcpStream, name: &str) {
    let (Ok(from), Ok(to)) = (from.try_clone(), to.try_clone()) else {
        return;
    };
    let state = Arc::clone(state);
    let _ = thread::Builder::new()
        .name(name.into())
        .spawn(move || pump(&state, from, to));
}

/// Copies bytes `from` → `to`, applying the in-flight half of the fault
/// model (delay, partition-sever). Polls with a short read timeout so a
/// fault applied mid-stream takes effect within ~20 ms even on an idle
/// connection.
fn pump(state: &NemesisState, from: TcpStream, to: TcpStream) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(20)));
    let mut from = from;
    let mut to = to;
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let fault = *state.fault.lock().unwrap_or_else(|p| p.into_inner());
                match fault {
                    Fault::Partition => break,
                    Fault::Delay { ms } => {
                        state.delayed_chunks.fetch_add(1, Ordering::Relaxed);
                        thread::sleep(Duration::from_millis(ms));
                    }
                    _ => {}
                }
                if to.write_all(&buf[..n]).is_err() || to.flush().is_err() {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if state.stopping.load(Ordering::SeqCst)
                    || *state.fault.lock().unwrap_or_else(|p| p.into_inner()) == Fault::Partition
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// One step of a nemesis schedule: wait, then apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStep {
    /// Gap to sleep *before* applying this step's fault.
    pub after: Duration,
    /// The fault to apply.
    pub fault: Fault,
}

/// A deterministic fault timeline, generated from a seed with the same
/// splitmix64 discipline the chaos client uses: the same seed always
/// yields the same schedule, so a failing run replays exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NemesisPlan {
    /// The steps, applied in order by [`NemesisHandle::run_plan`].
    pub steps: Vec<PlanStep>,
}

impl NemesisPlan {
    /// Generates `steps` fault/heal steps from `seed`. Gaps are
    /// 1..=`max_gap_ms` milliseconds; every injected fault is followed
    /// (eventually) by heals — odd steps are always [`Fault::Open`], so
    /// a plan never ends more than one step away from a healed link.
    pub fn seeded(seed: u64, steps: usize, max_gap_ms: u64) -> NemesisPlan {
        let mut rng = splitmix64_mix(seed ^ 0x6e65_6d65_7369_7321); // "nemesis!"
        let max_gap_ms = max_gap_ms.max(1);
        let mut out = Vec::with_capacity(steps);
        for i in 0..steps {
            let gap = 1 + splitmix64(&mut rng) % max_gap_ms;
            let fault = if i % 2 == 1 {
                Fault::Open
            } else {
                match splitmix64(&mut rng) % 3 {
                    0 => Fault::Partition,
                    1 => Fault::Delay {
                        ms: 1 + splitmix64(&mut rng) % 20,
                    },
                    _ => Fault::DropEveryNth {
                        n: 2 + splitmix64(&mut rng) % 3,
                    },
                }
            };
            out.push(PlanStep {
                after: Duration::from_millis(gap),
                fault,
            });
        }
        NemesisPlan { steps: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial line-echo upstream for proxy tests.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        let t = thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                thread::spawn(move || {
                    let mut writer = stream.try_clone().expect("clone echo conn");
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    while let Ok(n) = reader.read_line(&mut line) {
                        if n == 0 || line == "quit\n" {
                            break;
                        }
                        if writer.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        (addr, t)
    }

    fn roundtrip(addr: SocketAddr, msg: &str) -> io::Result<String> {
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(1))?;
        stream.set_read_timeout(Some(Duration::from_secs(2)))?;
        stream.write_all(msg.as_bytes())?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "no echo"));
        }
        Ok(line)
    }

    #[test]
    fn open_link_forwards_both_directions() {
        let (upstream, _t) = echo_server();
        let mut nemesis = start_nemesis(upstream).expect("start nemesis");
        let echoed = roundtrip(nemesis.addr(), "hello\n").expect("echo through proxy");
        assert_eq!(echoed, "hello\n");
        assert_eq!(nemesis.counters().proxied, 1);
        nemesis.stop();
    }

    #[test]
    fn partition_refuses_new_and_severs_established() {
        let (upstream, _t) = echo_server();
        let mut nemesis = start_nemesis(upstream).expect("start nemesis");

        // Establish a connection and prove it works.
        let mut stream =
            TcpStream::connect_timeout(&nemesis.addr(), Duration::from_secs(1)).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        stream.write_all(b"before\n").expect("write before");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read before");
        assert_eq!(line, "before\n");

        nemesis.set_fault(Fault::Partition);

        // The established stream is severed (EOF or reset), not wedged.
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {}
            Ok(_) => panic!("severed stream still echoed {line:?}"),
            Err(_) => {}
        }
        // New connections fail outright.
        assert!(roundtrip(nemesis.addr(), "during\n").is_err());
        assert!(nemesis.counters().severed >= 1);

        // Healing restores service for fresh connections.
        nemesis.heal();
        let echoed = roundtrip(nemesis.addr(), "after\n").expect("echo after heal");
        assert_eq!(echoed, "after\n");
        nemesis.stop();
    }

    #[test]
    fn drop_every_nth_is_periodic() {
        let (upstream, _t) = echo_server();
        let mut nemesis = start_nemesis(upstream).expect("start nemesis");
        nemesis.set_fault(Fault::DropEveryNth { n: 2 });
        let mut ok = 0;
        let mut failed = 0;
        for i in 0..6 {
            match roundtrip(nemesis.addr(), &format!("msg{i}\n")) {
                Ok(_) => ok += 1,
                Err(_) => failed += 1,
            }
        }
        // Every second connection (seq 0, 2, 4) is dropped.
        assert_eq!(
            ok, 3,
            "expected alternating drops, got ok={ok} failed={failed}"
        );
        assert_eq!(failed, 3);
        nemesis.stop();
    }

    #[test]
    fn delay_fault_still_delivers() {
        let (upstream, _t) = echo_server();
        let mut nemesis = start_nemesis(upstream).expect("start nemesis");
        nemesis.set_fault(Fault::Delay { ms: 5 });
        let echoed = roundtrip(nemesis.addr(), "slow\n").expect("delayed echo");
        assert_eq!(echoed, "slow\n");
        assert!(nemesis.counters().delayed_chunks >= 1);
        nemesis.stop();
    }

    #[test]
    fn seeded_plans_are_deterministic_and_heal_on_odd_steps() {
        let a = NemesisPlan::seeded(42, 8, 50);
        let b = NemesisPlan::seeded(42, 8, 50);
        let c = NemesisPlan::seeded(43, 8, 50);
        assert_eq!(a, b, "same seed must yield the same plan");
        assert_ne!(a, c, "different seeds should diverge");
        assert_eq!(a.steps.len(), 8);
        for (i, step) in a.steps.iter().enumerate() {
            assert!(step.after >= Duration::from_millis(1));
            assert!(step.after <= Duration::from_millis(50));
            if i % 2 == 1 {
                assert_eq!(step.fault, Fault::Open, "odd steps heal");
            }
        }
    }
}
