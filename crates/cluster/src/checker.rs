//! The acked-write consistency checker: did the cluster keep its
//! durability promise through partitions and failovers?
//!
//! The protocol under test promises exactly one thing to a client whose
//! profile write got a 200: *that write is durable and will never be
//! contradicted*. Writes that were in flight when a partition hit may
//! vanish — the client got a 503 or a reset, not an ack — but an acked
//! write surviving as something else, or two acked writes fighting over
//! the same `(user, version)` slot, means split-brain: two primaries
//! both believed they owned the session.
//!
//! The checker is deliberately dumb and external. A load generator
//! records every **acknowledged** write into an [`AckLog`] (user,
//! version from the response, epoch, exact profile text). After the
//! schedule — partitions, promotions, heals — the test dumps every
//! replica's store and hands everything to [`check`], which verifies:
//!
//! * **No acked write lost** — every authoritative (non-fenced) replica
//!   holds each user at *at least* the highest acked version.
//! * **No split-brain divergence** — no replica (fenced ones included:
//!   a deposed primary's store is exactly where divergence would hide)
//!   holds a `(user, version)` that any acked write holds with
//!   different content, and no two acked writes share a slot with
//!   different content.
//! * **Linear ack order** — per user, acked versions strictly increase
//!   in acknowledgement order: the surviving version chain is a linear
//!   extension of what clients observed. A version going backwards
//!   means two primaries handed out the same version number.
//!
//! Fenced replicas are *expected* to be stale (they stopped receiving
//! the stream when deposed, and there is no re-sync), so they are
//! exempt from the lost-write check — but never from divergence.

use cqp_obs::Json;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One acknowledged profile write, as the client observed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AckedWrite {
    /// Global acknowledgement order (assigned by the [`AckLog`]).
    pub seq: u64,
    /// The session owner.
    pub user: String,
    /// The version the server acknowledged.
    pub version: u64,
    /// The replication epoch in force when the write was acked.
    pub epoch: u64,
    /// The exact profile text that was written.
    pub profile_text: String,
}

/// Thread-safe log of acknowledged writes (the load generator appends,
/// the checker reads).
#[derive(Debug, Default)]
pub struct AckLog {
    seq: AtomicU64,
    writes: Mutex<Vec<AckedWrite>>,
}

impl AckLog {
    /// An empty log.
    pub fn new() -> AckLog {
        AckLog::default()
    }

    /// Records one acked write; returns its global sequence number.
    pub fn record(&self, user: &str, version: u64, epoch: u64, profile_text: &str) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.writes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(AckedWrite {
                seq,
                user: user.to_string(),
                version,
                epoch,
                profile_text: profile_text.to_string(),
            });
        seq
    }

    /// Number of acked writes recorded so far.
    pub fn len(&self) -> usize {
        self.writes.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the log in acknowledgement order.
    pub fn snapshot(&self) -> Vec<AckedWrite> {
        let mut writes = self
            .writes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        writes.sort_by_key(|w| w.seq);
        writes
    }
}

/// One replica's store dump, labeled for the report.
#[derive(Debug, Clone)]
pub struct ReplicaDump {
    /// Display name (`g0/primary`, `g0/follower`…).
    pub name: String,
    /// Whether this replica ended the schedule fenced (deposed primary).
    /// Fenced replicas are exempt from the lost-write check only.
    pub fenced: bool,
    /// `user → (version, profile_text)` — the surviving session state.
    pub sessions: BTreeMap<String, (u64, String)>,
}

/// The checker's verdict.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Acked writes examined.
    pub acked_writes: usize,
    /// Replicas examined.
    pub replicas: usize,
    /// Users whose highest acked version is missing from an
    /// authoritative replica.
    pub lost_acked_writes: usize,
    /// `(user, version)` slots held with conflicting content — between
    /// two acked writes, between a replica and an acked write, or
    /// between two replicas.
    pub split_brain_divergence: usize,
    /// Users whose acked versions did not strictly increase in
    /// acknowledgement order.
    pub order_violations: usize,
    /// Human-readable descriptions of every violation found.
    pub details: Vec<String>,
}

impl ConsistencyReport {
    /// `true` when every check passed.
    pub fn consistent(&self) -> bool {
        self.lost_acked_writes == 0
            && self.split_brain_divergence == 0
            && self.order_violations == 0
    }

    /// The report as a JSON document (for `BENCH_partition.json`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("acked_writes", Json::from(self.acked_writes as u64)),
            ("replicas", Json::from(self.replicas as u64)),
            (
                "lost_acked_writes",
                Json::from(self.lost_acked_writes as u64),
            ),
            (
                "split_brain_divergence",
                Json::from(self.split_brain_divergence as u64),
            ),
            ("order_violations", Json::from(self.order_violations as u64)),
            ("consistent", Json::Bool(self.consistent())),
            (
                "details",
                Json::Arr(
                    self.details
                        .iter()
                        .map(|d| Json::from(d.as_str()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Runs every check over `acked` (acknowledgement order) and the
/// end-of-schedule `dumps`.
pub fn check(acked: &[AckedWrite], dumps: &[ReplicaDump]) -> ConsistencyReport {
    let mut report = ConsistencyReport {
        acked_writes: acked.len(),
        replicas: dumps.len(),
        ..ConsistencyReport::default()
    };

    // Index acked writes: per user the full chain, and per (user,
    // version) slot the content each ack claimed.
    let mut chains: HashMap<&str, Vec<&AckedWrite>> = HashMap::new();
    let mut slots: HashMap<(&str, u64), &str> = HashMap::new();
    for w in acked {
        chains.entry(w.user.as_str()).or_default().push(w);
        match slots.entry((w.user.as_str(), w.version)) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(w.profile_text.as_str());
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != w.profile_text {
                    report.split_brain_divergence += 1;
                    report.details.push(format!(
                        "two acked writes disagree on ({}, v{}): both were acknowledged \
                         with different content — dual primaries accepted writes",
                        w.user, w.version
                    ));
                }
            }
        }
    }

    // (c) Linear ack order: per user, versions strictly increase in seq
    // order. A repeat or regression means a second primary re-issued a
    // version number it did not own.
    for (user, chain) in &chains {
        let mut ordered = true;
        for pair in chain.windows(2) {
            if pair[1].version <= pair[0].version {
                ordered = false;
                report.details.push(format!(
                    "acked version chain for {user} is not linear: v{} (seq {}) was \
                     acked after v{} (seq {})",
                    pair[1].version, pair[1].seq, pair[0].version, pair[0].seq
                ));
            }
        }
        if !ordered {
            report.order_violations += 1;
        }
    }

    // (a) No acked write lost: every authoritative replica must hold
    // each user at >= the highest acked version (earlier acked versions
    // are legitimately superseded — the store keeps latest-only).
    for dump in dumps.iter().filter(|d| !d.fenced) {
        for (user, chain) in &chains {
            let newest = chain
                .iter()
                .max_by_key(|w| w.version)
                .expect("chains have at least one write");
            match dump.sessions.get(*user) {
                Some((version, text)) => {
                    if *version < newest.version {
                        report.lost_acked_writes += 1;
                        report.details.push(format!(
                            "{}: {user} survived at v{version} but v{} was acked",
                            dump.name, newest.version
                        ));
                    } else if *version == newest.version && text != &newest.profile_text {
                        report.split_brain_divergence += 1;
                        report.details.push(format!(
                            "{}: {user} v{version} content differs from the acked write",
                            dump.name
                        ));
                    }
                }
                None => {
                    report.lost_acked_writes += 1;
                    report.details.push(format!(
                        "{}: {user} missing entirely but v{} was acked",
                        dump.name, newest.version
                    ));
                }
            }
        }
    }

    // (b) Split-brain divergence, store side: any replica — fenced ones
    // very much included — holding a (user, version) slot that an acked
    // write holds with different content, or two replicas disagreeing
    // on a slot. A fenced dump being *behind* is expected; a fenced
    // dump *contradicting* an ack means fencing failed.
    let mut seen: HashMap<(&str, u64), (&str, &str)> = HashMap::new();
    for dump in dumps {
        for (user, (version, text)) in &dump.sessions {
            if let Some(acked_text) = slots.get(&(user.as_str(), *version)) {
                if acked_text != text {
                    report.split_brain_divergence += 1;
                    report.details.push(format!(
                        "{}: ({user}, v{version}) contradicts the acked content — a \
                         fenced-off primary accepted a conflicting write",
                        dump.name
                    ));
                }
            }
            match seen.entry((user.as_str(), *version)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((dump.name.as_str(), text.as_str()));
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let (other_name, other_text) = *e.get();
                    if other_text != text {
                        report.split_brain_divergence += 1;
                        report.details.push(format!(
                            "({user}, v{version}) diverges between {other_name} and {}",
                            dump.name
                        ));
                    }
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acked(seq: u64, user: &str, version: u64, epoch: u64, text: &str) -> AckedWrite {
        AckedWrite {
            seq,
            user: user.into(),
            version,
            epoch,
            profile_text: text.into(),
        }
    }

    fn dump(name: &str, fenced: bool, sessions: &[(&str, u64, &str)]) -> ReplicaDump {
        ReplicaDump {
            name: name.into(),
            fenced,
            sessions: sessions
                .iter()
                .map(|(u, v, t)| (u.to_string(), (*v, t.to_string())))
                .collect(),
        }
    }

    #[test]
    fn clean_history_is_consistent() {
        let acks = vec![
            acked(0, "alice", 1, 0, "a1"),
            acked(1, "alice", 2, 0, "a2"),
            acked(2, "bob", 1, 1, "b1"),
        ];
        let dumps = vec![
            dump("g0/primary", false, &[("alice", 2, "a2"), ("bob", 1, "b1")]),
            dump(
                "g0/follower",
                false,
                &[("alice", 2, "a2"), ("bob", 1, "b1")],
            ),
        ];
        let report = check(&acks, &dumps);
        assert!(
            report.consistent(),
            "unexpected violations: {:?}",
            report.details
        );
        assert_eq!(report.acked_writes, 3);
    }

    #[test]
    fn stale_fenced_replica_is_not_a_loss_but_conflict_is_divergence() {
        let acks = vec![
            acked(0, "alice", 1, 0, "a1"),
            acked(1, "alice", 2, 1, "a2-new-primary"),
        ];
        // Fenced old primary stopped at v1 — expected, not a loss.
        let clean = vec![
            dump("g0/new-primary", false, &[("alice", 2, "a2-new-primary")]),
            dump("g0/old-primary", true, &[("alice", 1, "a1")]),
        ];
        assert!(check(&acks, &clean).consistent());

        // But if the fenced primary holds v2 with *different* content,
        // it accepted a conflicting write — split brain.
        let split = vec![
            dump("g0/new-primary", false, &[("alice", 2, "a2-new-primary")]),
            dump("g0/old-primary", true, &[("alice", 2, "a2-OLD-primary")]),
        ];
        let report = check(&acks, &split);
        assert!(report.split_brain_divergence >= 1, "{:?}", report.details);
    }

    #[test]
    fn lost_acked_write_is_detected() {
        let acks = vec![acked(0, "alice", 3, 1, "a3")];
        let dumps = vec![dump("g0/primary", false, &[("alice", 2, "a2")])];
        let report = check(&acks, &dumps);
        assert_eq!(report.lost_acked_writes, 1);
        assert!(!report.consistent());

        let gone = vec![dump("g0/primary", false, &[])];
        assert_eq!(check(&acks, &gone).lost_acked_writes, 1);
    }

    #[test]
    fn version_regression_in_ack_order_is_an_order_violation() {
        let acks = vec![
            acked(0, "alice", 1, 0, "a1"),
            acked(1, "alice", 2, 0, "a2"),
            acked(2, "alice", 2, 1, "a2-again"),
        ];
        let dumps = vec![dump("g0/primary", false, &[("alice", 2, "a2-again")])];
        let report = check(&acks, &dumps);
        assert_eq!(report.order_violations, 1);
        // The duplicate slot with different content is also divergence.
        assert!(report.split_brain_divergence >= 1);
    }

    #[test]
    fn ack_log_assigns_global_order() {
        let log = AckLog::new();
        assert!(log.is_empty());
        log.record("alice", 1, 0, "a1");
        log.record("bob", 1, 0, "b1");
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[1].seq, 1);
        assert_eq!(snap[0].user, "alice");
    }
}
