//! The consistent-hash router: one HTTP front door for N shard groups.
//!
//! Each shard group is a primary/follower `cqp-server` pair joined by the
//! synchronous WAL replication stream (`cqp_server::repl`). The router
//! owns three decisions per request:
//!
//! * **Placement** — the user named by the request lands on a group via
//!   the consistent-hash [`Ring`], so every process (router, bench,
//!   tests) agrees on who owns which session.
//! * **Write routing** — profile mutations go to the group's current
//!   primary, always over a *fresh* connection and **never retried**: a
//!   failed forward may or may not have been applied, and retrying would
//!   risk applying an acknowledged write twice. The client gets a 503 and
//!   the router fails the group over (promote a live follower via
//!   `POST /admin/promote`) so the *next* write succeeds.
//! * **Read routing** — `/personalize` is CPU- and cache-bound, and both
//!   replicas of a group hold the same sessions, so reads can go to
//!   either. Under [`RoutingPolicy::Divergent`] the router classifies the
//!   request by its canonical SQL template ([`canonicalize_sql`]) and
//!   pins each template class to one replica: the replica's answer and
//!   cost caches stay warm for *its* templates instead of every replica
//!   paying cold misses for every template. [`RoutingPolicy::Uniform`]
//!   alternates replicas and is kept as the control arm the bench
//!   compares against. Reads retry once on the other replica, which is
//!   safe (reads are idempotent) and is what masks a replica death until
//!   the health probe notices.
//!
//! A background probe thread polls `/healthz/ready` on every replica and
//! proactively fails over groups whose primary died, so a SIGKILLed
//! primary is replaced within one probe interval even on an idle cluster.
//!
//! The proxy itself is deliberately plain: thread-per-connection,
//! blocking sockets, the same HTTP/1.1 codec the server uses
//! ([`cqp_server::http`]), with per-client-connection keep-alive reuse of
//! backend connections for reads.

use crate::ring::Ring;
use cqp_core::answer_cache::{fnv1a, FNV_OFFSET};
use cqp_obs::Json;
use cqp_server::http::{parse_request, parse_response, ClientResponse, HttpError, Request};
use cqp_server::{canonicalize_sql, json};
use rand::splitmix64_mix;
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How a group's replicas share read traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Pin each canonical SQL template class to one replica so its answer
    /// and cost caches stay warm for that class.
    Divergent,
    /// Alternate replicas per read — the control arm: every replica sees
    /// every template and pays every cold miss.
    Uniform,
}

impl RoutingPolicy {
    /// Parses a policy name (`divergent` / `uniform`).
    pub fn parse(s: &str) -> Option<RoutingPolicy> {
        match s {
            "divergent" => Some(RoutingPolicy::Divergent),
            "uniform" => Some(RoutingPolicy::Uniform),
            _ => None,
        }
    }

    /// The wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            RoutingPolicy::Divergent => "divergent",
            RoutingPolicy::Uniform => "uniform",
        }
    }
}

/// One shard group as the operator describes it: a name and its replica
/// addresses. `replicas[0]` is the initial primary.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Group name — a point source on the ring; renaming a group moves
    /// its keys.
    pub name: String,
    /// Replica serving addresses; index 0 starts as primary.
    pub replicas: Vec<SocketAddr>,
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`127.0.0.1:0` = ephemeral).
    pub addr: String,
    /// The shard groups to route across (at least one, each with at
    /// least one replica).
    pub shards: Vec<ShardSpec>,
    /// Read-routing policy.
    pub policy: RoutingPolicy,
    /// Health-probe period; also bounds how long a dead primary can go
    /// unnoticed on an idle cluster.
    pub probe_interval: Duration,
    /// Backend connect timeout (probes, promotes, forwards).
    pub connect_timeout: Duration,
    /// Per-group read-retry budget, in whole retries. Each sibling retry
    /// costs one token; each retry-free successful read refunds a tenth
    /// of one. When the bucket runs dry the router sheds with 503 +
    /// `Retry-After` instead of hammering a sick group into a storm.
    pub retry_budget: u64,
    /// Seed for the jittered retry backoff (deterministic per seed).
    pub retry_seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: Vec::new(),
            policy: RoutingPolicy::Divergent,
            probe_interval: Duration::from_millis(250),
            connect_timeout: Duration::from_secs(1),
            retry_budget: 32,
            retry_seed: 7,
        }
    }
}

/// Replica roles as the probe last saw them (`u8` values for the
/// `Replica::role` atomic).
const ROLE_PRIMARY: u8 = 0;
const ROLE_FOLLOWER: u8 = 1;
const ROLE_FENCED: u8 = 2;
const ROLE_UNKNOWN: u8 = 3;

/// One read-retry costs a full token; a retry-free success refunds a
/// tenth. Milli-token accounting keeps it all in one atomic.
const RETRY_COST_MILLIS: i64 = 1000;
const RETRY_REFILL_MILLIS: i64 = 100;

/// Live view of one replica.
#[derive(Debug)]
struct Replica {
    addr: SocketAddr,
    /// Updated by the probe thread and by forward failures.
    alive: AtomicBool,
    /// Role the probe last parsed from `/healthz/ready` (`ROLE_*`).
    role: std::sync::atomic::AtomicU8,
    /// Epoch the replica last reported.
    epoch: AtomicU64,
}

/// Live view of one shard group.
#[derive(Debug)]
struct Group {
    name: String,
    replicas: Vec<Replica>,
    /// Index of the current primary in `replicas`.
    primary: AtomicUsize,
    /// Uniform-policy read rotation counter.
    reads: AtomicU64,
    /// Highest replication epoch seen anywhere in the group. Stamped on
    /// every proxied write and every probe — the fencing signal.
    epoch: AtomicU64,
    /// Read-retry budget, milli-tokens (see `RETRY_COST_MILLIS`).
    retry_millis: std::sync::atomic::AtomicI64,
    /// Retry sequence number feeding the jittered backoff.
    retry_seq: AtomicU64,
    /// Serializes failover so concurrent write failures promote once.
    failover: Mutex<()>,
}

impl Group {
    /// Takes one retry token from the bucket; `false` when dry.
    fn try_charge_retry(&self) -> bool {
        let prev = self
            .retry_millis
            .fetch_sub(RETRY_COST_MILLIS, Ordering::Relaxed);
        if prev < RETRY_COST_MILLIS {
            self.retry_millis
                .fetch_add(RETRY_COST_MILLIS, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Refunds a tenth of a token after a retry-free successful read,
    /// capped at the configured budget.
    fn refill_retry(&self, cap_millis: i64) {
        let prev = self
            .retry_millis
            .fetch_add(RETRY_REFILL_MILLIS, Ordering::Relaxed);
        if prev + RETRY_REFILL_MILLIS > cap_millis {
            self.retry_millis
                .fetch_sub(RETRY_REFILL_MILLIS, Ordering::Relaxed);
        }
    }
}

/// Monotonic router counters (all `Ordering::Relaxed`; they are
/// diagnostics, not synchronization).
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Requests successfully relayed to a backend.
    pub forwarded: AtomicU64,
    /// Profile mutations routed to a primary.
    pub writes: AtomicU64,
    /// Personalize/profile reads routed to a replica.
    pub reads: AtomicU64,
    /// Promotions performed (probe- or write-failure-triggered).
    pub failovers: AtomicU64,
    /// Reads that needed the second replica.
    pub read_retries: AtomicU64,
    /// Requests answered locally with an error (no primary, bad body…).
    pub rejected: AtomicU64,
    /// Reads shed because the group's retry budget ran dry.
    pub retry_budget_exhausted: AtomicU64,
    /// Replicas observed fenced (stale-epoch ex-primaries) by the probe.
    pub fenced: AtomicU64,
}

/// The routing core shared by the accept loop, the probe thread, and
/// every connection handler.
#[derive(Debug)]
pub struct Router {
    ring: Ring,
    groups: Vec<Group>,
    policy: RoutingPolicy,
    stats: RouterStats,
    connect_timeout: Duration,
    /// Retry-budget cap in milli-tokens (`retry_budget * 1000`).
    retry_cap_millis: i64,
    /// Seed for the jittered retry backoff.
    retry_seed: u64,
    stopping: AtomicBool,
}

/// A running router: bound address plus its threads.
#[derive(Debug)]
pub struct RouterHandle {
    addr: SocketAddr,
    router: Arc<Router>,
    accept: Option<JoinHandle<()>>,
    probe: Option<JoinHandle<()>>,
}

/// Starts a router over `config.shards`. Returns once the listener is
/// bound; replicas may still be booting (the probe marks them live).
pub fn start_router(config: RouterConfig) -> io::Result<RouterHandle> {
    if config.shards.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "router needs at least one shard group",
        ));
    }
    let mut groups = Vec::with_capacity(config.shards.len());
    for spec in &config.shards {
        if spec.replicas.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard group {:?} has no replicas", spec.name),
            ));
        }
        groups.push(Group {
            name: spec.name.clone(),
            replicas: spec
                .replicas
                .iter()
                .map(|&addr| Replica {
                    addr,
                    // Optimistic: traffic can flow before the first probe
                    // round; a dead replica is demoted on first contact.
                    alive: AtomicBool::new(true),
                    role: std::sync::atomic::AtomicU8::new(ROLE_UNKNOWN),
                    epoch: AtomicU64::new(0),
                })
                .collect(),
            primary: AtomicUsize::new(0),
            reads: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            retry_millis: std::sync::atomic::AtomicI64::new(
                config.retry_budget as i64 * RETRY_COST_MILLIS,
            ),
            retry_seq: AtomicU64::new(0),
            failover: Mutex::new(()),
        });
    }
    let names: Vec<&str> = groups.iter().map(|g| g.name.as_str()).collect();
    let router = Arc::new(Router {
        ring: Ring::with_groups(&names),
        groups,
        policy: config.policy,
        stats: RouterStats::default(),
        connect_timeout: config.connect_timeout,
        retry_cap_millis: config.retry_budget as i64 * RETRY_COST_MILLIS,
        retry_seed: config.retry_seed,
        stopping: AtomicBool::new(false),
    });

    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;

    let accept = {
        let router = Arc::clone(&router);
        thread::Builder::new()
            .name("router-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if router.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let router = Arc::clone(&router);
                    let _ = thread::Builder::new()
                        .name("router-conn".into())
                        .spawn(move || handle_connection(&router, stream));
                }
            })?
    };
    let probe = {
        let router = Arc::clone(&router);
        let interval = config.probe_interval;
        thread::Builder::new()
            .name("router-probe".into())
            .spawn(move || {
                while !router.stopping.load(Ordering::SeqCst) {
                    router.probe_once();
                    thread::sleep(interval);
                }
            })?
    };

    Ok(RouterHandle {
        addr,
        router,
        accept: Some(accept),
        probe: Some(probe),
    })
}

impl RouterHandle {
    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared routing core (stats, topology).
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Stops the router: accept loop unblocked and joined, probe thread
    /// joined. In-flight connection handlers finish on their own.
    pub fn stop(&mut self) {
        if self.router.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.probe.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl Router {
    /// The read-routing policy in force.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Counter snapshot: `(forwarded, writes, reads, failovers,
    /// read_retries, rejected, retry_budget_exhausted, fenced)`.
    #[allow(clippy::type_complexity)]
    pub fn stats(&self) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
        let s = &self.stats;
        (
            s.forwarded.load(Ordering::Relaxed),
            s.writes.load(Ordering::Relaxed),
            s.reads.load(Ordering::Relaxed),
            s.failovers.load(Ordering::Relaxed),
            s.read_retries.load(Ordering::Relaxed),
            s.rejected.load(Ordering::Relaxed),
            s.retry_budget_exhausted.load(Ordering::Relaxed),
            s.fenced.load(Ordering::Relaxed),
        )
    }

    /// The group owning `user` (placement is total once groups exist).
    fn group_for(&self, user: &str) -> &Group {
        let name = self
            .ring
            .place(user)
            .expect("router has at least one group");
        self.groups
            .iter()
            .find(|g| g.name == name)
            .expect("ring names mirror group names")
    }

    /// One probe round: refresh every replica's liveness, role, and
    /// epoch; resolve dual-primary splits by crowning the highest-epoch
    /// claimant at a strictly higher epoch (the loser self-fences on its
    /// next heartbeat); then fail over any group whose primary is down.
    fn probe_once(&self) {
        for group in &self.groups {
            for replica in &group.replicas {
                let group_epoch = group.epoch.load(Ordering::SeqCst);
                match probe_replica(replica.addr, group_epoch, self.connect_timeout) {
                    Some((role, epoch)) => {
                        replica.alive.store(true, Ordering::SeqCst);
                        replica.role.store(role, Ordering::SeqCst);
                        replica.epoch.store(epoch, Ordering::SeqCst);
                        group.epoch.fetch_max(epoch, Ordering::SeqCst);
                    }
                    None => replica.alive.store(false, Ordering::SeqCst),
                }
            }
            self.resolve_primaries(group);
            self.ensure_primary(group);
        }
    }

    /// Reconciles the probe's role view with `group.primary`. One live
    /// claimant: adopt it. Two or more (split-brain — e.g. an isolated
    /// primary healed after a follower was promoted): pick the
    /// highest-epoch claimant (lowest index breaks ties) and re-promote
    /// it at a *strictly higher* epoch, so every other claimant observes
    /// a newer epoch on its next heartbeat and self-demotes to fenced.
    fn resolve_primaries(&self, group: &Group) {
        let claimants: Vec<usize> = group
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.alive.load(Ordering::SeqCst) && r.role.load(Ordering::SeqCst) == ROLE_PRIMARY
            })
            .map(|(i, _)| i)
            .collect();
        match claimants.len() {
            0 => {}
            1 => {
                group.primary.store(claimants[0], Ordering::SeqCst);
            }
            _ => {
                let _guard = group.failover.lock().unwrap();
                let winner = *claimants
                    .iter()
                    .max_by_key(|&&i| {
                        (
                            group.replicas[i].epoch.load(Ordering::SeqCst),
                            std::cmp::Reverse(i),
                        )
                    })
                    .expect("claimants is non-empty");
                let target = group.epoch.load(Ordering::SeqCst) + 1;
                if let Some(epoch) = promote(
                    group.replicas[winner].addr,
                    self.connect_timeout,
                    Some(target),
                ) {
                    group.primary.store(winner, Ordering::SeqCst);
                    group.epoch.fetch_max(epoch, Ordering::SeqCst);
                    group.replicas[winner].epoch.store(epoch, Ordering::SeqCst);
                    self.stats
                        .fenced
                        .fetch_add(claimants.len() as u64 - 1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Returns the index of a live primary for `group`, promoting a live
    /// follower when the current primary is down. Promotion targets a
    /// strictly higher epoch than anything the group has seen, so the
    /// dead primary — should it come back — is fenced, not trusted.
    /// `None` when the whole group is unreachable.
    fn ensure_primary(&self, group: &Group) -> Option<usize> {
        let current = group.primary.load(Ordering::SeqCst);
        if group.replicas[current].alive.load(Ordering::SeqCst) {
            return Some(current);
        }
        // Serialize promotion; re-check under the lock so racing writers
        // perform (and count) one failover, not two.
        let _guard = group.failover.lock().unwrap();
        let current = group.primary.load(Ordering::SeqCst);
        if group.replicas[current].alive.load(Ordering::SeqCst) {
            return Some(current);
        }
        for (i, replica) in group.replicas.iter().enumerate() {
            if i == current || !replica.alive.load(Ordering::SeqCst) {
                continue;
            }
            // A fenced replica is permanently stale (there is no
            // re-sync); promoting it would resurrect pre-partition data.
            if replica.role.load(Ordering::SeqCst) == ROLE_FENCED {
                continue;
            }
            let target = group.epoch.load(Ordering::SeqCst) + 1;
            if let Some(epoch) = promote(replica.addr, self.connect_timeout, Some(target)) {
                group.primary.store(i, Ordering::SeqCst);
                replica.role.store(ROLE_PRIMARY, Ordering::SeqCst);
                replica.epoch.store(epoch, Ordering::SeqCst);
                group.epoch.fetch_max(epoch, Ordering::SeqCst);
                self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                return Some(i);
            }
            replica.alive.store(false, Ordering::SeqCst);
        }
        None
    }

    /// Routes one request, producing the response to relay.
    fn route(&self, req: &Request, backends: &mut BackendPool) -> ClientResponse {
        let segments = req.segments();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz", "live"]) => local_json(
                200,
                Json::obj(vec![
                    ("status", Json::from("live")),
                    ("component", Json::from("router")),
                ]),
            ),
            ("GET", ["router", "stats"]) => local_json(200, self.stats_json()),
            (_, ["profiles", user, ..]) => {
                let user = user.to_string();
                if req.method == "GET" {
                    self.route_profile_read(req, &user, backends)
                } else {
                    self.route_write(req, &user)
                }
            }
            ("POST", ["personalize"]) => self.route_personalize(req, backends),
            _ => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                local_error(
                    404,
                    "not_routable",
                    "the router forwards /profiles/{user} and /personalize; \
                     per-replica endpoints (/metrics, /debug) are reached directly",
                )
            }
        }
    }

    /// Profile mutation: current primary only, fresh connection, never
    /// retried — a failed forward may have been applied, and the
    /// replication ack ledger (not the router) defines durability.
    fn route_write(&self, req: &Request, user: &str) -> ClientResponse {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let group = self.group_for(user);
        let Some(primary) = self.ensure_primary(group) else {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return local_error(
                503,
                "no_primary",
                format!("no live replica in group {:?}", group.name),
            );
        };
        let replica = &group.replicas[primary];
        // Stamp the group's fencing epoch on the proxied write: a
        // deposed primary that never heard about the failover sees a
        // newer epoch in the header and self-demotes instead of
        // accepting a doomed write. Client-supplied values are stripped
        // so nobody outside the router can spoof the fencing signal.
        let mut req = req.clone();
        req.headers.retain(|(name, _)| name != "x-cqp-epoch");
        req.headers.push((
            "x-cqp-epoch".into(),
            group.epoch.load(Ordering::SeqCst).to_string(),
        ));
        match forward_fresh(replica.addr, &req, self.connect_timeout) {
            Ok(resp) => {
                self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                resp
            }
            Err(_) => {
                // Demote and fail over eagerly; the client retries the
                // *request* (it got a 503), the router never does.
                replica.alive.store(false, Ordering::SeqCst);
                self.ensure_primary(group);
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                local_error(
                    503,
                    "write_forward_failed",
                    "primary unreachable; failover triggered, retry the write",
                )
            }
        }
    }

    /// Profile read: primary preferred (read-your-writes), follower as
    /// fallback when the primary is down.
    fn route_profile_read(
        &self,
        req: &Request,
        user: &str,
        backends: &mut BackendPool,
    ) -> ClientResponse {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let group = self.group_for(user);
        let preferred = group.primary.load(Ordering::SeqCst);
        self.forward_read(req, group, preferred, backends)
    }

    /// Personalize: group by the `user` in the body, replica by policy.
    fn route_personalize(&self, req: &Request, backends: &mut BackendPool) -> ClientResponse {
        let Some((user, sql)) = personalize_fields(&req.body) else {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return local_error(
                400,
                "bad_route_body",
                "`user` and `sql` (strings) are required to route /personalize",
            );
        };
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let group = self.group_for(&user);
        let preferred = match self.policy {
            // The template class, not the literal SQL: two queries that
            // differ only in constants share a canonical form, land on
            // the same replica, and hit its warm caches.
            RoutingPolicy::Divergent => {
                let class = fnv1a(FNV_OFFSET, canonicalize_sql(&sql).as_bytes());
                (class as usize) % group.replicas.len()
            }
            RoutingPolicy::Uniform => {
                (group.reads.fetch_add(1, Ordering::Relaxed) as usize) % group.replicas.len()
            }
        };
        self.forward_read(req, group, preferred, backends)
    }

    /// Tries `preferred` first (when alive), then each other live
    /// replica once. Reads are idempotent, so replica-level retry is
    /// safe — but each retry draws on the group's token bucket, with a
    /// short seeded-jittered backoff first, so a sick group sheds load
    /// (503 + `Retry-After`) instead of amplifying it into a storm.
    /// Fenced replicas never serve reads: they stopped receiving the
    /// replication stream at the moment they were deposed and are
    /// permanently stale.
    fn forward_read(
        &self,
        req: &Request,
        group: &Group,
        preferred: usize,
        backends: &mut BackendPool,
    ) -> ClientResponse {
        let n = group.replicas.len();
        let mut attempted = false;
        for offset in 0..n {
            let i = (preferred + offset) % n;
            let replica = &group.replicas[i];
            if !replica.alive.load(Ordering::SeqCst)
                || replica.role.load(Ordering::SeqCst) == ROLE_FENCED
            {
                continue;
            }
            if attempted {
                if !group.try_charge_retry() {
                    self.stats
                        .retry_budget_exhausted
                        .fetch_add(1, Ordering::Relaxed);
                    self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    let mut resp = local_error(
                        503,
                        "retry_budget_exhausted",
                        format!(
                            "group {:?} exhausted its read-retry budget; back off",
                            group.name
                        ),
                    );
                    resp.headers.push(("retry-after".into(), "1".into()));
                    return resp;
                }
                self.stats.read_retries.fetch_add(1, Ordering::Relaxed);
                thread::sleep(Duration::from_millis(self.retry_backoff_ms(group)));
            }
            attempted = true;
            match forward_reused(backends, replica.addr, req, self.connect_timeout) {
                Ok(resp) => {
                    self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                    if offset == 0 {
                        // First-try success: the group looks healthy, so
                        // slowly pay the budget back.
                        group.refill_retry(self.retry_cap_millis);
                    }
                    return resp;
                }
                Err(_) => replica.alive.store(false, Ordering::SeqCst),
            }
        }
        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
        local_error(
            503,
            "no_replica",
            format!("no live replica in group {:?}", group.name),
        )
    }

    /// Deterministic jittered backoff before a sibling retry: 1–8 ms,
    /// derived from the router seed, the group name, and a per-group
    /// retry sequence number, so concurrent retries de-correlate without
    /// any wall-clock randomness.
    fn retry_backoff_ms(&self, group: &Group) -> u64 {
        let seq = group.retry_seq.fetch_add(1, Ordering::Relaxed);
        let class = fnv1a(FNV_OFFSET, group.name.as_bytes());
        let mixed =
            splitmix64_mix(self.retry_seed ^ class ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        1 + mixed % 8
    }

    /// The `/router/stats` document.
    pub fn stats_json(&self) -> Json {
        let (forwarded, writes, reads, failovers, read_retries, rejected, budget_exhausted, fenced) =
            self.stats();
        let groups: Vec<Json> = self
            .groups
            .iter()
            .map(|g| {
                let replicas: Vec<Json> = g
                    .replicas
                    .iter()
                    .map(|r| {
                        let role = match r.role.load(Ordering::SeqCst) {
                            ROLE_PRIMARY => "primary",
                            ROLE_FOLLOWER => "follower",
                            ROLE_FENCED => "fenced",
                            _ => "unknown",
                        };
                        Json::obj(vec![
                            ("addr", Json::from(r.addr.to_string())),
                            ("alive", Json::Bool(r.alive.load(Ordering::SeqCst))),
                            ("role", Json::from(role)),
                            ("epoch", Json::from(r.epoch.load(Ordering::SeqCst))),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("name", Json::from(g.name.as_str())),
                    (
                        "primary",
                        Json::from(g.primary.load(Ordering::SeqCst) as u64),
                    ),
                    ("epoch", Json::from(g.epoch.load(Ordering::SeqCst))),
                    (
                        "retry_budget_millis",
                        Json::Num(g.retry_millis.load(Ordering::Relaxed) as f64),
                    ),
                    ("replicas", Json::Arr(replicas)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("policy", Json::from(self.policy.as_str())),
            ("forwarded", Json::from(forwarded)),
            ("writes", Json::from(writes)),
            ("reads", Json::from(reads)),
            ("failovers", Json::from(failovers)),
            ("read_retries", Json::from(read_retries)),
            ("rejected", Json::from(rejected)),
            ("retry_budget_exhausted", Json::from(budget_exhausted)),
            ("fenced", Json::from(fenced)),
            ("groups", Json::Arr(groups)),
        ])
    }
}

/// Per-client-connection pool of keep-alive backend connections, used
/// for reads only (writes always get a fresh connection).
type BackendPool = HashMap<SocketAddr, TcpStream>;

/// One client connection: parse → route → relay, keep-alive aware.
fn handle_connection(router: &Router, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // A wedged client should not pin a router thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut backends: BackendPool = BackendPool::new();
    loop {
        let req = match parse_request(&mut reader) {
            Ok(req) => req,
            Err(HttpError::ConnectionClosed) => return,
            Err(_) => {
                let resp = local_error(400, "bad_request", "malformed HTTP request");
                let _ = write_client_response(&mut writer, &resp, false);
                return;
            }
        };
        let keep_alive = req.keep_alive;
        let resp = router.route(&req, &mut backends);
        if write_client_response(&mut writer, &resp, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Extracts the routing fields from a personalize body without
/// validating the rest (the backend owns full validation).
fn personalize_fields(body: &[u8]) -> Option<(String, String)> {
    let text = std::str::from_utf8(body).ok()?;
    let parsed = json::parse(text).ok()?;
    let user = parsed.get("user")?.as_str()?.to_string();
    let sql = parsed.get("sql")?.as_str()?.to_string();
    Some((user, sql))
}

/// `GET /healthz/ready` doubles as the fencing heartbeat: the probe
/// carries the group's epoch in `x-cqp-epoch` (a lower-epoch primary
/// self-demotes on receipt) and parses the replica's role and epoch out
/// of the readiness body. Liveness is still just "status 200" — a
/// pre-epoch backend with no role/epoch fields probes as an unknown-role
/// epoch-0 replica and everything behaves as before.
fn probe_replica(addr: SocketAddr, group_epoch: u64, timeout: Duration) -> Option<(u8, u64)> {
    let headers = [("x-cqp-epoch", group_epoch.to_string())];
    let resp = send_local_request(addr, "GET", "/healthz/ready", &headers, timeout).ok()?;
    if resp.status != 200 {
        return None;
    }
    let body = std::str::from_utf8(&resp.body)
        .ok()
        .and_then(|text| json::parse(text).ok());
    let role = body
        .as_ref()
        .and_then(|b| b.get("role"))
        .and_then(Json::as_str)
        .map(|r| match r {
            "primary" => ROLE_PRIMARY,
            "follower" => ROLE_FOLLOWER,
            "fenced" => ROLE_FENCED,
            _ => ROLE_UNKNOWN,
        })
        .unwrap_or(ROLE_UNKNOWN);
    let epoch = body
        .as_ref()
        .and_then(|b| b.get("epoch"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    Some((role, epoch))
}

/// `POST /admin/promote` — with `target`, asks the backend to take that
/// exact epoch (the backend refuses, idempotently, if it is already at
/// or past it). Success means the backend now reports itself primary;
/// returns its resulting epoch (0 for pre-epoch backends).
fn promote(addr: SocketAddr, timeout: Duration, target: Option<u64>) -> Option<u64> {
    let path = match target {
        Some(epoch) => format!("/admin/promote?epoch={epoch}"),
        None => "/admin/promote".to_string(),
    };
    let resp = send_local_request(addr, "POST", &path, &[], timeout).ok()?;
    if resp.status != 200 {
        return None;
    }
    let body = std::str::from_utf8(&resp.body)
        .ok()
        .and_then(|text| json::parse(text).ok())?;
    match body.get("role").and_then(Json::as_str) {
        Some("primary") => Some(body.get("epoch").and_then(Json::as_u64).unwrap_or(0)),
        _ => None,
    }
}

/// A one-shot router-originated request (probe, promote).
fn send_local_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, String)],
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: cqp-router\r\ncontent-length: 0\r\n");
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("connection: close\r\n\r\n");
    writer.write_all(head.as_bytes())?;
    writer.flush()?;
    parse_response(&mut BufReader::new(stream)).map_err(http_to_io)
}

/// Forwards `req` over a fresh, immediately-closed connection (writes).
fn forward_fresh(addr: SocketAddr, req: &Request, timeout: Duration) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    write_backend_request(&mut writer, req, false)?;
    parse_response(&mut BufReader::new(stream)).map_err(http_to_io)
}

/// Forwards `req` over the pooled keep-alive connection to `addr`,
/// transparently replacing a stale one (reads only — a retried write
/// could double-apply).
fn forward_reused(
    backends: &mut BackendPool,
    addr: SocketAddr,
    req: &Request,
    connect_timeout: Duration,
) -> io::Result<ClientResponse> {
    let reused = backends.contains_key(&addr);
    if let Some(stream) = backends.get_mut(&addr) {
        match forward_on(stream, req) {
            Ok(resp) => return Ok(resp),
            Err(_) => {
                // Stale keep-alive (idle-timeout race); rebuild below.
                backends.remove(&addr);
            }
        }
    }
    let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    backends.insert(addr, stream);
    let stream = backends.get_mut(&addr).expect("just inserted");
    match forward_on(stream, req) {
        Ok(resp) => Ok(resp),
        Err(e) => {
            backends.remove(&addr);
            // One rebuild attempt per call: if a fresh connection also
            // failed, the replica is genuinely unreachable.
            let _ = reused;
            Err(e)
        }
    }
}

/// One request/response exchange on an established backend connection.
fn forward_on(stream: &mut TcpStream, req: &Request) -> io::Result<ClientResponse> {
    write_backend_request(stream, req, true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    parse_response(&mut reader).map_err(http_to_io)
}

/// Serializes `req` toward a backend, preserving application headers
/// (trace IDs, deadlines) and owning the hop-by-hop ones.
fn write_backend_request<W: Write>(
    writer: &mut W,
    req: &Request,
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "{} {} HTTP/1.1\r\nhost: cqp-router\r\ncontent-length: {}\r\nconnection: {}\r\n",
        req.method,
        req.path,
        req.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &req.headers {
        if matches!(name.as_str(), "host" | "content-length" | "connection") {
            continue;
        }
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(&req.body);
    writer.write_all(&out)?;
    writer.flush()
}

/// Relays a backend (or locally built) response to the client. The
/// router owns the hop-by-hop headers; everything else passes through.
fn write_client_response<W: Write>(
    writer: &mut W,
    resp: &ClientResponse,
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status));
    for (name, value) in &resp.headers {
        if matches!(name.as_str(), "content-length" | "connection") {
            continue;
        }
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!(
        "content-length: {}\r\nconnection: {}\r\n\r\n",
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    ));
    let mut out = head.into_bytes();
    out.extend_from_slice(&resp.body);
    writer.write_all(&out)?;
    writer.flush()
}

/// Standard reason phrases for the statuses the router relays.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// A locally generated JSON response.
fn local_json(status: u16, body: Json) -> ClientResponse {
    ClientResponse {
        status,
        headers: vec![("content-type".into(), "application/json".into())],
        body: body.render().into_bytes(),
    }
}

/// A locally generated error in the backend's `ApiError` wire shape.
fn local_error(status: u16, code: &'static str, message: impl Into<String>) -> ClientResponse {
    local_json(
        status,
        Json::obj(vec![
            ("error", Json::from(code)),
            ("message", Json::from(message.into())),
        ]),
    )
}

fn http_to_io(e: HttpError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}
