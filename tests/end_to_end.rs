//! Integration tests spanning the whole workspace: database → profile →
//! preference space → search → construction → execution.

use cqp_core::{Algorithm, CqpSystem, ProblemSpec, SolverConfig};
use cqp_datagen::{
    generate_movie_db, generate_movie_profile, generate_movie_queries, MovieDbConfig,
    ProfileGenConfig, QueryGenConfig,
};
use cqp_engine::QueryBuilder;
use cqp_prefs::{Doi, Profile};

fn tiny_system() -> (cqp_storage::Database, ProfileGenConfig) {
    let db_cfg = MovieDbConfig::tiny(11);
    let db = generate_movie_db(&db_cfg);
    let p_cfg = ProfileGenConfig {
        n_directors: db_cfg.directors,
        n_actors: db_cfg.actors,
        ..ProfileGenConfig::tiny(23)
    };
    (db, p_cfg)
}

#[test]
fn full_pipeline_produces_executable_queries() {
    let (db, p_cfg) = tiny_system();
    let system = CqpSystem::new(&db);
    let profile = generate_movie_profile(db.catalog(), &p_cfg);
    let queries = generate_movie_queries(db.catalog(), &QueryGenConfig::default());

    for query in &queries {
        let outcome = system
            .personalize(
                query,
                &profile,
                &ProblemSpec::p2(100),
                &SolverConfig::default(),
            )
            .expect("personalization succeeds");
        // The constructed query must validate and execute.
        outcome
            .query
            .validate(db.catalog())
            .expect("valid construction");
        let (rows, blocks, ms) = system.execute(&outcome.query, 1.0).expect("executes");
        assert!(blocks > 0);
        assert!(ms > 0.0);
        // The personalized answer is a subset of the base answer.
        let base = cqp_engine::execute(&db, query, &cqp_storage::IoMeter::default())
            .expect("base executes");
        assert!(rows.len() <= base.len());
        // Constraint respected.
        assert!(outcome.solution.cost_blocks <= 100 || !outcome.solution.found);
    }
}

#[test]
fn exact_algorithms_agree_end_to_end() {
    let (db, p_cfg) = tiny_system();
    let system = CqpSystem::new(&db);
    let profile = generate_movie_profile(db.catalog(), &p_cfg);
    let query = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();

    for cmax in [30u64, 60, 100, 200] {
        let mut dois = Vec::new();
        for algo in [
            Algorithm::CBoundaries,
            Algorithm::DMaxDoi,
            Algorithm::BranchBound,
        ] {
            let config = SolverConfig {
                algorithm: algo,
                ..Default::default()
            };
            let outcome = system
                .personalize(&query, &profile, &ProblemSpec::p2(cmax), &config)
                .expect("personalization succeeds");
            dois.push(outcome.solution.doi);
        }
        assert!(
            dois.windows(2).all(|w| w[0] == w[1]),
            "exact algorithms disagree at cmax={cmax}: {dois:?}"
        );
    }
}

#[test]
fn heuristics_stay_feasible_and_below_optimum() {
    let (db, p_cfg) = tiny_system();
    let system = CqpSystem::new(&db);
    let profile = generate_movie_profile(db.catalog(), &p_cfg);
    let query = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();

    for cmax in [30u64, 60, 100, 200] {
        let exact_cfg = SolverConfig {
            algorithm: Algorithm::CBoundaries,
            ..Default::default()
        };
        let optimum = system
            .personalize(&query, &profile, &ProblemSpec::p2(cmax), &exact_cfg)
            .unwrap()
            .solution;
        for algo in [
            Algorithm::CMaxBounds,
            Algorithm::DHeurDoi,
            Algorithm::DSingleMaxDoi,
        ] {
            let config = SolverConfig {
                algorithm: algo,
                ..Default::default()
            };
            let sol = system
                .personalize(&query, &profile, &ProblemSpec::p2(cmax), &config)
                .unwrap()
                .solution;
            if sol.found {
                assert!(sol.cost_blocks <= cmax, "{algo:?} violated cmax={cmax}");
            }
            assert!(sol.doi <= optimum.doi, "{algo:?} beat the optimum?!");
        }
    }
}

#[test]
fn personalization_is_deterministic() {
    let (db, p_cfg) = tiny_system();
    let system = CqpSystem::new(&db);
    let profile = generate_movie_profile(db.catalog(), &p_cfg);
    let query = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();
    let config = SolverConfig::default();
    let a = system
        .personalize(&query, &profile, &ProblemSpec::p2(80), &config)
        .unwrap();
    let b = system
        .personalize(&query, &profile, &ProblemSpec::p2(80), &config)
        .unwrap();
    assert_eq!(a.solution.prefs, b.solution.prefs);
    assert_eq!(a.sql, b.sql);
}

#[test]
fn all_six_problems_end_to_end() {
    let (db, p_cfg) = tiny_system();
    let system = CqpSystem::new(&db);
    let profile = generate_movie_profile(db.catalog(), &p_cfg);
    let query = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();
    let config = SolverConfig::default();
    let space = system.preference_space(&query, &profile, &config);
    let base = space.base_rows;

    let problems = vec![
        ProblemSpec::p1(1.0, base),
        ProblemSpec::p2(100),
        ProblemSpec::p3(100, 1.0, base),
        ProblemSpec::p4(Doi::new(0.4)),
        ProblemSpec::p5(Doi::new(0.4), 1.0, base),
        ProblemSpec::p6(1.0, base),
    ];
    for problem in problems {
        let outcome = system
            .personalize(&query, &profile, &problem, &config)
            .unwrap();
        if outcome.solution.found {
            assert!(
                problem.feasible(&outcome.solution.params()),
                "{problem:?} produced an infeasible solution"
            );
            system
                .execute(&outcome.query, 1.0)
                .expect("solution query executes");
        }
    }
}

#[test]
fn larger_budget_never_hurts_interest() {
    let (db, p_cfg) = tiny_system();
    let system = CqpSystem::new(&db);
    let profile = generate_movie_profile(db.catalog(), &p_cfg);
    let query = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();
    let config = SolverConfig {
        algorithm: Algorithm::CBoundaries,
        ..Default::default()
    };
    let mut last = Doi::ZERO;
    for cmax in [20u64, 40, 80, 160, 320, 640] {
        let sol = system
            .personalize(&query, &profile, &ProblemSpec::p2(cmax), &config)
            .unwrap()
            .solution;
        assert!(
            sol.doi >= last,
            "doi decreased when the budget grew (cmax={cmax})"
        );
        last = sol.doi;
    }
}

#[test]
fn figure1_profile_example_is_consistent() {
    // Cross-crate re-validation of the paper's running example on a
    // generated database: both Figure 1 implicit preferences are found and
    // the answer is the intersection of the two sub-queries.
    let db = generate_movie_db(&MovieDbConfig::tiny(11));
    let system = CqpSystem::new(&db);
    let profile = Profile::paper_figure1(db.catalog()).unwrap();
    let query = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();
    let config = SolverConfig {
        algorithm: Algorithm::Exhaustive,
        ..Default::default()
    };
    let outcome = system
        .personalize(&query, &profile, &ProblemSpec::p2(10_000), &config)
        .unwrap();
    // The profile names a director ("W. Allen") that the generator never
    // creates, so one sub-query is empty — but extraction still finds both
    // preference paths (relatedness is syntactic).
    assert_eq!(outcome.space_k, 2);
    let (rows, _, _) = system.execute(&outcome.query, 1.0).unwrap();
    assert!(
        rows.is_empty(),
        "no generated movie is directed by W. Allen"
    );
}
