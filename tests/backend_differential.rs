//! Differential tests of the two serving backends over real sockets.
//!
//! `ServerConfig::backend` selects between the threaded accept/spawn core
//! and the epoll reactor pool. The contract is that the backend is a
//! *transport* choice, never a *semantics* choice: the same request
//! sequence against the same database must produce bit-identical answers,
//! the same answer-cache tier tags, and identical Prometheus counters on
//! both. This suite drives both backends side by side:
//!
//! 1. all six Table-1 problems, solved twice each (cold + exact-tier hit);
//! 2. the error surface (bad request line, bad header, unknown route, bad
//!    content-length, oversized body declaration);
//! 3. a seeded single-client closed loop whose deterministic report
//!    fields must agree exactly.

use cqp_obs::Json;
use cqp_server::http::{parse_response, ClientResponse};
use cqp_server::{json, start, Backend, LoadConfig, ServerConfig, ServerHandle};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

const PROFILE_WIRE: &str = "# cqp-profile v1\n\
    profile al\n\
    join 0.9 MOVIE.mid GENRE.mid\n\
    join 1.0 MOVIE.did DIRECTOR.did\n\
    select 0.8 GENRE.genre eq \"comedy\"\n\
    select 0.6 MOVIE.year ge 1990\n";

const SQL: &str = "SELECT title FROM MOVIE";

fn boot(backend: Backend, config: ServerConfig) -> ServerHandle {
    let db = Arc::new(cqp_datagen::generate_movie_db(
        &cqp_datagen::MovieDbConfig::tiny(7),
    ));
    start(db, ServerConfig { backend, ..config }).expect("server start")
}

/// One request over a fresh connection; closes after the response.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n");
    if let Some(b) = body {
        head.push_str(&format!("content-length: {}\r\n", b.len()));
    }
    head.push_str("\r\n");
    let mut payload = head.into_bytes();
    if let Some(b) = body {
        payload.extend_from_slice(b.as_bytes());
    }
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&payload).expect("write");
    parse_response(&mut BufReader::new(stream)).expect("response")
}

/// Sends raw bytes and returns the raw response status + body (or EOF).
fn raw_exchange(addr: SocketAddr, bytes: &[u8]) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    parse_response(&mut BufReader::new(stream))
        .ok()
        .map(|r| (r.status, r.body_text()))
}

fn personalize(addr: SocketAddr, problem: &str) -> Json {
    let body = format!(
        "{{\"user\":\"al\",\"sql\":{},\"problem\":{problem},\"algorithm\":\"branch_bound\"}}",
        Json::Str(SQL.to_string()).render()
    );
    let resp = request(addr, "POST", "/personalize", Some(&body));
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    json::parse(&resp.body_text()).expect("personalize body is JSON")
}

/// The answer-carrying fields — everything except per-request latency.
fn answer_fields(body: &Json) -> String {
    let field = |k: &str| body.get(k).cloned().unwrap_or(Json::Null);
    Json::obj(vec![
        ("sql", field("sql")),
        ("solution", field("solution")),
        ("pref_dois", field("pref_dois")),
        ("profile_version", field("profile_version")),
        ("cache", field("cache")),
    ])
    .render()
}

fn prom_value(text: &str, prefix: &str) -> Option<f64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| {
            l.strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

/// The six Table-1 problems in the server's wire encoding.
fn six_problems() -> [String; 6] {
    [
        "{\"kind\":\"p1\",\"smin\":0,\"smax\":1000000}".to_string(),
        "{\"kind\":\"p2\",\"cmax\":500}".to_string(),
        "{\"kind\":\"p3\",\"cmax\":500,\"smin\":0,\"smax\":1000000}".to_string(),
        "{\"kind\":\"p4\",\"dmin\":0.3}".to_string(),
        "{\"kind\":\"p5\",\"dmin\":0.3,\"smin\":0,\"smax\":1000000}".to_string(),
        "{\"kind\":\"p6\",\"smin\":0,\"smax\":1000000}".to_string(),
    ]
}

/// Counters whose values must agree exactly after identical request
/// sequences. Timing-shaped series (latency histograms, SLO burn) are
/// deliberately absent.
const COMPARED_COUNTERS: &[&str] = &[
    "cqp_requests_total{endpoint=\"personalize\",outcome=\"ok\"}",
    "cqp_requests_total{endpoint=\"profiles\",outcome=\"ok\"}",
    "cqp_admission_admitted_total",
    "cqp_admission_rejected_total",
    "cqp_submit_panics_total",
    "cqp_profile_upserts_total",
    "cqp_answer_cache_hits_total{tier=\"exact\"}",
    "cqp_answer_cache_misses_total",
    "cqp_slo_window_requests",
];

fn compare_counters(threaded: &ServerHandle, epoll: &ServerHandle, context: &str) {
    let scrape = |h: &ServerHandle| {
        let resp = request(h.addr(), "GET", "/metrics", None);
        assert_eq!(resp.status, 200);
        resp.body_text()
    };
    let t = scrape(threaded);
    let e = scrape(epoll);
    for name in COMPARED_COUNTERS {
        assert_eq!(
            prom_value(&t, name),
            prom_value(&e, name),
            "{context}: counter {name} diverged across backends"
        );
    }
}

/// All six Table-1 problems: cold solve + exact-tier revisit on each
/// backend, every response pair bit-identical including the cache tag,
/// and the full counter surface equal afterwards.
#[test]
fn six_problems_are_bit_identical_across_backends() {
    let mut threaded = boot(Backend::Threaded, ServerConfig::default());
    let mut epoll = boot(Backend::Epoll, ServerConfig::default());
    for h in [&threaded, &epoll] {
        let resp = request(h.addr(), "POST", "/profiles/al", Some(PROFILE_WIRE));
        assert_eq!(resp.status, 200, "{}", resp.body_text());
    }
    for problem in &six_problems() {
        let cold_t = personalize(threaded.addr(), problem);
        let cold_e = personalize(epoll.addr(), problem);
        assert_eq!(
            answer_fields(&cold_t),
            answer_fields(&cold_e),
            "cold answers diverged on {problem}"
        );
        let hit_t = personalize(threaded.addr(), problem);
        let hit_e = personalize(epoll.addr(), problem);
        assert_eq!(
            answer_fields(&hit_t),
            answer_fields(&hit_e),
            "cache-hit answers diverged on {problem}"
        );
        assert_eq!(
            hit_t.get("cache").and_then(Json::as_str),
            Some("exact"),
            "revisit must hit the exact tier on {problem}"
        );
    }
    compare_counters(&threaded, &epoll, "six problems");
    for h in [&threaded, &epoll] {
        assert_eq!(h.state().driver.submit_panics(), 0);
        // The server tears a connection down *after* the client has read
        // the response, so the gauge trails the last exchange briefly.
        let t0 = std::time::Instant::now();
        while h.state().active_connections() != 0 && t0.elapsed().as_secs() < 5 {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(h.state().active_connections(), 0);
    }
    threaded.stop();
    epoll.stop();
}

/// The error surface: malformed and unroutable requests earn the same
/// status and the same body text on both backends.
#[test]
fn error_responses_are_identical_across_backends() {
    let mut threaded = boot(Backend::Threaded, ServerConfig::default());
    let mut epoll = boot(Backend::Epoll, ServerConfig::default());
    let cases: &[&[u8]] = &[
        b"BOGUS\r\n\r\n",
        b"GET nopath HTTP/1.1\r\n\r\n",
        b"GET / HTTP/9.9\r\n\r\n",
        b"GET /no/such/route HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
        b"POST /personalize HTTP/1.1\r\ncontent-length: nan\r\n\r\n",
        b"POST /personalize HTTP/1.1\r\ncontent-length: 2097153\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\nbroken header line\r\n\r\n",
        b"POST /profiles/al HTTP/1.1\r\nconnection: close\r\ncontent-length: 7\r\n\r\nnot the",
        b"\x00\x01\x02\x03\r\n\r\n",
    ];
    for bytes in cases {
        let t = raw_exchange(threaded.addr(), bytes);
        let e = raw_exchange(epoll.addr(), bytes);
        assert_eq!(
            t,
            e,
            "error response diverged for {:?}",
            String::from_utf8_lossy(bytes)
        );
    }
    threaded.stop();
    epoll.stop();
}

/// A seeded single-client closed loop: every deterministic field of the
/// load report — status tallies, cache tiers, staleness — agrees exactly.
/// (Latency quantiles and wall-clock are timing and excluded; `degraded`
/// is deadline-dependent and excluded.)
#[test]
fn seeded_closed_loop_reports_agree_across_backends() {
    let config = || ServerConfig {
        seed_users: 4,
        seed: 11,
        ..ServerConfig::default()
    };
    let mut threaded = boot(Backend::Threaded, config());
    let mut epoll = boot(Backend::Epoll, config());
    let load = LoadConfig {
        clients: 1,
        requests_per_client: 60,
        seed: 1234,
        users: (1..=4).map(|i| format!("user{i:04}")).collect(),
        queries: vec![SQL.to_string()],
        problems: vec![
            "{\"kind\":\"p2\",\"cmax\":500}".to_string(),
            "{\"kind\":\"p6\",\"smin\":0,\"smax\":1000000}".to_string(),
        ],
        zero_deadline_permille: 0,
        trace_every: 3,
        ..LoadConfig::default()
    };
    let report_t = cqp_server::run_load(threaded.addr(), &load).expect("threaded load");
    let report_e = cqp_server::run_load(epoll.addr(), &load).expect("epoll load");
    let deterministic = |r: &cqp_server::LoadReport| {
        (
            r.requests,
            r.ok,
            r.rejected,
            r.unavailable,
            r.client_errors,
            r.server_errors,
            r.io_errors,
            r.traced,
            r.trace_mismatches,
            r.stale_answers,
            (
                r.cache_exact,
                r.cache_warm,
                r.cache_repair,
                r.cache_miss,
                r.cache_off,
            ),
        )
    };
    assert_eq!(
        deterministic(&report_t),
        deterministic(&report_e),
        "deterministic load report fields diverged across backends"
    );
    assert_eq!(report_t.io_errors, 0);
    assert!(report_t.ok > 0);
    assert_eq!(report_t.trace_mismatches, 0);
    compare_counters(&threaded, &epoll, "closed loop");
    threaded.stop();
    epoll.stop();
}
