//! Integration tests for the observability pipeline: the full
//! personalize-and-execute flow under an [`Obs`] must produce nested spans
//! across the solver, engine, and storage layers, matching registry
//! counters, and exportable run-report lines.

use cqp_core::{Algorithm, CqpSystem, ProblemSpec, SolverConfig};
use cqp_datagen::{
    generate_movie_db, generate_movie_profile, generate_movie_queries, MovieDbConfig,
    ProfileGenConfig, QueryGenConfig,
};
use cqp_obs::{Obs, Recorder, RunReport};
use std::sync::Arc;

fn traced_run(algorithm: Algorithm) -> (Arc<Obs>, u64) {
    let db_cfg = MovieDbConfig::tiny(11);
    let db = generate_movie_db(&db_cfg);
    let p_cfg = ProfileGenConfig {
        n_directors: db_cfg.directors,
        n_actors: db_cfg.actors,
        ..ProfileGenConfig::tiny(23)
    };
    let profile = generate_movie_profile(db.catalog(), &p_cfg);
    let query = generate_movie_queries(db.catalog(), &QueryGenConfig::default())
        .into_iter()
        .next()
        .expect("generator yields queries");

    let obs = Arc::new(Obs::new());
    let system = CqpSystem::new_recorded(&db, &*obs);
    let config = SolverConfig {
        algorithm,
        ..SolverConfig::default()
    };
    let outcome = system
        .personalize_recorded(&query, &profile, &ProblemSpec::p2(100), &config, &*obs)
        .expect("personalization succeeds");
    let (_, blocks, _) = system
        .execute_recorded(&outcome.query, 1.0, Arc::clone(&obs) as Arc<dyn Recorder>)
        .expect("execution succeeds");
    (obs, blocks)
}

#[test]
fn c_boundaries_emits_phase_spans_and_block_reads() {
    let (obs, blocks) = traced_run(Algorithm::CBoundaries);
    let spans = obs.with_tracer(|t| t.spans());
    let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();

    // Solver-phase, engine-exec, and storage-analyze levels all present.
    let find_boundaries = paths
        .iter()
        .position(|p| *p == "personalize.search.C_Boundaries.find_boundaries")
        .expect("phase-1 span");
    let find_max_doi = paths
        .iter()
        .position(|p| *p == "personalize.search.C_Boundaries.find_max_doi")
        .expect("phase-2 span");
    assert!(
        find_boundaries < find_max_doi,
        "FINDBOUNDARY must precede C_FINDMAXDOI: {paths:?}"
    );
    assert!(paths.contains(&"storage.analyze"));
    assert!(paths.contains(&"personalize.construct"));
    assert!(paths.contains(&"engine.execute_personalized"));

    // Physical reads reached the registry and agree with the executor.
    let blocks_read = obs.registry().counter("storage.blocks_read");
    assert!(blocks_read > 0, "block reads must be counted");
    assert!(
        blocks_read >= blocks,
        "registry ({blocks_read}) covers analyze + execute ({blocks})"
    );
    assert!(obs.registry().counter("engine.scans") > 0);
    assert!(obs.registry().counter("solver.states_examined") > 0);
}

#[test]
fn span_tree_renders_nested_levels() {
    let (obs, _) = traced_run(Algorithm::CBoundaries);
    let tree = obs.render_tree();
    for needle in [
        "personalize",
        "search",
        "C_Boundaries",
        "find_boundaries",
        "find_max_doi",
        "engine.execute_personalized",
    ] {
        assert!(tree.contains(needle), "missing `{needle}` in:\n{tree}");
    }
    // Depths are visible as indentation: the phase spans sit under search.
    let spans = obs.with_tracer(|t| t.spans());
    let depth_of = |path: &str| {
        spans
            .iter()
            .find(|s| s.path == path)
            .map(|s| s.depth)
            .unwrap()
    };
    assert!(
        depth_of("personalize.search.C_Boundaries.find_boundaries")
            > depth_of("personalize.search")
    );
}

#[test]
fn run_report_serializes_the_whole_run() {
    let (obs, _) = traced_run(Algorithm::CBoundaries);
    let line = RunReport::from_obs("observability_it", "C_Boundaries", &obs)
        .with_field("cmax_blocks", 100u64)
        .to_json()
        .render();
    assert!(line.starts_with(r#"{"experiment":"observability_it","label":"C_Boundaries""#));
    assert!(line.contains(r#""storage.blocks_read":"#));
    assert!(line.contains(r#""solver.states_examined":"#));
    assert!(line.contains("personalize.search.C_Boundaries.find_boundaries"));
}

#[test]
fn recording_is_observation_only() {
    // The same pipeline, plain vs recorded, lands on the same answer.
    let db_cfg = MovieDbConfig::tiny(11);
    let db = generate_movie_db(&db_cfg);
    let p_cfg = ProfileGenConfig {
        n_directors: db_cfg.directors,
        n_actors: db_cfg.actors,
        ..ProfileGenConfig::tiny(23)
    };
    let profile = generate_movie_profile(db.catalog(), &p_cfg);
    let query = generate_movie_queries(db.catalog(), &QueryGenConfig::default())
        .into_iter()
        .next()
        .unwrap();
    let problem = ProblemSpec::p2(100);
    let config = SolverConfig {
        algorithm: Algorithm::CBoundaries,
        ..SolverConfig::default()
    };

    let plain = CqpSystem::new(&db)
        .personalize(&query, &profile, &problem, &config)
        .unwrap();
    let obs = Obs::new();
    let recorded = CqpSystem::new_recorded(&db, &obs)
        .personalize_recorded(&query, &profile, &problem, &config, &obs)
        .unwrap();
    assert_eq!(plain.solution.prefs, recorded.solution.prefs);
    assert_eq!(plain.solution.doi, recorded.solution.doi);
    assert_eq!(plain.sql, recorded.sql);
}
