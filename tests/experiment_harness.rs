//! Smoke tests for the experiment harness: every figure/table generator
//! must run at tiny scale and produce structurally sound rows. This keeps
//! the `reproduce` binary trustworthy without paying default-scale runtimes
//! in CI.

use cqp_bench::experiments::{self, FIG12_ALGORITHMS, FIG14_ALGORITHMS};
use cqp_bench::harness::{supreme_cost_blocks, Scale};
use cqp_bench::{build_workload, csvout};

fn tiny() -> cqp_bench::Workload {
    build_workload(&Scale::tiny())
}

#[test]
fn fig12a_rows_cover_every_algorithm_and_k() {
    let w = tiny();
    let ks = [4usize, 6];
    let rows = experiments::fig12a(&w, &ks, &FIG12_ALGORITHMS);
    assert_eq!(rows.len(), ks.len() * FIG12_ALGORITHMS.len());
    for r in &rows {
        assert!(r.seconds >= 0.0);
        assert!(r.states >= 0.0);
    }
    // Every algorithm/K combination is present exactly once.
    for algo in FIG12_ALGORITHMS {
        for k in ks {
            assert_eq!(
                rows.iter()
                    .filter(|r| r.algorithm == algo.name() && r.x == k as f64)
                    .count(),
                1
            );
        }
    }
}

#[test]
fn fig12b_prefspace_times_are_sane() {
    let w = tiny();
    let rows = experiments::fig12b(&w, &[4, 8]);
    assert_eq!(rows.len(), 4); // 2 Ks × 2 variants
    for r in &rows {
        assert!(r.seconds >= 0.0);
        assert!(r.k == 4 || r.k == 8);
    }
}

#[test]
fn fig12c_sweeps_percent_of_supreme() {
    let w = tiny();
    let rows = experiments::fig12c(&w, 6, &[20, 60, 100], &FIG12_ALGORITHMS);
    assert_eq!(rows.len(), 3 * FIG12_ALGORITHMS.len());
    // At 100% everything is feasible: a single climb, minimal states.
    let at_100: Vec<_> = rows.iter().filter(|r| r.x == 100.0).collect();
    let at_60: Vec<_> = rows.iter().filter(|r| r.x == 60.0).collect();
    let s100: f64 = at_100.iter().map(|r| r.states).sum();
    let s60: f64 = at_60.iter().map(|r| r.states).sum();
    assert!(
        s100 <= s60 + 1e-9,
        "100% supreme must not be harder than 60%"
    );
}

#[test]
fn fig13_memory_rows_are_positive_where_search_happens() {
    let w = tiny();
    let rows = experiments::fig13a(&w, &[6], &FIG12_ALGORITHMS);
    assert_eq!(rows.len(), FIG12_ALGORITHMS.len());
    for r in &rows {
        assert!(r.kbytes >= 0.0);
    }
}

#[test]
fn fig14_quality_gaps_nonnegative_and_heuristics_listed() {
    let w = tiny();
    let rows = experiments::fig14a(&w, &[6], cqp_prefs::ConjModel::NoisyOr);
    assert_eq!(rows.len(), FIG14_ALGORITHMS.len());
    for r in &rows {
        assert!(r.quality_gap >= 0.0, "{} gap negative", r.algorithm);
        assert!(r.quality_gap <= 1.0);
    }
}

#[test]
fn fig15_estimate_tracks_measurement() {
    let w = tiny();
    let rows = experiments::fig15(&w, &[3, 6]);
    assert_eq!(rows.len(), 2);
    for r in &rows {
        assert!(r.estimated_ms > 0.0);
        // Measured = simulated I/O (identical to the estimate by
        // construction) + CPU time, so it can only exceed the estimate.
        assert!(r.real_ms >= r.estimated_ms);
        // ... but not by much: the model's error is the CPU overhead only.
        assert!(r.real_ms <= r.estimated_ms * 1.5, "{r:?}");
    }
}

#[test]
fn table1_solves_all_six_and_matches_exact_where_guaranteed() {
    let w = tiny();
    let rows = experiments::table1(&w, 8);
    assert_eq!(rows.len(), 6);
    for r in &rows {
        assert!((1..=6).contains(&r.problem));
        // The state-space adaptation is exact for Problems 2 and 4 (see
        // algorithms::general); the composite problems are heuristic and
        // may legitimately diverge from branch-and-bound.
        if r.problem == 2 || r.problem == 4 {
            assert!(
                r.matches_exact,
                "P{} diverged from branch-and-bound",
                r.problem
            );
        }
        if r.found {
            assert!(r.doi >= 0.0 && r.doi <= 1.0);
            assert!(r.size_rows >= 0.0);
        }
    }
}

#[test]
fn ablations_run_at_tiny_scale() {
    let w = tiny();
    let rows = experiments::ablation_generic(&w, 6);
    assert!(rows.len() >= 6);
    for (t, q) in &rows {
        assert!(t.seconds >= 0.0);
        assert!(q.quality_gap >= 0.0);
    }
    let models = experiments::ablation_doi_model(&w, &[5]);
    assert_eq!(models.len(), 3);
    let budget = experiments::ablation_annealing_budget(&w, 6, &[100, 400]);
    assert_eq!(budget.len(), 2);
    assert!(budget[0].x < budget[1].x);
}

#[test]
fn csv_writers_roundtrip_every_row_kind() {
    let w = tiny();
    let dir = std::env::temp_dir().join("cqp_harness_csv_test");
    let times = experiments::fig12a(&w, &[4], &[cqp_core::Algorithm::CMaxBounds]);
    csvout::write_times(&dir, "t", &times).unwrap();
    let mem = experiments::fig13a(&w, &[4], &[cqp_core::Algorithm::CMaxBounds]);
    csvout::write_memory(&dir, "m", &mem).unwrap();
    let qual = experiments::fig14a(&w, &[4], cqp_prefs::ConjModel::NoisyOr);
    csvout::write_quality(&dir, "q", &qual).unwrap();
    let pres = experiments::fig12b(&w, &[4]);
    csvout::write_prefsel(&dir, "p", &pres).unwrap();
    let cm = experiments::fig15(&w, &[3]);
    csvout::write_costmodel(&dir, "c", &cm).unwrap();
    let probs = experiments::table1(&w, 6);
    csvout::write_problems(&dir, "x", &probs).unwrap();
    for f in ["t", "m", "q", "p", "c", "x"] {
        let content = std::fs::read_to_string(dir.join(format!("{f}.csv"))).unwrap();
        assert!(content.lines().count() >= 2, "{f}.csv lacks data rows");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn supreme_cost_and_cmax_policy() {
    let w = tiny();
    let (p, q) = w.pairs().next().unwrap();
    let (space, _) = w.space(p, q, 8, true);
    let supreme = supreme_cost_blocks(&space);
    assert!(supreme > 0);
    // Tiny scale uses the fixed budget.
    assert_eq!(w.scale.cmax_for(&space), w.scale.cmax_blocks);
    // Ratio mode binds to the supreme cost.
    let ratio = Scale {
        cmax_supreme_frac: Some(0.5),
        ..Scale::tiny()
    };
    let half = ratio.cmax_for(&space);
    assert!(half > 0 && half <= supreme);
    assert_eq!(half, ((supreme as f64) * 0.5).round() as u64);
}
