//! End-to-end tests of the distributed tier (`cqp-cluster`).
//!
//! The load-bearing claims, in order of importance:
//!
//! 1. **Zero lost acknowledged writes** — a profile write acknowledged
//!    through the router is present on the follower (the replication ack
//!    is synchronous), so killing the primary and failing over loses
//!    nothing the client was told succeeded.
//! 2. **Failover is automatic and transparent** — the router's health
//!    probe promotes a live follower; reads and writes keep flowing
//!    through the same front door.
//! 3. **Divergent beats uniform** — pinning each canonical SQL template
//!    class to one replica yields strictly more answer-cache hits than
//!    alternating replicas over the same workload.

use cqp_cluster::{Cluster, ClusterConfig, RoutingPolicy};
use cqp_obs::Json;
use cqp_server::http::{parse_response, ClientResponse};
use cqp_server::json;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static DIR_SERIAL: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "cqp-cluster-{tag}-{}-{}",
        std::process::id(),
        DIR_SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One request over a fresh connection; closes after the response.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n");
    if let Some(b) = body {
        head.push_str(&format!("content-length: {}\r\n", b.len()));
    }
    head.push_str("\r\n");
    let mut payload = head.into_bytes();
    if let Some(b) = body {
        payload.extend_from_slice(b.as_bytes());
    }
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&payload).expect("write");
    stream.flush().expect("flush");
    parse_response(&mut BufReader::new(stream)).expect("response")
}

fn profile_wire(user: &str) -> String {
    format!(
        "# cqp-profile v1\n\
         profile {user}\n\
         join 0.9 MOVIE.mid GENRE.mid\n\
         select 0.8 GENRE.genre eq \"comedy\"\n\
         select 0.6 MOVIE.year ge 1990\n"
    )
}

fn personalize_body(user: &str, sql: &str) -> String {
    format!(
        "{{\"user\":{},\"sql\":{},\"problem\":{{\"kind\":\"p2\",\"cmax\":500}},\
         \"algorithm\":\"c_maxbounds\"}}",
        Json::Str(user.to_string()).render(),
        Json::Str(sql.to_string()).render()
    )
}

/// The `cache` tier a personalize response reports.
fn cache_tier(resp: &ClientResponse) -> String {
    json::parse(&resp.body_text())
        .expect("personalize body is JSON")
        .get("cache")
        .and_then(Json::as_str)
        .expect("cache tier present")
        .to_string()
}

fn users(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("user{i:03}")).collect()
}

/// Polls `f` until it returns true or `timeout` elapses.
fn wait_for(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

#[test]
fn writes_through_the_router_replicate_to_every_follower() {
    let mut cluster = Cluster::start(ClusterConfig::new(2, tmpdir("repl"))).expect("cluster");
    let addr = cluster.router.addr();
    let all = users(8);
    for user in &all {
        let resp = request(
            addr,
            "POST",
            &format!("/profiles/{user}"),
            Some(&profile_wire(user)),
        );
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        let body = json::parse(&resp.body_text()).unwrap();
        assert_eq!(body.get("version").and_then(Json::as_u64), Some(1));
    }

    // Synchronous replication: by the time the router acked the write,
    // the follower had applied it. Every group's follower dump matches
    // its primary's, and the groups partition the users.
    let catalog = cluster.db().catalog().clone();
    let mut seen = 0usize;
    for group in &cluster.groups {
        let primary = group.primary.state().store.dump(&catalog);
        let follower = group.follower.state().store.dump(&catalog);
        assert_eq!(primary, follower, "group {} diverged", group.name);
        seen += primary.len();
        for (version, _) in primary.values() {
            assert_eq!(*version, 1);
        }
    }
    assert_eq!(seen, all.len(), "groups must partition the users");

    // Reads through the router see every profile regardless of group.
    for user in &all {
        let resp = request(addr, "GET", &format!("/profiles/{user}"), None);
        assert_eq!(resp.status, 200, "{user}: {}", resp.body_text());
        assert!(resp.body_text().contains(&format!("profile {user}")));
    }
    cluster.stop();
}

#[test]
fn failover_keeps_every_acknowledged_write_and_accepts_new_ones() {
    let mut cluster = Cluster::start(ClusterConfig::new(1, tmpdir("failover"))).expect("cluster");
    let addr = cluster.router.addr();
    let all = users(6);
    // Two acknowledged versions per user.
    for round in 1..=2u64 {
        for user in &all {
            let resp = request(
                addr,
                "POST",
                &format!("/profiles/{user}"),
                Some(&profile_wire(user)),
            );
            assert_eq!(resp.status, 200, "{}", resp.body_text());
            let body = json::parse(&resp.body_text()).unwrap();
            assert_eq!(body.get("version").and_then(Json::as_u64), Some(round));
        }
    }
    let reference: Vec<String> = all
        .iter()
        .map(|user| request(addr, "GET", &format!("/profiles/{user}"), None).body_text())
        .collect();

    // Kill the primary. The router's probe notices and promotes the
    // follower (counted in /router/stats).
    cluster.groups[0].primary.stop();
    let promoted = wait_for(Duration::from_secs(10), || {
        let stats = request(addr, "GET", "/router/stats", None);
        json::parse(&stats.body_text())
            .ok()
            .and_then(|j| j.get("failovers").and_then(Json::as_u64))
            .is_some_and(|n| n >= 1)
    });
    assert!(promoted, "router never failed the group over");

    // Every acknowledged write survives, bit-identical.
    for (user, expected) in all.iter().zip(&reference) {
        let resp = request(addr, "GET", &format!("/profiles/{user}"), None);
        assert_eq!(resp.status, 200, "{user} lost after failover");
        assert_eq!(
            &resp.body_text(),
            expected,
            "{user} diverged after failover"
        );
    }

    // The promoted follower accepts new writes (version continues) and
    // serves personalize.
    let resp = request(
        addr,
        "POST",
        &format!("/profiles/{}", all[0]),
        Some(&profile_wire(&all[0])),
    );
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let body = json::parse(&resp.body_text()).unwrap();
    assert_eq!(body.get("version").and_then(Json::as_u64), Some(3));
    let resp = request(
        addr,
        "POST",
        "/personalize",
        Some(&personalize_body(&all[0], "SELECT title FROM MOVIE")),
    );
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    cluster.stop();
}

/// Runs `rounds` passes of the same (user × template) personalize mix
/// through a fresh cluster and returns the total answer-cache hit count
/// (`exact` + `warm` tiers).
fn cache_hits(policy: RoutingPolicy, tag: &str, rounds: usize) -> u64 {
    let mut config = ClusterConfig::new(1, tmpdir(tag));
    config.policy = policy;
    let mut cluster = Cluster::start(config).expect("cluster");
    let addr = cluster.router.addr();
    let all = users(5);
    for user in &all {
        let resp = request(
            addr,
            "POST",
            &format!("/profiles/{user}"),
            Some(&profile_wire(user)),
        );
        assert_eq!(resp.status, 200, "{}", resp.body_text());
    }
    // Three templates (distinct constants = distinct canonical classes)
    // over five users: 15 (user, template) pairs per round — odd on
    // purpose, so uniform alternation cannot accidentally re-align pairs
    // with the replica that warmed them.
    let templates = [
        "SELECT title FROM MOVIE",
        "SELECT title FROM MOVIE WHERE MOVIE.year >= 1990",
        "SELECT title FROM MOVIE WHERE MOVIE.year >= 1995",
    ];
    let mut hits = 0u64;
    for _ in 0..rounds {
        for user in &all {
            for sql in &templates {
                let resp = request(
                    addr,
                    "POST",
                    "/personalize",
                    Some(&personalize_body(user, sql)),
                );
                assert_eq!(resp.status, 200, "{}", resp.body_text());
                if matches!(cache_tier(&resp).as_str(), "exact" | "warm") {
                    hits += 1;
                }
            }
        }
    }
    cluster.stop();
    hits
}

#[test]
fn divergent_routing_beats_uniform_on_a_repeated_template_mix() {
    let divergent = cache_hits(RoutingPolicy::Divergent, "divergent", 3);
    let uniform = cache_hits(RoutingPolicy::Uniform, "uniform", 3);
    // Divergent pins each template class to one replica: every repeat
    // after the first is a hit (2 of 3 rounds). Uniform alternates, so
    // each replica pays its own cold pass.
    assert!(
        divergent > uniform,
        "divergent ({divergent} hits) should beat uniform ({uniform} hits)"
    );
    assert!(
        divergent >= 30,
        "divergent should hit on every repeat round"
    );
}

#[test]
fn router_endpoints_and_replica_roles() {
    let mut cluster = Cluster::start(ClusterConfig::new(1, tmpdir("roles"))).expect("cluster");
    let addr = cluster.router.addr();

    let live = request(addr, "GET", "/healthz/live", None);
    assert_eq!(live.status, 200);
    let body = json::parse(&live.body_text()).unwrap();
    assert_eq!(body.get("component").and_then(Json::as_str), Some("router"));

    let stats = request(addr, "GET", "/router/stats", None);
    assert_eq!(stats.status, 200);
    let body = json::parse(&stats.body_text()).unwrap();
    assert_eq!(body.get("policy").and_then(Json::as_str), Some("divergent"));
    assert!(matches!(body.get("groups"), Some(Json::Arr(groups)) if groups.len() == 1));

    let missing = request(addr, "GET", "/metrics", None);
    assert_eq!(missing.status, 404, "per-replica endpoints are not routed");

    // Replica roles: the primary reports `primary`, the follower
    // `follower`, and a direct write to the follower is refused.
    let group = &cluster.groups[0];
    let ready = request(group.primary.addr(), "GET", "/healthz/ready", None);
    let body = json::parse(&ready.body_text()).unwrap();
    assert_eq!(body.get("role").and_then(Json::as_str), Some("primary"));
    let ready = request(group.follower.addr(), "GET", "/healthz/ready", None);
    let body = json::parse(&ready.body_text()).unwrap();
    assert_eq!(body.get("role").and_then(Json::as_str), Some("follower"));
    let refused = request(
        group.follower.addr(),
        "POST",
        "/profiles/al",
        Some(&profile_wire("al")),
    );
    assert_eq!(refused.status, 503);
    let body = json::parse(&refused.body_text()).unwrap();
    assert_eq!(
        body.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("not_primary")
    );
    cluster.stop();
}
