//! Partition tests: epoch fencing, the deterministic nemesis, and the
//! acked-write consistency checker, end to end.
//!
//! The claims under test, in order of importance:
//!
//! 1. **A deposed primary can never accept another write.** Once any
//!    request or heartbeat carrying a higher epoch reaches it, it
//!    self-demotes to fenced and answers every write with 503
//!    `stale_epoch` — by construction, not by timeout.
//! 2. **Split brain does not merge.** Partition the primary, promote
//!    the follower, write through both faces of the brain, heal: the
//!    checker finds zero lost acked writes and zero divergent
//!    `(user, version)` slots, because the old primary's face was
//!    fenced before it could acknowledge anything conflicting.
//! 3. **Racing promotions crown exactly one winner.** Two followers
//!    promoted concurrently both claim primaryship; the router resolves
//!    the tie by re-promoting one at a strictly higher epoch, and the
//!    loser fences itself on the next heartbeat.
//! 4. **Pre-epoch WALs still recover.** A seed-format log (no `E1`
//!    frames, no `epoch` fields) opens as epoch 0 and serves.
//! 5. **Read retries are budgeted.** A flapping replica burns the
//!    group's retry tokens; when the bucket is dry the router sheds
//!    with 503 + `Retry-After` instead of amplifying the failure.

use cqp_cluster::nemesis::{start_nemesis, Fault, NemesisPlan};
use cqp_cluster::{
    check, start_router, AckLog, Cluster, ClusterConfig, ReplicaDump, RouterConfig, ShardSpec,
};
use cqp_core::answer_cache::{fnv1a, FNV_OFFSET};
use cqp_datagen::{generate_movie_db, MovieDbConfig};
use cqp_obs::Json;
use cqp_server::http::{parse_response, ClientResponse};
use cqp_server::{json, start, ServerConfig};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static DIR_SERIAL: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "cqp-partition-{tag}-{}-{}",
        std::process::id(),
        DIR_SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One request over a fresh connection, with optional extra headers.
fn request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n", body.map_or(0, str::len)));
    head.push_str("\r\n");
    let mut payload = head.into_bytes();
    if let Some(b) = body {
        payload.extend_from_slice(b.as_bytes());
    }
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(&payload)?;
    stream.flush()?;
    parse_response(&mut BufReader::new(stream))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
    request_with(addr, method, path, &[], body).expect("request")
}

fn profile_wire(user: &str) -> String {
    format!(
        "# cqp-profile v1\n\
         profile {user}\n\
         join 0.9 MOVIE.mid GENRE.mid\n\
         select 0.8 GENRE.genre eq \"comedy\"\n\
         select 0.6 MOVIE.year ge 1990\n"
    )
}

fn users(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("user{i:03}")).collect()
}

/// Polls `f` until it returns true or `timeout` elapses.
fn wait_for(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// The nested `error.code` of a serverd `ApiError` response.
fn error_code(resp: &ClientResponse) -> Option<String> {
    json::parse(&resp.body_text())
        .ok()?
        .get("error")?
        .get("code")?
        .as_str()
        .map(str::to_string)
}

/// Writes `user`'s profile through `addr` and records the ack (version
/// and epoch from the response) into `log`. Returns the response.
fn acked_write(addr: SocketAddr, user: &str, log: &AckLog) -> ClientResponse {
    try_acked_write(addr, user, log).expect("acked_write request")
}

/// Like [`acked_write`], but a transport failure (connect refused,
/// severed mid-response) is an `Err`, not a panic — what a nemesis run
/// needs, where only 200s count and everything else is noise.
fn try_acked_write(addr: SocketAddr, user: &str, log: &AckLog) -> std::io::Result<ClientResponse> {
    let text = profile_wire(user);
    let resp = request_with(addr, "POST", &format!("/profiles/{user}"), &[], Some(&text))?;
    if resp.status == 200 {
        let body = json::parse(&resp.body_text()).expect("write ack is JSON");
        let version = body
            .get("version")
            .and_then(Json::as_u64)
            .expect("ack carries version");
        let epoch = body.get("epoch").and_then(Json::as_u64).unwrap_or(0);
        log.record(user, version, epoch, &text);
    }
    Ok(resp)
}

/// A replica's `/healthz/ready` role and epoch, read directly.
fn role_and_epoch(addr: SocketAddr) -> (String, u64) {
    let resp = request(addr, "GET", "/healthz/ready", None);
    let body = json::parse(&resp.body_text()).expect("readiness is JSON");
    (
        body.get("role")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string(),
        body.get("epoch").and_then(Json::as_u64).unwrap_or(0),
    )
}

#[test]
fn higher_epoch_write_header_fences_a_primary_permanently() {
    let mut cluster = Cluster::start(ClusterConfig::new(1, tmpdir("fence"))).expect("cluster");
    let primary_addr = cluster.groups[0].primary.addr();

    // A normal write lands (directly on the primary; no header = epoch 0).
    let resp = request(
        primary_addr,
        "POST",
        "/profiles/al",
        Some(&profile_wire("al")),
    );
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert_eq!(role_and_epoch(primary_addr), ("primary".into(), 0));

    // A write stamped with a higher epoch means a newer primary exists
    // somewhere: the replica must refuse it AND stop being a primary.
    let refused = request_with(
        primary_addr,
        "POST",
        "/profiles/al",
        &[("x-cqp-epoch", "5")],
        Some(&profile_wire("al")),
    )
    .expect("request");
    assert_eq!(refused.status, 503, "{}", refused.body_text());
    assert_eq!(error_code(&refused).as_deref(), Some("stale_epoch"));

    // The demotion is permanent and durable: fenced role, adopted
    // epoch, and every further write — with or without a header — is
    // refused with `stale_epoch`.
    assert_eq!(role_and_epoch(primary_addr), ("fenced".into(), 5));
    let refused = request(
        primary_addr,
        "POST",
        "/profiles/al",
        Some(&profile_wire("al")),
    );
    assert_eq!(refused.status, 503);
    assert_eq!(error_code(&refused).as_deref(), Some("stale_epoch"));

    // Reads still work (staleness is the router's problem to route
    // around; the data it does have is intact).
    let read = request(primary_addr, "GET", "/profiles/al", None);
    assert_eq!(read.status, 200);
    cluster.stop();
}

#[test]
fn split_brain_schedule_fences_old_primary_and_loses_no_acked_write() {
    let mut cluster =
        Cluster::start(ClusterConfig::with_nemesis(1, tmpdir("split"))).expect("cluster");
    let router_addr = cluster.router.addr();
    let acks = AckLog::new();
    let all = users(4);

    // Phase 1: healthy writes through the router, all acked at epoch 0.
    for user in &all {
        let resp = acked_write(router_addr, user, &acks);
        assert_eq!(resp.status, 200, "{}", resp.body_text());
    }

    // Phase 2: partition the primary — both its HTTP face (router side)
    // and the replication stream (follower side) go dark at once.
    {
        let nemesis = cluster.groups[0].nemesis.as_ref().expect("nemesis cluster");
        nemesis.primary_http.set_fault(Fault::Partition);
        nemesis.repl.set_fault(Fault::Partition);
    }

    // The router notices and promotes the follower at a higher epoch.
    let promoted = wait_for(Duration::from_secs(10), || {
        let stats = request(router_addr, "GET", "/router/stats", None);
        json::parse(&stats.body_text())
            .ok()
            .and_then(|j| j.get("failovers").and_then(Json::as_u64))
            .is_some_and(|n| n >= 1)
    });
    assert!(promoted, "router never failed over the partitioned primary");

    // Phase 3: write through the router (the healthy side of the
    // brain). These are acked by the new primary at the new epoch.
    for user in &all {
        let ok = wait_for(Duration::from_secs(10), || {
            acked_write(router_addr, user, &acks).status == 200
        });
        assert!(
            ok,
            "{user}: router side of the partition must accept writes"
        );
    }

    // Phase 4: the old primary, still partitioned from the router but
    // reachable by "clients on its side" (we talk to its real address,
    // behind the proxy). The first write carrying the new epoch fences
    // it; everything after dies with `stale_epoch` — the brain's stale
    // face never acknowledges a conflicting write.
    let old_primary = cluster.groups[0].primary.addr();
    let stats = request(router_addr, "GET", "/router/stats", None);
    let new_epoch = json::parse(&stats.body_text())
        .ok()
        .and_then(|j| j.get("groups")?.as_array()?.first()?.get("epoch")?.as_u64())
        .expect("router stats expose the group epoch");
    assert!(new_epoch >= 1, "failover must bump the epoch");
    let epoch_header = new_epoch.to_string();
    let mut fenced_rejections = 0u64;
    for user in &all {
        let resp = request_with(
            old_primary,
            "POST",
            &format!("/profiles/{user}"),
            &[("x-cqp-epoch", &epoch_header)],
            Some(&profile_wire(user)),
        )
        .expect("old primary reachable directly");
        assert_eq!(
            resp.status,
            503,
            "old primary accepted a write: {}",
            resp.body_text()
        );
        assert_eq!(error_code(&resp).as_deref(), Some("stale_epoch"));
        fenced_rejections += 1;
    }
    assert_eq!(role_and_epoch(old_primary).0, "fenced");
    assert!(fenced_rejections > 0);

    // Phase 5: heal. The fenced ex-primary rejoins the network but
    // never primaryship; the router keeps routing around it.
    {
        let nemesis = cluster.groups[0].nemesis.as_ref().expect("nemesis cluster");
        nemesis.primary_http.heal();
        nemesis.repl.heal();
    }
    let resp = acked_write(router_addr, &all[0], &acks);
    assert_eq!(resp.status, 200, "post-heal write: {}", resp.body_text());

    // The verdict: dump both replicas and run the checker. The fenced
    // old primary is exempt from the lost-write check (it is *behind*,
    // by design) but must not *contradict* anything that was acked.
    let catalog = cluster.db().catalog().clone();
    let dumps = vec![
        ReplicaDump {
            name: "g0/old-primary".into(),
            fenced: true,
            sessions: cluster.groups[0].primary.state().store.dump(&catalog),
        },
        ReplicaDump {
            name: "g0/new-primary".into(),
            fenced: false,
            sessions: cluster.groups[0].follower.state().store.dump(&catalog),
        },
    ];
    let report = check(&acks.snapshot(), &dumps);
    assert_eq!(report.lost_acked_writes, 0, "{:?}", report.details);
    assert_eq!(report.split_brain_divergence, 0, "{:?}", report.details);
    assert_eq!(report.order_violations, 0, "{:?}", report.details);
    assert!(report.consistent());
    cluster.stop();
}

#[test]
fn racing_promotions_crown_exactly_one_primary_and_fence_the_loser() {
    let root = tmpdir("race");
    let db = Arc::new(generate_movie_db(&MovieDbConfig::tiny(7)));
    // One primary, two followers — assembled by hand because the
    // harness builds pairs.
    let mut primary = start(
        Arc::clone(&db),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            wal_dir: Some(root.join("primary")),
            repl_listen: Some("127.0.0.1:0".into()),
            seed_users: 0,
            ..Default::default()
        },
    )
    .expect("primary");
    let repl_addr = primary.repl_addr().expect("repl listener").to_string();
    let start_follower = |dir: &str| {
        start(
            Arc::clone(&db),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                wal_dir: Some(root.join(dir)),
                follow: Some(repl_addr.clone()),
                seed_users: 0,
                ..Default::default()
            },
        )
        .expect("follower")
    };
    let mut follower_a = start_follower("follower-a");
    let mut follower_b = start_follower("follower-b");

    // Replicate one write so both followers have state.
    let resp = request(
        primary.addr(),
        "POST",
        "/profiles/al",
        Some(&profile_wire("al")),
    );
    assert_eq!(resp.status, 200, "{}", resp.body_text());

    let mut router = start_router(RouterConfig {
        shards: vec![ShardSpec {
            name: "g0".into(),
            replicas: vec![primary.addr(), follower_a.addr(), follower_b.addr()],
        }],
        probe_interval: Duration::from_millis(50),
        ..Default::default()
    })
    .expect("router");

    // Kill the primary, then race two promotions directly (an operator
    // script and the router's failover, say). Both succeed locally:
    // each follower bumps its own epoch to 1 and claims primaryship.
    primary.stop();
    let (addr_a, addr_b) = (follower_a.addr(), follower_b.addr());
    let ta = std::thread::spawn(move || request(addr_a, "POST", "/admin/promote", None).status);
    let tb = std::thread::spawn(move || request(addr_b, "POST", "/admin/promote", None).status);
    assert_eq!(ta.join().unwrap(), 200);
    assert_eq!(tb.join().unwrap(), 200);

    // The router's probe sees two claimants, crowns one at a strictly
    // higher epoch, and the loser fences itself on the next heartbeat.
    let resolved = wait_for(Duration::from_secs(10), || {
        let (role_a, _) = role_and_epoch(addr_a);
        let (role_b, _) = role_and_epoch(addr_b);
        matches!(
            (role_a.as_str(), role_b.as_str()),
            ("primary", "fenced") | ("fenced", "primary")
        )
    });
    let (role_a, epoch_a) = role_and_epoch(addr_a);
    let (role_b, epoch_b) = role_and_epoch(addr_b);
    assert!(
        resolved,
        "dual primary never resolved: a=({role_a}, {epoch_a}) b=({role_b}, {epoch_b})"
    );
    let (winner_epoch, loser_epoch) = if role_a == "primary" {
        (epoch_a, epoch_b)
    } else {
        (epoch_b, epoch_a)
    };
    assert!(
        winner_epoch >= 2,
        "the winner must be re-crowned above the tied epoch, got {winner_epoch}"
    );
    assert_eq!(
        loser_epoch, winner_epoch,
        "the loser heard the winner's epoch via the heartbeat"
    );

    // Writes through the router land on the winner; the fenced loser
    // refuses direct writes.
    let resp = request(
        router.addr(),
        "POST",
        "/profiles/al",
        Some(&profile_wire("al")),
    );
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let loser = if role_a == "fenced" { addr_a } else { addr_b };
    let refused = request(loser, "POST", "/profiles/al", Some(&profile_wire("al")));
    assert_eq!(refused.status, 503);
    assert_eq!(error_code(&refused).as_deref(), Some("stale_epoch"));

    router.stop();
    follower_a.stop();
    follower_b.stop();
}

#[test]
fn pre_epoch_seed_format_wal_recovers_and_serves() {
    use cqp_server::wal::LOG_FILE;
    let root = tmpdir("preepoch");
    std::fs::create_dir_all(&root).expect("mkdir");

    // A seed-format log: W1 frames only, no `epoch` field, no E1
    // markers — byte-for-byte what the pre-epoch code wrote.
    let text = profile_wire("al");
    let payload = format!(
        "{{\"op\":\"put\",\"user\":\"al\",\"version\":1,\"profile\":{}}}",
        Json::Str(text.clone()).render()
    );
    let mut frame = format!(
        "W1 {} {:016x} ",
        payload.len(),
        fnv1a(FNV_OFFSET, payload.as_bytes())
    )
    .into_bytes();
    frame.extend_from_slice(payload.as_bytes());
    frame.push(b'\n');
    std::fs::write(root.join(LOG_FILE), &frame).expect("write seed log");

    let db = Arc::new(generate_movie_db(&MovieDbConfig::tiny(7)));
    let mut server = start(
        Arc::clone(&db),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            wal_dir: Some(root.clone()),
            seed_users: 0,
            ..Default::default()
        },
    )
    .expect("server over seed-format WAL");

    // The profile recovered, the server reports epoch 0, and new writes
    // continue the version chain.
    let read = request(server.addr(), "GET", "/profiles/al", None);
    assert_eq!(read.status, 200, "{}", read.body_text());
    assert!(read.body_text().contains("profile al"));
    let ready = request(server.addr(), "GET", "/healthz/ready", None);
    let body = json::parse(&ready.body_text()).unwrap();
    assert_eq!(body.get("epoch").and_then(Json::as_u64), Some(0));
    let resp = request(server.addr(), "POST", "/profiles/al", Some(&text));
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let body = json::parse(&resp.body_text()).unwrap();
    assert_eq!(body.get("version").and_then(Json::as_u64), Some(2));
    server.stop();
}

#[test]
fn read_retry_budget_sheds_with_retry_after_when_exhausted() {
    let root = tmpdir("budget");
    let db = Arc::new(generate_movie_db(&MovieDbConfig::tiny(7)));
    let start_plain = |dir: &str| {
        start(
            Arc::clone(&db),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                wal_dir: Some(root.join(dir)),
                seed_users: 0,
                ..Default::default()
            },
        )
        .expect("server")
    };
    let mut a = start_plain("a");
    let mut b = start_plain("b");
    // Replica 0 flaps: every second connection through its proxy dies —
    // probes mostly keep it "alive" while forwards keep failing, which
    // is exactly the pathology the retry budget exists for.
    let mut flaky = start_nemesis(a.addr()).expect("nemesis");
    flaky.set_fault(Fault::DropEveryNth { n: 2 });
    let mut router = start_router(RouterConfig {
        shards: vec![ShardSpec {
            name: "g0".into(),
            replicas: vec![flaky.addr(), b.addr()],
        }],
        probe_interval: Duration::from_millis(10),
        retry_budget: 2,
        ..Default::default()
    })
    .expect("router");

    // Profile reads prefer the group primary, and the router sensibly
    // fails over *away* from the flapping replica — so pin reads onto
    // it deliberately, the way the divergent policy does: pick a SQL
    // template whose canonical class lands on replica 0.
    let sql = (0..64)
        .map(|year| format!("SELECT title FROM MOVIE WHERE MOVIE.year >= {year}"))
        .find(|sql| {
            fnv1a(FNV_OFFSET, cqp_server::canonicalize_sql(sql).as_bytes()) as usize % 2 == 0
        })
        .expect("some template class lands on replica 0");
    let body = format!(
        "{{\"user\":\"alice\",\"sql\":{},\"problem\":{{\"kind\":\"p2\",\"cmax\":500}},\
         \"algorithm\":\"c_maxbounds\"}}",
        Json::Str(sql.clone()).render()
    );

    // Hammer reads until the budget runs dry. Successes refill slowly
    // (a tenth of a token) while each sibling retry costs a full one,
    // so with budget 2 the shed must appear well within the loop.
    let mut shed: Option<ClientResponse> = None;
    for _ in 0..400 {
        let resp = request(router.addr(), "POST", "/personalize", Some(&body));
        if resp.status == 503 {
            let body = json::parse(&resp.body_text()).unwrap_or(Json::Null);
            if body.get("error").and_then(Json::as_str) == Some("retry_budget_exhausted") {
                shed = Some(resp);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let final_stats = request(router.addr(), "GET", "/router/stats", None).body_text();
    let shed = shed.unwrap_or_else(|| {
        panic!("the retry budget never exhausted under a flapping replica: {final_stats}")
    });
    assert!(
        shed.headers
            .iter()
            .any(|(name, value)| name == "retry-after" && value == "1"),
        "shed responses must carry retry-after: {:?}",
        shed.headers
    );
    let stats = request(router.addr(), "GET", "/router/stats", None);
    let body = json::parse(&stats.body_text()).unwrap();
    assert!(
        body.get("retry_budget_exhausted")
            .and_then(Json::as_u64)
            .is_some_and(|n| n >= 1),
        "{}",
        stats.body_text()
    );

    router.stop();
    flaky.stop();
    a.stop();
    b.stop();
}

#[test]
fn seeded_nemesis_churn_keeps_every_acked_write() {
    let mut cluster =
        Cluster::start(ClusterConfig::with_nemesis(1, tmpdir("churn"))).expect("cluster");
    let router_addr = cluster.router.addr();
    let acks = AckLog::new();
    let all = users(3);
    for user in &all {
        assert_eq!(acked_write(router_addr, user, &acks).status, 200);
    }

    // A deterministic fault schedule on the primary's HTTP link: same
    // seed, same plan, every run. Writes race the faults; only the
    // acked ones count.
    let plan = NemesisPlan::seeded(0xC0FFEE, 6, 40);
    {
        let nemesis = cluster.groups[0].nemesis.as_mut().expect("nemesis cluster");
        nemesis.primary_http.run_plan(plan);
    }
    for _round in 0..5 {
        for user in &all {
            // Best effort: a 503 or transport error during a fault is
            // fine — the point is that whatever got a 200 must survive.
            let _ = try_acked_write(router_addr, user, &acks);
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    {
        let nemesis = cluster.groups[0].nemesis.as_mut().expect("nemesis cluster");
        nemesis.primary_http.join_plan();
        nemesis.primary_http.heal();
        nemesis.repl.heal();
    }
    // One final sentinel write to prove the cluster healed.
    let healed = wait_for(Duration::from_secs(10), || {
        acked_write(router_addr, &all[0], &acks).status == 200
    });
    assert!(healed, "cluster never healed after the nemesis plan");

    let catalog = cluster.db().catalog().clone();
    // Which replica is authoritative depends on whether the plan's
    // partitions triggered a failover; ask each server for its role.
    let dumps: Vec<ReplicaDump> = [
        ("g0/primary", &cluster.groups[0].primary),
        ("g0/follower", &cluster.groups[0].follower),
    ]
    .into_iter()
    .map(|(name, server)| ReplicaDump {
        name: name.into(),
        fenced: role_and_epoch(server.addr()).0 == "fenced",
        sessions: server.state().store.dump(&catalog),
    })
    .collect();
    let report = check(&acks.snapshot(), &dumps);
    assert_eq!(report.lost_acked_writes, 0, "{:?}", report.details);
    assert_eq!(report.split_brain_divergence, 0, "{:?}", report.details);
    assert!(report.consistent(), "{:?}", report.details);
    cluster.stop();
}
