//! End-to-end tests of the `cqp-server` serving layer over real sockets.
//!
//! The load-bearing claim: serving adds *transport*, not *behavior*. A
//! personalization answer obtained through a socket must be bit-identical
//! to the one the in-process pipeline produces from the same database,
//! profile, and configuration — same SQL, same selected preferences, same
//! doi, same ranked rows.

use cqp_core::prelude::*;
use cqp_datagen::{generate_movie_db, MovieDbConfig};
use cqp_engine::{execute_ranked, parse_query, Matching};
use cqp_obs::Json;
use cqp_server::http::{parse_response, ClientResponse};
use cqp_server::{json, start, ServerConfig, ServerHandle};
use cqp_storage::{Database, IoMeter};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const PROFILE_WIRE: &str = "# cqp-profile v1\n\
    profile al\n\
    join 0.9 MOVIE.mid GENRE.mid\n\
    join 1.0 MOVIE.did DIRECTOR.did\n\
    select 0.8 GENRE.genre eq \"comedy\"\n\
    select 0.6 MOVIE.year ge 1990\n";

const SQL: &str = "SELECT title FROM MOVIE";
const CMAX: u64 = 500;

fn boot(config: ServerConfig) -> (Arc<Database>, ServerHandle) {
    let db = Arc::new(generate_movie_db(&MovieDbConfig::tiny(7)));
    let handle = start(Arc::clone(&db), config).expect("server start");
    (db, handle)
}

/// One request over a fresh connection; closes after the response.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> ClientResponse {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n");
    if let Some(b) = body {
        head.push_str(&format!("content-length: {}\r\n", b.len()));
    }
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    let mut payload = head.into_bytes();
    if let Some(b) = body {
        payload.extend_from_slice(b.as_bytes());
    }
    raw(addr, &payload)
}

/// Sends raw bytes, returns the parsed response.
fn raw(addr: SocketAddr, payload: &[u8]) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(payload).expect("write");
    stream.flush().expect("flush");
    parse_response(&mut BufReader::new(stream)).expect("response")
}

fn personalize_body(extra: &str) -> String {
    format!(
        "{{\"user\":\"al\",\"sql\":\"{SQL}\",\"problem\":{{\"kind\":\"p2\",\"cmax\":{CMAX}}},\
         \"algorithm\":\"c_maxbounds\"{extra}}}"
    )
}

fn error_code(resp: &ClientResponse) -> String {
    json::parse(&resp.body_text())
        .expect("error body is JSON")
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("error.code present")
        .to_string()
}

#[test]
fn socket_answer_is_bit_identical_to_in_process_pipeline() {
    let (db, mut handle) = boot(ServerConfig::default());
    let addr = handle.addr();

    // Upsert the profile over the wire, then read it back.
    let resp = request(addr, "POST", "/profiles/al", &[], Some(PROFILE_WIRE));
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let body = json::parse(&resp.body_text()).unwrap();
    assert_eq!(body.get("version").and_then(Json::as_u64), Some(1));
    assert_eq!(body.get("preferences").and_then(Json::as_u64), Some(4));
    let stored = request(addr, "GET", "/profiles/al", &[], None);
    assert_eq!(stored.status, 200);

    // Personalize over the socket, asking for ranked rows.
    let resp = request(
        addr,
        "POST",
        "/personalize",
        &[],
        Some(&personalize_body(
            ",\"rank\":{\"min_match\":1},\"rows\":true",
        )),
    );
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let served = json::parse(&resp.body_text()).unwrap();

    // The same pipeline in-process: same db, same profile text, same
    // problem and algorithm.
    let profile = cqp_prefs::from_text(PROFILE_WIRE, db.catalog()).unwrap();
    assert_eq!(
        stored.body_text(),
        cqp_prefs::to_text(&profile, db.catalog()),
        "wire round-trip of the stored profile"
    );
    let driver = BatchDriver::new(Arc::clone(&db), 1);
    let item = driver
        .submit(BatchRequest {
            query: parse_query(SQL, db.catalog()).unwrap(),
            profile,
            problem: ProblemSpec::p2(CMAX),
            config: SolverConfig {
                algorithm: Algorithm::CMaxBounds,
                ..Default::default()
            },
        })
        .unwrap();

    // SQL: the personalized query the client would run.
    assert_eq!(
        served.get("sql").and_then(Json::as_str),
        Some(item.sql.as_str())
    );
    // Selected preferences, bit for bit.
    let served_prefs: Vec<u64> = served
        .get("solution")
        .and_then(|s| s.get("prefs"))
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(Json::as_u64)
        .collect();
    let local_prefs: Vec<u64> = item.solution.prefs.iter().map(|&p| p as u64).collect();
    assert_eq!(served_prefs, local_prefs);
    // Objective value and dois: f64s survive the JSON round trip exactly
    // (shortest-round-trip rendering on both sides).
    assert_eq!(
        served
            .get("solution")
            .and_then(|s| s.get("doi"))
            .and_then(Json::as_f64),
        Some(item.solution.doi.value())
    );
    let served_dois: Vec<f64> = served
        .get("pref_dois")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(Json::as_f64)
        .collect();
    assert_eq!(served_dois, item.pref_dois);
    assert!(!served_dois.is_empty(), "personalization selected nothing");

    // Ranked execution: same rows, same order, same per-row doi.
    let meter = IoMeter::new(0.0);
    let ranked = execute_ranked(
        &db,
        &item.query,
        &item.pref_dois,
        Matching::AtLeast(1),
        &meter,
    )
    .unwrap();
    let served_ranked = served.get("ranked").and_then(Json::as_array).unwrap();
    assert_eq!(served_ranked.len(), ranked.len());
    for (s, l) in served_ranked.iter().zip(&ranked) {
        assert_eq!(s.get("doi").and_then(Json::as_f64), Some(l.doi));
        let served_row: Vec<String> = s
            .get("row")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect();
        let local_row: Vec<String> = l.row.iter().map(|v| v.to_string()).collect();
        assert_eq!(served_row, local_row);
    }

    assert_eq!(handle.state().driver.submit_panics(), 0);
    handle.stop();
}

#[test]
fn overload_is_shed_with_429_and_zero_panics() {
    let (_db, mut handle) = boot(ServerConfig {
        max_inflight: 1,
        queue_cap: 0,
        retry_after_ms: 250,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    assert_eq!(
        request(addr, "POST", "/profiles/al", &[], Some(PROFILE_WIRE)).status,
        200
    );

    // Hold the only execution slot through the handle, then knock.
    let permit = handle
        .state()
        .gate
        .admit(Duration::ZERO)
        .expect("slot free");
    for _ in 0..3 {
        let resp = request(
            addr,
            "POST",
            "/personalize",
            &[],
            Some(&personalize_body("")),
        );
        assert_eq!(resp.status, 429, "{}", resp.body_text());
        assert_eq!(error_code(&resp), "overloaded");
        let retry_after = resp.header("retry-after").expect("retry-after on 429");
        assert!(retry_after.parse::<u64>().unwrap() >= 1);
    }
    drop(permit);

    // The slot freed: the same request now succeeds, and nothing panicked
    // anywhere in the shedding path.
    let resp = request(
        addr,
        "POST",
        "/personalize",
        &[],
        Some(&personalize_body("")),
    );
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let (_, rejected, _) = handle.state().gate.counters();
    assert_eq!(rejected, 3);
    assert_eq!(handle.state().driver.submit_panics(), 0);
    handle.stop();
}

#[test]
fn zero_deadline_degrades_but_answer_stays_well_formed() {
    let (_db, mut handle) = boot(ServerConfig::default());
    let addr = handle.addr();
    assert_eq!(
        request(addr, "POST", "/profiles/al", &[], Some(PROFILE_WIRE)).status,
        200
    );

    // The header wins over the body and a 0-ms deadline trips the budget
    // before the first state is expanded — deterministically degraded.
    let resp = request(
        addr,
        "POST",
        "/personalize",
        &[("x-cqp-deadline-ms", "0")],
        Some(&personalize_body("")),
    );
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let body = json::parse(&resp.body_text()).unwrap();
    let solution = body.get("solution").expect("solution present");
    let degraded = solution.get("degraded").expect("degraded present");
    assert_eq!(
        degraded.get("reason").and_then(Json::as_str),
        Some("deadline_exceeded"),
        "{}",
        resp.body_text()
    );
    // Degraded, not broken: the incumbent it returns is a complete,
    // feasible answer the client can still run.
    assert!(solution.get("prefs").and_then(Json::as_array).is_some());
    assert!(solution.get("cost_blocks").and_then(Json::as_u64).is_some());
    assert!(body.get("sql").and_then(Json::as_str).is_some());
    handle.stop();
}

#[test]
fn malformed_requests_get_typed_4xx_never_500() {
    let (_db, mut handle) = boot(ServerConfig::default());
    let addr = handle.addr();
    assert_eq!(
        request(addr, "POST", "/profiles/al", &[], Some(PROFILE_WIRE)).status,
        200
    );

    // (status, expected error code, request)
    let cases: Vec<(u16, &str, ClientResponse)> = vec![
        (
            400,
            "bad_json",
            request(addr, "POST", "/personalize", &[], Some("{not json")),
        ),
        (
            400,
            "missing_field",
            request(addr, "POST", "/personalize", &[], Some("{}")),
        ),
        (
            404,
            "unknown_user",
            request(
                addr,
                "POST",
                "/personalize",
                &[],
                Some(&personalize_body("").replace("\"al\"", "\"nobody\"")),
            ),
        ),
        (
            400,
            "bad_query",
            request(
                addr,
                "POST",
                "/personalize",
                &[],
                Some(&personalize_body("").replace(SQL, "SELECT nope FROM NOWHERE")),
            ),
        ),
        (
            400,
            "bad_problem",
            request(
                addr,
                "POST",
                "/personalize",
                &[],
                Some(&personalize_body("").replace("\"p2\"", "\"p9\"")),
            ),
        ),
        (
            400,
            "bad_algorithm",
            request(
                addr,
                "POST",
                "/personalize",
                &[],
                Some(&personalize_body("").replace("c_maxbounds", "quantum")),
            ),
        ),
        (
            400,
            "bad_deadline",
            request(
                addr,
                "POST",
                "/personalize",
                &[("x-cqp-deadline-ms", "soon")],
                Some(&personalize_body("")),
            ),
        ),
        (
            400,
            "bad_profile",
            request(addr, "POST", "/profiles/al", &[], Some("select nonsense")),
        ),
        (
            404,
            "unknown_user",
            request(addr, "GET", "/profiles/nobody", &[], None),
        ),
        (
            404,
            "not_found",
            request(addr, "GET", "/nope/nope", &[], None),
        ),
        (
            405,
            "method_not_allowed",
            request(addr, "DELETE", "/healthz", &[], None),
        ),
    ];
    for (status, code, resp) in cases {
        assert_eq!(resp.status, status, "{code}: {}", resp.body_text());
        assert_eq!(error_code(&resp), code);
    }

    // Protocol-level garbage is a 4xx too, never a 500.
    let resp = raw(addr, b"BLARG\r\n\r\n");
    assert_eq!(resp.status, 400);
    let resp = raw(addr, b"POST /personalize HTTP/1.1\r\n\r\n"); // no content-length
    assert_eq!(resp.status, 400);
    let oversized = format!(
        "POST /personalize HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        cqp_server::http::MAX_BODY_BYTES + 1
    );
    let resp = raw(addr, oversized.as_bytes());
    assert_eq!(resp.status, 413);

    // After all that abuse: still healthy, nothing panicked, no 500 was
    // ever minted.
    let resp = request(addr, "GET", "/healthz", &[], None);
    assert_eq!(resp.status, 200);
    assert_eq!(handle.state().driver.submit_panics(), 0);
    let resp = request(
        addr,
        "POST",
        "/personalize",
        &[],
        Some(&personalize_body("")),
    );
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    handle.stop();
}

#[test]
fn metrics_endpoint_reports_counters_and_top_k_depth_works() {
    let (_db, mut handle) = boot(ServerConfig::default());
    let addr = handle.addr();
    assert_eq!(
        request(addr, "POST", "/profiles/al", &[], Some(PROFILE_WIRE)).status,
        200
    );
    // Personalize at depth 1: only the highest-doi selection survives, so
    // the answer can never select more preferences than a full-depth run.
    let shallow = request(
        addr,
        "POST",
        "/personalize",
        &[],
        Some(&personalize_body(",\"top_k\":1")),
    );
    assert_eq!(shallow.status, 200, "{}", shallow.body_text());
    let full = request(
        addr,
        "POST",
        "/personalize",
        &[],
        Some(&personalize_body("")),
    );
    assert_eq!(full.status, 200);
    let count = |resp: &ClientResponse| {
        json::parse(&resp.body_text())
            .unwrap()
            .get("solution")
            .and_then(|s| s.get("prefs"))
            .and_then(Json::as_array)
            .map(<[Json]>::len)
            .unwrap()
    };
    assert!(count(&shallow) <= count(&full));

    let resp = request(addr, "GET", "/metrics", &[], None);
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8"),
        "Prometheus exposition content type"
    );
    let text = resp.body_text();
    // Exact serving-tier counters.
    assert_eq!(prom_value(&text, "cqp_admission_admitted_total"), Some(2.0));
    assert_eq!(prom_value(&text, "cqp_submit_panics_total"), Some(0.0));
    assert!(prom_value(&text, "cqp_profile_upserts_total") >= Some(1.0));
    assert_eq!(prom_value(&text, "cqp_admission_queue_depth"), Some(0.0));
    assert!(prom_value(&text, "cqp_connections_active").is_some());
    // Labeled request accounting: both personalize calls were clean 200s.
    assert_eq!(
        prom_value(
            &text,
            "cqp_requests_total{endpoint=\"personalize\",outcome=\"ok\"}"
        ),
        Some(2.0)
    );
    assert!(text.contains("algorithm=\"c_maxbounds\""));
    // SLO gauges exist and the window saw both requests.
    assert_eq!(prom_value(&text, "cqp_slo_window_requests"), Some(2.0));
    assert!(prom_value(&text, "cqp_slo_burn_ratio").is_some());
    // The solver's own registry flows through the same document, with the
    // latency histogram as a full le-bucket family.
    assert!(text.contains("# TYPE cqp_server_latency_us histogram"));
    assert_eq!(prom_value(&text, "cqp_server_latency_us_count"), Some(2.0));
    // Every sample line is well-formed `name[{labels}] value`.
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (_, value) = line.rsplit_once(' ').expect("sample line");
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "bad sample: {line}"
        );
    }
    handle.stop();
}

/// The value of the first sample line starting with `prefix` (a bare
/// metric name or a full `name{labels}` form).
fn prom_value(text: &str, prefix: &str) -> Option<f64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| {
            l.strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}
