//! Deadlines, state budgets, and cooperative cancellation across every
//! search algorithm: a tripped budget must never hang or panic — it
//! returns the best-so-far incumbent tagged [`Solution::degraded`], and a
//! degraded solution that claims feasibility really is feasible.

use cqp_core::algorithms::solve_p2_budgeted;
use cqp_core::budget::{Budget, CancelToken, DegradeReason};
use cqp_core::construct::{construct, ConstructError};
use cqp_core::prelude::*;
use cqp_engine::QueryBuilder;
use cqp_obs::NoopRecorder;
use cqp_prefs::{ConjModel, Doi, Profile};
use cqp_prefspace::{PrefParams, PreferenceSpace};
use cqp_storage::{DataType, Database, RelationSchema, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn movie_db() -> Database {
    let mut db = Database::with_block_capacity(4);
    db.create_relation(RelationSchema::new(
        "MOVIE",
        vec![
            ("mid", DataType::Int),
            ("title", DataType::Str),
            ("year", DataType::Int),
            ("duration", DataType::Int),
            ("did", DataType::Int),
        ],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new(
        "DIRECTOR",
        vec![("did", DataType::Int), ("name", DataType::Str)],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new(
        "GENRE",
        vec![("mid", DataType::Int), ("genre", DataType::Str)],
    ))
    .unwrap();
    for i in 0..40i64 {
        db.insert_into(
            "MOVIE",
            vec![
                Value::Int(i),
                Value::str(format!("m{i}")),
                Value::Int(1980 + i % 20),
                Value::Int(90),
                Value::Int(i % 4),
            ],
        )
        .unwrap();
        db.insert_into(
            "GENRE",
            vec![
                Value::Int(i),
                Value::str(if i % 2 == 0 { "musical" } else { "drama" }),
            ],
        )
        .unwrap();
    }
    for d in 0..4i64 {
        let name = if d == 0 {
            "W. Allen".to_owned()
        } else {
            format!("dir{d}")
        };
        db.insert_into("DIRECTOR", vec![Value::Int(d), Value::str(name)])
            .unwrap();
    }
    db
}

/// A synthetic space big enough that every algorithm has real work to do.
fn wide_space(k: usize) -> PreferenceSpace {
    let params = (0..k)
        .map(|i| PrefParams {
            doi: Doi::new(0.10 + 0.8 * ((i * 7 % k) as f64 / k as f64)),
            cost_blocks: 5 + (i as u64 * 13) % 90,
            size_factor: 0.3 + 0.6 * ((i * 3 % k) as f64 / k as f64),
        })
        .collect();
    PreferenceSpace::synthetic(params, 10_000.0, 0)
}

const ALL_P2_SEARCHERS: [Algorithm; 7] = [
    Algorithm::DMaxDoi,
    Algorithm::DSingleMaxDoi,
    Algorithm::CBoundaries,
    Algorithm::CMaxBounds,
    Algorithm::DHeurDoi,
    Algorithm::Exhaustive,
    Algorithm::BranchBound,
];

/// Acceptance gate: `CqpSystem::run` with a 0-ms deadline returns a
/// `Degraded`-tagged solution — never a hang, never a panic — for all five
/// paper algorithms (plus the exact baselines).
#[test]
fn zero_deadline_degrades_every_algorithm_through_the_facade() {
    let db = movie_db();
    let system = CqpSystem::new(&db);
    let base = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();
    let profile = Profile::paper_figure1(db.catalog()).unwrap();
    for algo in ALL_P2_SEARCHERS {
        let config = SolverConfig {
            algorithm: algo,
            budget: Budget::with_deadline_ms(0),
            ..Default::default()
        };
        let outcome = system
            .run(&base, &profile, &ProblemSpec::p2(100), &config)
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        let d = outcome
            .solution
            .degraded
            .unwrap_or_else(|| panic!("{} did not degrade", algo.name()));
        assert_eq!(d.reason, DegradeReason::DeadlineExceeded, "{}", algo.name());
        assert!(d.states_visited >= 1, "{}", algo.name());
    }
}

#[test]
fn zero_deadline_degrades_the_general_search_on_every_problem_variant() {
    let db = movie_db();
    let system = CqpSystem::new(&db);
    let base = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();
    let profile = Profile::paper_figure1(db.catalog()).unwrap();
    let problems = [
        ProblemSpec::p1(1.0, 1e9),
        ProblemSpec::p3(100, 1.0, 1e9),
        ProblemSpec::p4(Doi::new(0.1)),
        ProblemSpec::p5(Doi::new(0.1), 1.0, 1e9),
        ProblemSpec::p6(1.0, 1e9),
    ];
    for problem in &problems {
        let config = SolverConfig {
            budget: Budget::with_deadline_ms(0),
            ..Default::default()
        };
        let outcome = system.run(&base, &profile, problem, &config).unwrap();
        assert!(
            outcome.solution.degraded.is_some(),
            "{problem:?} did not degrade"
        );
    }
}

#[test]
fn unlimited_budget_is_never_tagged_degraded() {
    let space = wide_space(12);
    for algo in ALL_P2_SEARCHERS {
        let sol = solve_p2_budgeted(
            &space,
            ConjModel::NoisyOr,
            120,
            algo,
            &NoopRecorder,
            None,
            &CancelToken::unlimited(),
        );
        assert!(sol.degraded.is_none(), "{}", algo.name());
    }
}

/// A tripped state budget reports `StateLimit` with an honest state count.
#[test]
fn state_budget_trips_with_state_limit_reason() {
    let space = wide_space(18);
    for algo in ALL_P2_SEARCHERS {
        let token = CancelToken::for_budget(&Budget::with_max_states(3));
        let sol = solve_p2_budgeted(
            &space,
            ConjModel::NoisyOr,
            150,
            algo,
            &NoopRecorder,
            None,
            &token,
        );
        if let Some(d) = sol.degraded {
            assert_eq!(d.reason, DegradeReason::StateLimit, "{}", algo.name());
            assert!(d.states_visited > 3, "{}", algo.name());
        } else {
            // Only legitimate when the algorithm finished inside the budget.
            assert!(token.states_visited() <= 3, "{}", algo.name());
        }
    }
}

/// Degraded incumbents are still *feasible*: whatever the trip point, a
/// solution with `found == true` satisfies the hard cost constraint and
/// never beats the true optimum.
#[test]
fn degraded_solutions_stay_feasible_and_below_the_oracle() {
    let space = wide_space(14);
    let cmax = 160;
    let oracle = cqp_core::algorithms::exhaustive::solve_p2(&space, ConjModel::NoisyOr, cmax);
    for algo in ALL_P2_SEARCHERS {
        for max_states in [1u64, 2, 5, 10, 50, 500] {
            let token = CancelToken::for_budget(&Budget::with_max_states(max_states));
            let sol = solve_p2_budgeted(
                &space,
                ConjModel::NoisyOr,
                cmax,
                algo,
                &NoopRecorder,
                None,
                &token,
            );
            if sol.found {
                assert!(
                    sol.cost_blocks <= cmax,
                    "{} max_states={max_states}: infeasible degraded incumbent",
                    algo.name()
                );
                assert!(
                    sol.doi <= oracle.doi,
                    "{} max_states={max_states}: beat the oracle",
                    algo.name()
                );
            }
        }
    }
}

/// External cancellation (the flag a server's connection-drop handler would
/// set) trips with `Cancelled`.
#[test]
fn external_flag_cancels_with_cancelled_reason() {
    let space = wide_space(16);
    let flag = Arc::new(AtomicBool::new(true)); // dropped before the search starts
    let token = CancelToken::unlimited().with_flag(Arc::clone(&flag));
    let sol = solve_p2_budgeted(
        &space,
        ConjModel::NoisyOr,
        150,
        Algorithm::DMaxDoi,
        &NoopRecorder,
        None,
        &token,
    );
    let d = sol.degraded.expect("flagged token must degrade");
    assert_eq!(d.reason, DegradeReason::Cancelled);
    assert!(flag.load(Ordering::Relaxed));
}

/// Regression: an empty preference space flows through the whole facade
/// without panicking — the outcome is the unpersonalized query.
#[test]
fn empty_preference_space_is_served_not_panicked() {
    let space = PreferenceSpace::synthetic(vec![], 100.0, 0);
    for algo in ALL_P2_SEARCHERS {
        let sol = solve_p2(&space, ConjModel::NoisyOr, 50, algo);
        assert!(!sol.found, "{}", algo.name());
        assert_eq!(sol.doi, Doi::ZERO);
    }
    // And under a zero deadline: still no panic, still empty.
    let token = CancelToken::for_budget(&Budget::with_deadline_ms(0));
    let sol = solve_p2_budgeted(
        &space,
        ConjModel::NoisyOr,
        50,
        Algorithm::CBoundaries,
        &NoopRecorder,
        None,
        &token,
    );
    assert!(!sol.found);
}

/// Regression: a malformed request (out-of-range preference index at
/// construction) is a typed `CqpError::Construct`, not a panic.
#[test]
fn malformed_pref_index_is_a_typed_construct_error() {
    let db = movie_db();
    let system = CqpSystem::new(&db);
    let base = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();
    let profile = Profile::paper_figure1(db.catalog()).unwrap();
    let space = system.preference_space(&base, &profile, &SolverConfig::default());
    let err = construct(&base, &space, &[space.k() + 7]).unwrap_err();
    assert!(matches!(err, ConstructError::PrefIndexOutOfRange(_)));
    let cqp: CqpError = err.into();
    assert_eq!(cqp.kind(), "construct");
    assert!(!cqp.is_transient());
    assert!(cqp.to_string().contains("construction failed"));
}

/// The `SpaceTooLarge` rejection is typed and non-transient (a retry would
/// fail identically), so batch drivers fail the request instead of looping.
#[test]
fn oversized_exhaustive_space_error_is_typed_and_permanent() {
    let space = wide_space(26);
    assert!(space.k() > cqp_core::algorithms::exhaustive::MAX_EXHAUSTIVE_K);
    let err = CqpError::SpaceTooLarge {
        k: space.k(),
        max: cqp_core::algorithms::exhaustive::MAX_EXHAUSTIVE_K,
    };
    assert_eq!(err.kind(), "space_too_large");
    assert!(!err.is_transient());
    assert!(err.to_string().contains("26"));
}

/// The deadline also reaches the *partitioned* exact searches: a shared
/// token stops every worker.
#[test]
fn zero_deadline_degrades_partitioned_searches() {
    let db = movie_db();
    let system = CqpSystem::new(&db);
    let base = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();
    let profile = Profile::paper_figure1(db.catalog()).unwrap();
    for algo in [Algorithm::Exhaustive, Algorithm::BranchBound] {
        let config = SolverConfig {
            algorithm: algo,
            parallelism: cqp_core::solver::Parallelism::new(4),
            budget: Budget::with_deadline_ms(0),
            ..Default::default()
        };
        let outcome = system
            .run(&base, &profile, &ProblemSpec::p2(100), &config)
            .unwrap();
        assert!(
            outcome.solution.degraded.is_some(),
            "{} (4 threads) did not degrade",
            algo.name()
        );
    }
}
