//! End-to-end request tracing over real sockets.
//!
//! Two claims under test. First, **propagation**: a client-supplied
//! `x-cqp-trace-id` header survives the whole serving path — it is echoed
//! on the response, the captured trace under that ID carries the complete
//! span tree from HTTP parse through the solver phases, and a slow enough
//! request lands in the slow-query log under the same ID. Second,
//! **retention determinism**: the lock-sharded trace ring evicts strictly
//! oldest-first per shard no matter how concurrent pushers interleave.

use cqp_datagen::{generate_movie_db, MovieDbConfig};
use cqp_obs::reqtrace::{RequestTrace, SpanRecord, TraceId, TraceRing};
use cqp_obs::Json;
use cqp_server::http::{parse_response, ClientResponse};
use cqp_server::{json, start, ServerConfig, ServerHandle, TRACE_ID_HEADER};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

const PROFILE_WIRE: &str = "# cqp-profile v1\n\
    profile al\n\
    join 0.9 MOVIE.mid GENRE.mid\n\
    join 1.0 MOVIE.did DIRECTOR.did\n\
    select 0.8 GENRE.genre eq \"comedy\"\n\
    select 0.6 MOVIE.year ge 1990\n";

fn boot(config: ServerConfig) -> ServerHandle {
    let db = Arc::new(generate_movie_db(&MovieDbConfig::tiny(7)));
    start(db, config).expect("server start")
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> ClientResponse {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n");
    if let Some(b) = body {
        head.push_str(&format!("content-length: {}\r\n", b.len()));
    }
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(head.as_bytes()).expect("write head");
    if let Some(b) = body {
        stream.write_all(b.as_bytes()).expect("write body");
    }
    stream.flush().expect("flush");
    parse_response(&mut BufReader::new(stream)).expect("response")
}

fn personalize_body(extra: &str) -> String {
    format!(
        "{{\"user\":\"al\",\"sql\":\"SELECT title FROM MOVIE\",\
         \"problem\":{{\"kind\":\"p2\",\"cmax\":500}},\
         \"algorithm\":\"c_maxbounds\"{extra}}}"
    )
}

/// The dotted span paths of a trace JSON object, root-to-leaf.
fn span_paths(trace: &Json) -> Vec<String> {
    trace
        .get("spans")
        .and_then(Json::as_array)
        .expect("spans array")
        .iter()
        .map(|s| s.get("path").and_then(Json::as_str).unwrap().to_string())
        .collect()
}

#[test]
fn explicit_trace_id_propagates_from_header_to_span_tree_and_slow_log() {
    let mut handle = boot(ServerConfig {
        // Off-period sampling: only the explicit header makes this
        // request captured, which is exactly what we are testing.
        trace_sample_every: 1_000_000,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    assert_eq!(
        request(addr, "POST", "/profiles/al", &[], Some(PROFILE_WIRE)).status,
        200
    );

    // A deadline-tripped (degraded) request with a client-chosen trace ID.
    let id = "deadbeef00c0ffee";
    let resp = request(
        addr,
        "POST",
        "/personalize",
        &[(TRACE_ID_HEADER, id), ("x-cqp-deadline-ms", "0")],
        Some(&personalize_body("")),
    );
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    // The response echoes the ID and reports remaining deadline budget.
    assert_eq!(resp.header(TRACE_ID_HEADER), Some(id));
    let remaining: u64 = resp
        .header("x-cqp-deadline-remaining-ms")
        .expect("deadline-remaining header")
        .parse()
        .expect("integer ms");
    assert_eq!(remaining, 0, "a 0-ms deadline has no budget left");
    let served = json::parse(&resp.body_text()).unwrap();
    assert!(
        served
            .get("solution")
            .and_then(|s| s.get("degraded"))
            .is_some_and(|d| !matches!(d, Json::Null)),
        "0-ms deadline must degrade"
    );

    // The captured trace is retrievable by that exact ID...
    let resp = request(addr, "GET", &format!("/debug/traces?id={id}"), &[], None);
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let trace = json::parse(&resp.body_text()).unwrap();
    assert_eq!(trace.get("trace_id").and_then(Json::as_str), Some(id));
    assert_eq!(
        trace
            .get("meta")
            .and_then(|m| m.get("outcome"))
            .and_then(Json::as_str),
        Some("degraded")
    );
    // ...with the full span tree: HTTP parse through the solver phases.
    let paths = span_paths(&trace);
    for expected in [
        "parse",
        "session",
        "admission",
        "dispatch",
        "dispatch.personalize",
        "dispatch.personalize.prefspace",
        "dispatch.personalize.search",
        "materialize",
    ] {
        assert!(
            paths.iter().any(|p| p == expected),
            "span {expected:?} missing from {paths:?}"
        );
    }

    // The only request served so far is by definition among the worst-N:
    // the slow log holds the same trace under the same ID.
    let resp = request(addr, "GET", "/debug/slow", &[], None);
    assert_eq!(resp.status, 200);
    let slow = json::parse(&resp.body_text()).unwrap();
    let ids: Vec<&str> = slow
        .get("traces")
        .and_then(Json::as_array)
        .expect("slow traces")
        .iter()
        .filter_map(|t| t.get("trace_id").and_then(Json::as_str))
        .collect();
    assert!(ids.contains(&id), "slow log missing {id}: {ids:?}");

    // An untraced follow-up (no header, off-period) still echoes *some*
    // server-assigned ID but is not captured.
    let resp = request(
        addr,
        "POST",
        "/personalize",
        &[],
        Some(&personalize_body("")),
    );
    assert_eq!(resp.status, 200);
    let assigned = resp
        .header(TRACE_ID_HEADER)
        .expect("assigned ID")
        .to_string();
    assert_ne!(assigned, id);
    let resp = request(
        addr,
        "GET",
        &format!("/debug/traces?id={assigned}"),
        &[],
        None,
    );
    assert_eq!(resp.status, 404, "off-period request must not be captured");
    handle.stop();
}

#[test]
fn chrome_export_covers_captured_traces() {
    let mut handle = boot(ServerConfig {
        trace_sample_every: 1,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    assert_eq!(
        request(addr, "POST", "/profiles/al", &[], Some(PROFILE_WIRE)).status,
        200
    );
    for _ in 0..3 {
        assert_eq!(
            request(
                addr,
                "POST",
                "/personalize",
                &[],
                Some(&personalize_body(""))
            )
            .status,
            200
        );
    }
    let resp = request(addr, "GET", "/debug/traces?format=chrome", &[], None);
    assert_eq!(resp.status, 200);
    let doc = json::parse(&resp.body_text()).expect("chrome doc parses");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents");
    // 3 requests, each at least: request slice + parse + session +
    // admission + dispatch + solver phases.
    assert!(events.len() >= 3 * 5, "only {} events", events.len());
    for e in events {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 1.0);
        assert!(e.get("pid").and_then(Json::as_f64).is_some());
        assert!(e.get("tid").and_then(Json::as_f64).is_some());
    }
    handle.stop();
}

fn mk_trace(id: u64, seq: u64) -> Arc<RequestTrace> {
    Arc::new(RequestTrace {
        id: TraceId(id),
        seq,
        label: "POST /personalize".into(),
        start_us: seq,
        total_us: 100,
        meta: Vec::new(),
        spans: vec![SpanRecord {
            name: "dispatch",
            parent: None,
            start_us: 0,
            dur_us: 100,
            counters: Vec::new(),
        }],
        events: Vec::new(),
    })
}

#[test]
fn ring_eviction_is_deterministic_under_concurrent_load() {
    // 4 shards × 8 slots. Each pusher thread owns one shard (ids ≡ shard
    // mod 4), so per-shard arrival order is each thread's program order —
    // eviction must keep exactly the newest 8 per shard no matter how the
    // threads interleave globally.
    const SHARDS: u64 = 4;
    const PER_SHARD: u64 = 8;
    const PUSHES: u64 = 100;
    let ring = Arc::new(TraceRing::new(
        SHARDS as usize,
        (SHARDS * PER_SHARD) as usize,
    ));
    std::thread::scope(|s| {
        for shard in 0..SHARDS {
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                for i in 0..PUSHES {
                    // Distinct id per push, always landing in `shard`.
                    let id = shard + SHARDS * i;
                    ring.push(mk_trace(id, shard * PUSHES + i));
                }
            });
        }
    });
    assert_eq!(ring.len(), (SHARDS * PER_SHARD) as usize);
    let (pushed, evicted) = ring.counters();
    assert_eq!(pushed, SHARDS * PUSHES);
    assert_eq!(evicted, SHARDS * (PUSHES - PER_SHARD));
    for shard in 0..SHARDS {
        // Survivors are exactly the last PER_SHARD pushes of that shard's
        // thread; everything older was evicted in order.
        for i in 0..PUSHES {
            let id = shard + SHARDS * i;
            let found = ring.find(TraceId(id)).is_some();
            let expected = i >= PUSHES - PER_SHARD;
            assert_eq!(
                found, expected,
                "shard {shard} push {i} (id {id}): found={found}"
            );
        }
    }
}
