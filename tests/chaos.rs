//! Connection-level chaos and graceful-drain tests over real sockets.
//!
//! Two claims. First, misbehaving clients — truncated heads, mid-body
//! disconnects, slowloris drips, raw garbage — never leak a connection
//! and never crash the server: each one ends in a well-formed 4xx or a
//! clean reap within the read deadline, and afterwards the server still
//! answers bit-identically to the in-process pipeline. Second, shutdown
//! drains: in-flight requests finish, requests arriving mid-drain get
//! `503 + Connection: close`, idle connections close, and every handler
//! thread is joined before `shutdown` returns.

use cqp_core::prelude::*;
use cqp_datagen::{generate_movie_db, MovieDbConfig};
use cqp_obs::Json;
use cqp_server::http::{parse_response, ClientResponse, HttpError};
use cqp_server::server::Phase;
use cqp_server::{
    json, run_chaos, run_conn_scale, start, Backend, ChaosConfig, ChaosMode, ChaosOutcome,
    ConnScaleConfig, LoadConfig, ServerConfig, ServerHandle,
};
use cqp_storage::Database;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Every socket-level scenario in this file runs against both serving
/// backends: misbehaving clients and drains are exactly where the epoll
/// reactor must not diverge from the threaded baseline.
const BACKENDS: [Backend; 2] = [Backend::Threaded, Backend::Epoll];

const PROFILE_WIRE: &str = "# cqp-profile v1\n\
    profile al\n\
    join 0.9 MOVIE.mid GENRE.mid\n\
    select 0.8 GENRE.genre eq \"comedy\"\n\
    select 0.6 MOVIE.year ge 1990\n";

const SQL: &str = "SELECT title FROM MOVIE";

fn boot(config: ServerConfig) -> (Arc<Database>, ServerHandle) {
    let db = Arc::new(generate_movie_db(&MovieDbConfig::tiny(7)));
    let handle = start(Arc::clone(&db), config).expect("server start");
    (db, handle)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n");
    if let Some(b) = body {
        head.push_str(&format!("content-length: {}\r\n", b.len()));
    }
    head.push_str("\r\n");
    let mut payload = head.into_bytes();
    if let Some(b) = body {
        payload.extend_from_slice(b.as_bytes());
    }
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&payload).expect("write");
    parse_response(&mut BufReader::new(stream)).expect("response")
}

fn personalize_body() -> String {
    format!(
        "{{\"user\":\"al\",\"sql\":\"{SQL}\",\"problem\":{{\"kind\":\"p2\",\"cmax\":500}},\
         \"algorithm\":\"c_maxbounds\"}}"
    )
}

#[test]
fn chaos_modes_answer_or_reap_and_server_stays_bit_exact() {
    for backend in BACKENDS {
        chaos_modes_answer_or_reap(backend);
    }
}

fn chaos_modes_answer_or_reap(backend: Backend) {
    let (db, mut handle) = boot(ServerConfig {
        backend,
        // A short read deadline so slowloris is reaped quickly; chaos
        // patience below comfortably exceeds it.
        read_timeout_ms: 400,
        seed_users: 2,
        seed: 11,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    assert_eq!(
        request(addr, "POST", "/profiles/al", Some(PROFILE_WIRE)).status,
        200
    );

    let report = run_chaos(&ChaosConfig {
        addr: addr.to_string(),
        seed: 0xC4A05,
        iterations: 3,
        patience_ms: 4_000,
        drip_interval_ms: 60,
        drip_bytes: 24,
    })
    .expect("chaos run");

    // The hard invariant: nothing leaks, nothing earns a 5xx.
    assert_eq!(report.leaked(), 0, "{:?}", report.outcomes);
    for (mode, outcomes) in &report.outcomes {
        assert_eq!(outcomes.len(), 3);
        for o in outcomes {
            match o {
                ChaosOutcome::Answered { status } => assert!(
                    (400..500).contains(status),
                    "{}: answered {status}",
                    mode.as_str()
                ),
                ChaosOutcome::Reaped => {}
                ChaosOutcome::Leaked => unreachable!(),
            }
        }
    }
    // Mode-specific shapes. Garbage is a parse failure the server can
    // still answer; a slowloris never completes its head, so only the
    // read deadline ends it — a 408, written while the socket still
    // listens. Truncated sends end in EOF mid-parse: a clean reap.
    for o in report.for_mode(ChaosMode::GarbageBytes) {
        assert!(
            matches!(o, ChaosOutcome::Answered { status } if *status == 400 || *status == 431),
            "garbage: {o:?}"
        );
    }
    for o in report.for_mode(ChaosMode::Slowloris) {
        assert!(
            matches!(
                o,
                ChaosOutcome::Answered { status: 408 } | ChaosOutcome::Reaped
            ),
            "slowloris: {o:?}"
        );
    }
    for o in report.for_mode(ChaosMode::TruncatedHead) {
        assert!(matches!(o, ChaosOutcome::Reaped), "truncated head: {o:?}");
    }

    // Post-chaos smoke: the answer over the abused server is
    // bit-identical to the in-process pipeline.
    let resp = request(addr, "POST", "/personalize", Some(&personalize_body()));
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let served = json::parse(&resp.body_text()).unwrap();
    let profile = cqp_prefs::from_text(PROFILE_WIRE, db.catalog()).unwrap();
    let driver = BatchDriver::new(Arc::clone(&db), 1);
    let item = driver
        .submit(BatchRequest {
            query: cqp_engine::parse_query(SQL, db.catalog()).unwrap(),
            profile,
            problem: ProblemSpec::p2(500),
            config: SolverConfig {
                algorithm: Algorithm::CMaxBounds,
                ..Default::default()
            },
        })
        .unwrap();
    assert_eq!(
        served.get("sql").and_then(Json::as_str),
        Some(item.sql.as_str())
    );
    let served_prefs: Vec<u64> = served
        .get("solution")
        .and_then(|s| s.get("prefs"))
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(Json::as_u64)
        .collect();
    let local_prefs: Vec<u64> = item.solution.prefs.iter().map(|&p| p as u64).collect();
    assert_eq!(served_prefs, local_prefs);
    assert_eq!(
        served
            .get("solution")
            .and_then(|s| s.get("doi"))
            .and_then(Json::as_f64),
        Some(item.solution.doi.value())
    );

    // Nothing panicked and every chaos connection was accounted for.
    assert_eq!(handle.state().driver.submit_panics(), 0);
    let stats = handle.shutdown(Duration::from_millis(5_000));
    assert!(stats.graceful, "{stats:?}");
    assert_eq!(stats.forced, 0);
    assert_eq!(handle.state().active_connections(), 0);
}

#[test]
fn drain_finishes_inflight_rejects_arrivals_and_joins_every_thread() {
    for backend in BACKENDS {
        drain_finishes_inflight(backend);
    }
}

fn drain_finishes_inflight(backend: Backend) {
    let (_db, handle) = boot(ServerConfig {
        backend,
        read_timeout_ms: 5_000,
        drain_deadline_ms: 5_000,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let state = Arc::clone(handle.state());

    // conn1: a request mid-arrival — the head promises a body that has
    // not been sent yet, so the handler is blocked reading it.
    let mut conn1 = TcpStream::connect(addr).expect("conn1");
    let body = PROFILE_WIRE;
    conn1
        .write_all(
            format!(
                "POST /profiles/al HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();

    // conn2: idle keep-alive — no bytes at all.
    let mut conn2 = TcpStream::connect(addr).expect("conn2");
    conn2
        .set_read_timeout(Some(Duration::from_millis(3_000)))
        .unwrap();

    // Let both handlers spawn, then drain in the background.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(state.phase(), Phase::Live);
    let drainer = std::thread::spawn(move || {
        let mut handle = handle;
        let stats = handle.shutdown(Duration::from_millis(5_000));
        (handle, stats)
    });
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(state.phase(), Phase::Draining);

    // New connections are no longer accepted while draining.
    assert!(
        TcpStream::connect_timeout(&addr.clone(), Duration::from_millis(300)).is_err(),
        "listener must be closed during drain"
    );

    // conn1's body now arrives: the request completes its arrival during
    // the drain and is answered 503 draining + Connection: close.
    conn1.write_all(body.as_bytes()).unwrap();
    let resp = parse_response(&mut BufReader::new(&mut conn1)).expect("conn1 response");
    assert_eq!(resp.status, 503, "{}", resp.body_text());
    assert_eq!(resp.header("connection"), Some("close"));
    let parsed = json::parse(&resp.body_text()).unwrap();
    assert_eq!(
        parsed
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("draining")
    );

    // conn2 was idle: the drain closes it without a response.
    let mut buf = [0u8; 16];
    assert_eq!(conn2.read(&mut buf).expect("conn2 EOF"), 0);

    // The drain itself: graceful, nothing force-severed, every handler
    // joined, and the server is stopped.
    let (handle, stats) = drainer.join().expect("drainer");
    assert!(stats.graceful, "{stats:?}");
    assert_eq!(stats.forced, 0, "{stats:?}");
    assert!(stats.drain_ms < 5_000);
    assert_eq!(state.phase(), Phase::Stopped);
    assert_eq!(state.active_connections(), 0);
    assert!(state.drain_rejected() >= 1);
    drop(handle);
}

#[test]
fn healthz_stays_reachable_and_reports_draining_mid_drain() {
    for backend in BACKENDS {
        healthz_reachable_mid_drain(backend);
    }
}

fn healthz_reachable_mid_drain(backend: Backend) {
    let (_db, handle) = boot(ServerConfig {
        backend,
        read_timeout_ms: 5_000,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let state = Arc::clone(handle.state());

    // Readiness before drain: 200 ready, breaker closed.
    let resp = request(addr, "GET", "/healthz/ready", None);
    assert_eq!(resp.status, 200);
    let body = json::parse(&resp.body_text()).unwrap();
    assert_eq!(body.get("status").and_then(Json::as_str), Some("ready"));
    assert_eq!(body.get("breaker").and_then(Json::as_str), Some("closed"));
    let resp = request(addr, "GET", "/healthz/live", None);
    assert_eq!(resp.status, 200);

    // A readiness probe whose head is still arriving when the drain
    // begins: health endpoints answer during drain, and this one reports
    // the transition.
    let mut probe = TcpStream::connect(addr).expect("probe");
    probe
        .write_all(b"GET /healthz/ready HTTP/1.1\r\nhost: t\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let drainer = std::thread::spawn(move || {
        let mut handle = handle;
        let stats = handle.shutdown(Duration::from_millis(5_000));
        (handle, stats)
    });
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(state.phase(), Phase::Draining);

    probe.write_all(b"\r\n").unwrap();
    let resp = parse_response(&mut BufReader::new(&mut probe)).expect("probe response");
    assert_eq!(resp.status, 503, "{}", resp.body_text());
    let body = json::parse(&resp.body_text()).unwrap();
    assert_eq!(body.get("status").and_then(Json::as_str), Some("draining"));

    let (_handle, stats) = drainer.join().expect("drainer");
    assert!(stats.graceful, "{stats:?}");
    assert_eq!(stats.forced, 0);
}

#[test]
fn keep_alive_connections_close_at_the_request_cap() {
    for backend in BACKENDS {
        keep_alive_request_cap(backend);
    }
}

fn keep_alive_request_cap(backend: Backend) {
    let (_db, mut handle) = boot(ServerConfig {
        backend,
        max_requests_per_conn: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Three pipelined keep-alive requests on one connection: the cap
    // answers two, marks the second `Connection: close`, and closes.
    let mut conn = TcpStream::connect(addr).expect("connect");
    for _ in 0..3 {
        conn.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
    }
    conn.set_read_timeout(Some(Duration::from_millis(3_000)))
        .unwrap();
    let mut reader = BufReader::new(conn);
    let first = parse_response(&mut reader).expect("first");
    assert_eq!(first.status, 200);
    assert_ne!(first.header("connection"), Some("close"));
    let second = parse_response(&mut reader).expect("second");
    assert_eq!(second.status, 200);
    assert_eq!(second.header("connection"), Some("close"));
    match parse_response(&mut reader) {
        Err(HttpError::ConnectionClosed) => {}
        other => panic!("third request must hit a closed connection, got {other:?}"),
    }
    handle.stop();
}

/// The reactor at connection scale: an idle keep-alive herd is held open
/// while slowloris writers drip and open-loop lanes push real traffic —
/// then the idle deadline must reap every idle connection, the read
/// deadline must end every dripper, and a drain must quiesce the rest
/// with nothing force-severed and nothing leaked.
///
/// The in-process herd defaults to 2 000 connections (both socket ends
/// share this process's fd table); `CQP_C10K_TARGET` scales it up to the
/// full 10k on machines with the fd budget — the `reproduce serve` bench
/// runs that shape against a child `serverd` process.
#[test]
fn epoll_reaps_idle_herd_and_slowloris_then_drains_with_zero_leaks() {
    let requested: usize = std::env::var("CQP_C10K_TARGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    // Two fds per in-process connection, plus server internals + margin.
    let (soft, _hard) = cqp_sys::nofile_limit().expect("rlimit");
    let _ = cqp_sys::raise_nofile_limit(soft.max(requested as u64 * 2 + 512));
    let (soft, _hard) = cqp_sys::nofile_limit().expect("rlimit");
    let target = requested.min(((soft.saturating_sub(512)) / 2) as usize);

    let (_db, mut handle) = boot(ServerConfig {
        backend: Backend::Epoll,
        read_timeout_ms: 1_200,
        drain_deadline_ms: 5_000,
        max_connections: target + 256,
        seed_users: 2,
        seed: 11,
        ..ServerConfig::default()
    });
    let state = Arc::clone(handle.state());
    let report = run_conn_scale(
        handle.addr(),
        &ConnScaleConfig {
            idle_conns: target,
            slowloris_conns: 12,
            drip_interval_ms: 40,
            lanes: 2,
            lane_rps: 60,
            lane_requests: 30,
            mix: LoadConfig {
                users: vec!["user0001".into(), "user0002".into()],
                queries: vec![SQL.to_string()],
                ..LoadConfig::default()
            },
            reap_patience_ms: 15_000,
            connect_burst: 64,
        },
    )
    .expect("conn scale run");

    // The herd arrived (the OS may refuse a few dials at the margin) and
    // every accepted connection was eventually closed by the server.
    assert!(
        report.idle_opened as usize >= target * 9 / 10,
        "herd failed to establish: {report:?}"
    );
    assert_eq!(report.idle_leaked, 0, "{report:?}");
    assert_eq!(report.slowloris_leaked, 0, "{report:?}");
    assert_eq!(report.slowloris_reaped, report.slowloris_opened);
    assert_eq!(report.leaked(), 0);
    // Lanes got real answers through the pressure.
    assert!(report.lane_ok > 0, "{report:?}");
    assert_eq!(report.lane_errors, 0, "{report:?}");

    // Everything the client saw reaped is also gone server-side, the
    // reap counters moved, and the drain has nothing left to sever.
    assert_eq!(state.driver.submit_panics(), 0);
    let stats = handle.shutdown(Duration::from_millis(5_000));
    assert!(stats.graceful, "{stats:?}");
    assert_eq!(stats.forced, 0, "{stats:?}");
    assert_eq!(state.active_connections(), 0);
    assert_eq!(state.phase(), Phase::Stopped);
}
