//! Determinism of the parallel paths: a multi-threaded run must be
//! bit-identical to the sequential one — same selected preferences, same
//! doi, same cost, same result size — for every paper algorithm.

use cqp_bench::experiments;
use cqp_bench::{build_workload, Scale};
use cqp_core::batch::{BatchDriver, BatchRequest};
use cqp_core::prelude::*;
use cqp_core::solver::Parallelism;
use cqp_engine::QueryBuilder;
use cqp_prefs::Profile;
use cqp_storage::{DataType, Database, RelationSchema, Value};
use std::sync::Arc;

/// The paper's running-example movie database, large enough that the
/// extracted space has several preferences with distinct costs.
fn movie_db() -> Database {
    let mut db = Database::with_block_capacity(4);
    db.create_relation(RelationSchema::new(
        "MOVIE",
        vec![
            ("mid", DataType::Int),
            ("title", DataType::Str),
            ("year", DataType::Int),
            ("duration", DataType::Int),
            ("did", DataType::Int),
        ],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new(
        "DIRECTOR",
        vec![("did", DataType::Int), ("name", DataType::Str)],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new(
        "GENRE",
        vec![("mid", DataType::Int), ("genre", DataType::Str)],
    ))
    .unwrap();
    for i in 0..60i64 {
        db.insert_into(
            "MOVIE",
            vec![
                Value::Int(i),
                Value::str(format!("m{i}")),
                Value::Int(1980 + i % 25),
                Value::Int(90 + (i % 5) * 10),
                Value::Int(i % 4),
            ],
        )
        .unwrap();
        db.insert_into(
            "GENRE",
            vec![
                Value::Int(i),
                Value::str(if i % 2 == 0 { "musical" } else { "drama" }),
            ],
        )
        .unwrap();
    }
    for d in 0..4i64 {
        let name = if d == 0 {
            "W. Allen".to_owned()
        } else {
            format!("dir{d}")
        };
        db.insert_into("DIRECTOR", vec![Value::Int(d), Value::str(name)])
            .unwrap();
    }
    db
}

/// One request per paper algorithm × cmax width, over the paper's
/// Figure 1 profile.
fn paper_requests(db: &Database) -> Vec<BatchRequest> {
    let base = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();
    let profile = Profile::paper_figure1(db.catalog()).unwrap();
    let mut requests = Vec::new();
    for &cmax in &[15u64, 60, 100, 400] {
        for algo in Algorithm::PAPER {
            requests.push(BatchRequest {
                query: base.clone(),
                profile: profile.clone(),
                problem: ProblemSpec::p2(cmax),
                config: SolverConfig {
                    algorithm: algo,
                    ..Default::default()
                },
            });
        }
    }
    requests
}

fn solve_batch(db: &Arc<Database>, threads: usize) -> Vec<(Vec<usize>, f64, u64, String)> {
    let driver = BatchDriver::new(Arc::clone(db), threads);
    let (results, stats) = driver.run(paper_requests(db));
    assert_eq!(stats.threads, threads);
    results
        .into_iter()
        .map(|r| {
            let item = r.expect("request must succeed");
            (
                item.solution.prefs.clone(),
                item.solution.doi.value(),
                item.solution.cost_blocks,
                item.sql,
            )
        })
        .collect()
}

#[test]
fn batch_threads4_bit_identical_to_threads1_for_all_paper_algorithms() {
    let db = Arc::new(movie_db());
    let sequential = solve_batch(&db, 1);
    let parallel = solve_batch(&db, 4);
    assert_eq!(sequential.len(), parallel.len());
    for (i, (seq, par)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(seq, par, "request {i} diverged between 1 and 4 threads");
    }
}

#[test]
fn partitioned_exact_solvers_match_sequential_through_solver_config() {
    let db = movie_db();
    let base = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();
    let profile = Profile::paper_figure1(db.catalog()).unwrap();
    for algorithm in [Algorithm::Exhaustive, Algorithm::BranchBound] {
        let mut solutions = Vec::new();
        for threads in [1usize, 4] {
            let system = CqpSystem::new(&db);
            let outcome = system
                .personalize(
                    &base,
                    &profile,
                    &ProblemSpec::p2(100),
                    &SolverConfig {
                        algorithm,
                        parallelism: Parallelism::new(threads),
                        ..Default::default()
                    },
                )
                .expect("solve");
            solutions.push((
                outcome.solution.prefs.clone(),
                outcome.solution.doi.value(),
                outcome.solution.cost_blocks,
            ));
        }
        assert_eq!(
            solutions[0], solutions[1],
            "{algorithm:?} diverged between 1 and 4 threads"
        );
    }
}

#[test]
fn parallel_fig12_grid_preserves_cell_order() {
    let w = build_workload(&Scale::tiny());
    let cells: Vec<(usize, Algorithm)> = [4usize, 6]
        .iter()
        .flat_map(|&k| {
            [
                Algorithm::CBoundaries,
                Algorithm::CMaxBounds,
                Algorithm::DHeurDoi,
            ]
            .into_iter()
            .map(move |a| (k, a))
        })
        .collect();
    let mut seq_reports = Vec::new();
    let mut par_reports = Vec::new();
    let seq = experiments::fig12a_parallel(&w, &cells, 1, &mut seq_reports);
    let par = experiments::fig12a_parallel(&w, &cells, 4, &mut par_reports);
    assert_eq!(seq.len(), cells.len());
    assert_eq!(par.len(), cells.len());
    for ((row_s, row_p), (k, algo)) in seq.iter().zip(&par).zip(&cells) {
        assert_eq!(row_s.x, *k as f64);
        assert_eq!(row_p.x, *k as f64);
        assert_eq!(row_s.algorithm, algo.name());
        assert_eq!(row_p.algorithm, algo.name());
        // Work counters are deterministic for these sequential-per-cell
        // algorithms, so they must agree across pool widths.
        assert_eq!(row_s.states, row_p.states);
    }
    assert_eq!(seq_reports.len(), cells.len());
    assert_eq!(par_reports.len(), cells.len());
}
