//! Differential tests of the cross-request answer cache, over real sockets.
//!
//! The load-bearing claim: the cache changes *latency*, never *answers*.
//! Every response served from any cache tier — exact, warm-started, or
//! delta-repaired — must be bit-identical to what a cache-off server (or an
//! in-process cold solve) produces from the same database, profile version,
//! and problem. And a profile write must never leave a stale answer
//! reachable, including across a WAL crash-recovery cycle.

use cqp_core::algorithms::branch_bound;
use cqp_core::budget::CancelToken;
use cqp_core::ProblemSpec;
use cqp_obs::Json;
use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::{PrefParams, PreferenceSpace};
use cqp_server::http::{parse_response, ClientResponse};
use cqp_server::{json, start, ServerConfig, ServerHandle, TRACE_ID_HEADER};
use proptest::prelude::*;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PROFILE_WIRE: &str = "# cqp-profile v1\n\
    profile al\n\
    join 0.9 MOVIE.mid GENRE.mid\n\
    join 1.0 MOVIE.did DIRECTOR.did\n\
    select 0.8 GENRE.genre eq \"comedy\"\n\
    select 0.6 MOVIE.year ge 1990\n";

/// A merge-upsert that moves the profile: a new high-doi selection and a
/// stronger doi on an existing one, so the personalized answer can change.
const PROFILE_DELTA_WIRE: &str = "# cqp-profile v1\n\
    profile al\n\
    select 0.95 GENRE.genre eq \"drama\"\n\
    select 0.9 MOVIE.year ge 1990\n";

const SQL: &str = "SELECT title FROM MOVIE";

static DIR_SERIAL: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "cqp-anscache-{tag}-{}-{}",
        std::process::id(),
        DIR_SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

fn boot(config: ServerConfig) -> ServerHandle {
    let db = Arc::new(cqp_datagen::generate_movie_db(
        &cqp_datagen::MovieDbConfig::tiny(7),
    ));
    start(db, config).expect("server start")
}

/// One request over a fresh connection; closes after the response.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> ClientResponse {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n");
    if let Some(b) = body {
        head.push_str(&format!("content-length: {}\r\n", b.len()));
    }
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    let mut payload = head.into_bytes();
    if let Some(b) = body {
        payload.extend_from_slice(b.as_bytes());
    }
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&payload).expect("write");
    stream.flush().expect("flush");
    parse_response(&mut BufReader::new(stream)).expect("response")
}

fn personalize_body(sql: &str, problem: &str) -> String {
    format!(
        "{{\"user\":\"al\",\"sql\":{},\"problem\":{problem},\
         \"algorithm\":\"branch_bound\"}}",
        Json::Str(sql.to_string()).render()
    )
}

fn personalize(addr: SocketAddr, sql: &str, problem: &str) -> Json {
    let resp = request(
        addr,
        "POST",
        "/personalize",
        &[],
        Some(&personalize_body(sql, problem)),
    );
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    json::parse(&resp.body_text()).expect("personalize body is JSON")
}

fn cache_tier(body: &Json) -> String {
    body.get("cache")
        .and_then(Json::as_str)
        .expect("cache tier present")
        .to_string()
}

/// The answer-carrying fields of a personalize response — everything except
/// the per-request latency and the cache-tier tag. Two responses with equal
/// renderings carry bit-identical answers (the JSON writer emits f64s via
/// shortest-round-trip, so doi values survive exactly).
fn answer_fields(body: &Json) -> String {
    let field = |k: &str| body.get(k).cloned().unwrap_or(Json::Null);
    Json::obj(vec![
        ("sql", field("sql")),
        ("solution", field("solution")),
        ("pref_dois", field("pref_dois")),
        ("profile_version", field("profile_version")),
    ])
    .render()
}

fn prom_value(text: &str, prefix: &str) -> Option<f64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| {
            l.strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

/// The six Table-1 problems in the server's wire encoding.
fn six_problems() -> [String; 6] {
    [
        "{\"kind\":\"p1\",\"smin\":0,\"smax\":1000000}".to_string(),
        "{\"kind\":\"p2\",\"cmax\":500}".to_string(),
        "{\"kind\":\"p3\",\"cmax\":500,\"smin\":0,\"smax\":1000000}".to_string(),
        "{\"kind\":\"p4\",\"dmin\":0.3}".to_string(),
        "{\"kind\":\"p5\",\"dmin\":0.3,\"smin\":0,\"smax\":1000000}".to_string(),
        "{\"kind\":\"p6\",\"smin\":0,\"smax\":1000000}".to_string(),
    ]
}

/// Exact tier across every Table-1 problem: the second identical request is
/// served from the cache, and its answer is bit-identical both to the first
/// (cold) response and to a cache-off server solving the same instance.
#[test]
fn exact_hits_are_bit_identical_across_all_six_problems() {
    let mut cached = boot(ServerConfig::default());
    let mut cold = boot(ServerConfig {
        answer_cache: false,
        ..ServerConfig::default()
    });
    for h in [&cached, &cold] {
        let resp = request(h.addr(), "POST", "/profiles/al", &[], Some(PROFILE_WIRE));
        assert_eq!(resp.status, 200, "{}", resp.body_text());
    }
    for problem in &six_problems() {
        // The six problems share one family (same template/profile/config),
        // so after the first variant is cached the others open as warm
        // space-reuse hits — never exact, which is what matters here.
        let first = personalize(cached.addr(), SQL, problem);
        assert_ne!(cache_tier(&first), "exact", "{problem}");
        let second = personalize(cached.addr(), SQL, problem);
        assert_eq!(cache_tier(&second), "exact", "{problem}");
        let off = personalize(cold.addr(), SQL, problem);
        assert_eq!(cache_tier(&off), "off", "{problem}");
        assert_eq!(
            answer_fields(&second),
            answer_fields(&first),
            "exact hit diverged from its own cold solve on {problem}"
        );
        assert_eq!(
            answer_fields(&second),
            answer_fields(&off),
            "exact hit diverged from the cache-off server on {problem}"
        );
    }
    assert_eq!(cached.state().driver.submit_panics(), 0);
    cached.stop();
    cold.stop();
}

/// The canonicalizer in front of the key: spelling variants of one SQL
/// template — whitespace runs, tabs and newlines, keyword case — land on
/// the same cache family and hit the exact tier. (Literal normalization,
/// e.g. `007` vs `7`, is covered textually by the `canon` unit tests; over
/// the wire the parsed query backstops the key, so only variants that
/// parse identically can share a family.)
#[test]
fn spelling_variants_of_one_template_share_a_family() {
    let mut handle = boot(ServerConfig::default());
    let addr = handle.addr();
    assert_eq!(
        request(addr, "POST", "/profiles/al", &[], Some(PROFILE_WIRE)).status,
        200
    );
    let problem = "{\"kind\":\"p2\",\"cmax\":500}";
    let base = personalize(
        addr,
        "SELECT title FROM MOVIE WHERE MOVIE.year >= 1990",
        problem,
    );
    assert_eq!(cache_tier(&base), "miss");
    let variants = [
        "SELECT   title  FROM  MOVIE   WHERE MOVIE.year >= 1990",
        "select title from MOVIE where MOVIE.year >= 1990",
        "SELECT\ttitle\nFROM MOVIE\n  WHERE MOVIE.year >= 1990  ",
    ];
    for sql in variants {
        let hit = personalize(addr, sql, problem);
        assert_eq!(cache_tier(&hit), "exact", "{sql}");
        assert_eq!(
            answer_fields(&hit),
            answer_fields(&base),
            "variant spelling changed the answer: {sql}"
        );
    }
    handle.stop();
}

/// Warm tier over the socket: the same template at a *moved* cost budget is
/// served as a warm hit and is bit-identical to a cache-off solve of the
/// new budget — the cached objective only prunes, it never leaks into the
/// answer.
#[test]
fn warm_hits_match_cold_solves_at_moved_budgets() {
    let mut cached = boot(ServerConfig::default());
    let mut cold = boot(ServerConfig {
        answer_cache: false,
        ..ServerConfig::default()
    });
    for h in [&cached, &cold] {
        let resp = request(h.addr(), "POST", "/profiles/al", &[], Some(PROFILE_WIRE));
        assert_eq!(resp.status, 200, "{}", resp.body_text());
    }
    let first = personalize(cached.addr(), SQL, "{\"kind\":\"p2\",\"cmax\":500}");
    assert_eq!(cache_tier(&first), "miss");
    for cmax in [50u64, 120, 250, 400] {
        let problem = format!("{{\"kind\":\"p2\",\"cmax\":{cmax}}}");
        let warm = personalize(cached.addr(), SQL, &problem);
        assert_eq!(cache_tier(&warm), "warm", "cmax={cmax}");
        let off = personalize(cold.addr(), SQL, &problem);
        assert_eq!(
            answer_fields(&warm),
            answer_fields(&off),
            "warm-started answer diverged at cmax={cmax}"
        );
    }
    cached.stop();
    cold.stop();
}

/// The staleness race, over real sockets: personalize, write the profile,
/// personalize again. The post-write answer must carry the new profile
/// version, must not be served from the exact tier, and must equal what a
/// cache-off server says about the *same* profile history. Then the server
/// is restarted over its WAL and the recovered answer is checked again —
/// recovery replay must not resurrect anything stale.
#[test]
fn profile_writes_invalidate_and_wal_recovery_serves_fresh_answers() {
    let wal = tmpdir("staleness");
    let mut cached = boot(ServerConfig {
        wal_dir: Some(wal.clone()),
        ..ServerConfig::default()
    });
    let mut cold = boot(ServerConfig {
        answer_cache: false,
        ..ServerConfig::default()
    });
    let problem = "{\"kind\":\"p2\",\"cmax\":500}";

    // Version 1 everywhere, and a hot exact tier on the cached server.
    for h in [&cached, &cold] {
        let resp = request(h.addr(), "POST", "/profiles/al", &[], Some(PROFILE_WIRE));
        assert_eq!(resp.status, 200, "{}", resp.body_text());
    }
    let v1 = personalize(cached.addr(), SQL, problem);
    assert_eq!(
        cache_tier(&personalize(cached.addr(), SQL, problem)),
        "exact"
    );
    assert_eq!(
        v1.get("profile_version").and_then(Json::as_u64),
        Some(1),
        "{}",
        answer_fields(&v1)
    );

    // The write: a merge upsert that moves the profile to version 2.
    for h in [&cached, &cold] {
        let resp = request(
            h.addr(),
            "POST",
            "/profiles/al?merge=true",
            &[],
            Some(PROFILE_DELTA_WIRE),
        );
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        let body = json::parse(&resp.body_text()).unwrap();
        assert_eq!(body.get("version").and_then(Json::as_u64), Some(2));
    }

    // Read-your-writes: the very next personalize sees version 2, does not
    // come from the exact tier, and matches the cache-off server.
    let v2 = personalize(cached.addr(), SQL, problem);
    assert_eq!(v2.get("profile_version").and_then(Json::as_u64), Some(2));
    let tier = cache_tier(&v2);
    assert!(
        tier == "repair" || tier == "miss",
        "post-write answer served from tier {tier:?}"
    );
    let v2_cold = personalize(cold.addr(), SQL, problem);
    assert_eq!(
        answer_fields(&v2),
        answer_fields(&v2_cold),
        "post-write answer diverged from the cache-off server"
    );

    // The cache metrics saw all of it: exact hits, an invalidation, and a
    // live entries gauge.
    let metrics = request(cached.addr(), "GET", "/metrics", &[], None);
    assert_eq!(metrics.status, 200);
    let text = metrics.body_text();
    assert!(
        prom_value(&text, "cqp_answer_cache_hits_total{tier=\"exact\"}") >= Some(1.0),
        "exact-hit counter missing"
    );
    assert!(
        prom_value(&text, "cqp_answer_cache_invalidations_total") >= Some(1.0),
        "invalidation counter missing"
    );
    assert!(prom_value(&text, "cqp_answer_cache_misses_total").is_some());
    assert!(prom_value(&text, "cqp_answer_cache_entries").is_some());

    // Crash-recovery cycle: restart over the same WAL. Replay restores the
    // version-2 profile but must not pre-warm the cache with anything the
    // listener would have invalidated — the first answer out of the
    // recovered server is a miss at version 2, bit-identical to the
    // pre-restart answer, and only *then* does the exact tier re-engage.
    cached.stop();
    let mut recovered = boot(ServerConfig {
        wal_dir: Some(wal),
        ..ServerConfig::default()
    });
    assert!(
        recovered
            .state()
            .recovery
            .as_ref()
            .is_some_and(|r| r.records_replayed() > 0),
        "restart did not replay the WAL"
    );
    let after = personalize(recovered.addr(), SQL, problem);
    assert_eq!(cache_tier(&after), "miss");
    assert_eq!(after.get("profile_version").and_then(Json::as_u64), Some(2));
    assert_eq!(
        answer_fields(&after),
        answer_fields(&v2),
        "recovered server served a different answer"
    );
    assert_eq!(
        cache_tier(&personalize(recovered.addr(), SQL, problem)),
        "exact"
    );
    recovered.stop();
    cold.stop();
}

/// Cache-tier span events are visible in the captured request trace.
#[test]
fn cache_tier_is_recorded_in_request_traces() {
    let mut handle = boot(ServerConfig::default());
    let addr = handle.addr();
    assert_eq!(
        request(addr, "POST", "/profiles/al", &[], Some(PROFILE_WIRE)).status,
        200
    );
    let problem = "{\"kind\":\"p2\",\"cmax\":500}";
    for (id, want) in [("ca11ab1e00000001", "miss"), ("ca11ab1e00000002", "exact")] {
        let resp = request(
            addr,
            "POST",
            "/personalize",
            &[(TRACE_ID_HEADER, id)],
            Some(&personalize_body(SQL, problem)),
        );
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        let trace = request(addr, "GET", &format!("/debug/traces?id={id}"), &[], None);
        assert_eq!(trace.status, 200, "{}", trace.body_text());
        assert!(
            trace.body_text().contains(&format!("answer cache: {want}")),
            "trace {id} lacks the `answer cache: {want}` event:\n{}",
            trace.body_text()
        );
    }
    handle.stop();
}

/// Strategy: a synthetic space of 1..=12 preferences (same shape as the
/// solver differential suite).
fn arb_space() -> impl Strategy<Value = PreferenceSpace> {
    prop::collection::vec((1u64..=19, 1u64..=80, 1u32..=20), 1..=12).prop_map(|raw| {
        let params: Vec<PrefParams> = raw
            .into_iter()
            .map(|(d, c, f)| PrefParams {
                doi: Doi::new(d as f64 * 0.05),
                cost_blocks: c,
                size_factor: f as f64 * 0.05,
            })
            .collect();
        PreferenceSpace::synthetic(params, 1000.0, 0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The warm-start soundness property the cache's warm tier rests on,
    /// isolated from the serving stack: on random ≤12-pref instances, a
    /// branch-and-bound run seeded with the params of a *feasible* answer
    /// from a neighbouring budget is bit-identical — prefs, doi, cost,
    /// found — to the unseeded run. The seed prunes; it never decides.
    #[test]
    fn seeded_branch_bound_is_bit_identical_to_cold(
        space in arb_space(),
        cmax_from in 1u64..500,
        cmax_to in 1u64..500,
    ) {
        let from = ProblemSpec::p2(cmax_from);
        let to = ProblemSpec::p2(cmax_to);
        let donor = branch_bound::solve(&space, ConjModel::NoisyOr, &from);
        // Only a feasible donor ever becomes a seed (`best_seed` enforces
        // the same precondition in the cache).
        if donor.found && to.feasible(&donor.params()) {
            let cold = branch_bound::solve(&space, ConjModel::NoisyOr, &to);
            let warm = branch_bound::solve_bounded_warm(
                &space,
                ConjModel::NoisyOr,
                &to,
                &CancelToken::unlimited(),
                Some(donor.params()),
            );
            prop_assert_eq!(&warm.prefs, &cold.prefs);
            prop_assert_eq!(warm.doi, cold.doi);
            prop_assert_eq!(warm.cost_blocks, cold.cost_blocks);
            prop_assert_eq!(warm.found, cold.found);
            prop_assert!(warm.degraded.is_none());
        }
    }
}
