//! Crash-recovery tests of the WAL-backed session store.
//!
//! The load-bearing claim: recovery reconstructs the *exact* pre-crash
//! store — same users, same profile text, same versions — no matter
//! where the crash lands. A crash between records loses nothing; a
//! crash mid-record loses only the torn record, and replay after the
//! healed truncation is idempotent: recovering twice gives the same
//! store as recovering once.

use cqp_datagen::{generate_movie_db, MovieDbConfig};
use cqp_server::http::parse_response;
use cqp_server::{start, Backend, ServerConfig, SessionStore, UpsertMode};
use cqp_storage::{Catalog, Database};
use proptest::prelude::*;
use rand::splitmix64_mix as splitmix64;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Matches `wal.rs`'s private file names: the on-disk layout is part of
/// the crash contract these tests exercise, so name them once here.
const LOG_FILE: &str = "log.wal";
const SNAPSHOT_FILE: &str = "snapshot.wal";

static DIR_SERIAL: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "cqp-recovery-{tag}-{}-{}",
        std::process::id(),
        DIR_SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn db() -> Database {
    generate_movie_db(&MovieDbConfig::tiny(7))
}

/// One op of a seeded write burst: `(user, profile_text)`.
fn burst_op(seed: u64, i: u64) -> (String, String) {
    const USERS: [&str; 5] = ["al", "bo", "cy", "di", "ed"];
    const GENRES: [&str; 4] = ["comedy", "drama", "horror", "scifi"];
    let r = splitmix64(seed ^ splitmix64(i));
    let user = USERS[(r % USERS.len() as u64) as usize].to_string();
    let w1 = 0.05 * (1 + (r >> 8) % 19) as f64;
    let w2 = 0.05 * (1 + (r >> 16) % 19) as f64;
    let year = 1940 + (r >> 24) % 70;
    let genre = GENRES[((r >> 32) % GENRES.len() as u64) as usize];
    let text = format!(
        "# cqp-profile v1\nprofile {user}\n\
         join 0.9 MOVIE.mid GENRE.mid\n\
         select {w1:.2} GENRE.genre eq \"{genre}\"\n\
         select {w2:.2} MOVIE.year ge {year}\n"
    );
    (user, text)
}

/// Applies the first `k` ops of burst `seed` to a plain in-memory store:
/// the reference a crashed-and-recovered store must match exactly.
fn reference_dump(catalog: &Catalog, seed: u64, k: usize) -> BTreeMap<String, (u64, String)> {
    let store = SessionStore::new(4);
    for i in 0..k {
        let (user, text) = burst_op(seed, i as u64);
        store
            .upsert_text(&user, &text, catalog, UpsertMode::Replace)
            .expect("reference upsert");
    }
    store.dump(catalog)
}

/// Runs a full burst through a durable store and returns the raw log.
fn run_burst(catalog: &Catalog, dir: &Path, seed: u64, ops: usize) -> Vec<u8> {
    let (store, report) = SessionStore::recover(4, dir, catalog).expect("fresh recover");
    assert_eq!(report.records_replayed(), 0);
    for i in 0..ops {
        let (user, text) = burst_op(seed, i as u64);
        store
            .upsert_text(&user, &text, catalog, UpsertMode::Replace)
            .expect("burst upsert");
    }
    drop(store);
    std::fs::read(dir.join(LOG_FILE)).expect("read log")
}

/// Record boundaries of a log: each frame is newline-terminated and the
/// JSON payload escapes raw newlines, so every `\n` ends one record.
fn boundaries(log: &[u8]) -> Vec<usize> {
    let mut b = vec![0];
    b.extend(
        log.iter()
            .enumerate()
            .filter(|(_, c)| **c == b'\n')
            .map(|(i, _)| i + 1),
    );
    b
}

/// Writes a crash image — the first `cut` bytes of `log` — into a fresh
/// store dir and recovers from it.
fn recover_cut(
    catalog: &Catalog,
    tag: &str,
    log: &[u8],
    cut: usize,
) -> (SessionStore, cqp_server::RecoveryReport, PathBuf) {
    let dir = tmpdir(tag);
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join(LOG_FILE), &log[..cut]).expect("write crash image");
    let (store, report) = SessionStore::recover(4, &dir, catalog).expect("recover");
    (store, report, dir)
}

#[test]
fn crash_at_every_record_boundary_recovers_version_exact() {
    let db = db();
    let catalog = db.catalog();
    let seed = 0xB00737;
    let ops = 18;
    let dir = tmpdir("boundary");
    let log = run_burst(catalog, &dir, seed, ops);
    let bounds = boundaries(&log);
    assert_eq!(bounds.len(), ops + 1, "one record per op");

    for (k, cut) in bounds.iter().enumerate() {
        let (store, report, d) = recover_cut(catalog, "boundary-cut", &log, *cut);
        assert_eq!(report.records_replayed(), k as u64, "cut at {cut}");
        assert_eq!(report.torn_tail_bytes, 0, "clean boundary at {cut}");
        assert_eq!(
            store.dump(catalog),
            reference_dump(catalog, seed, k),
            "store after replaying {k} records"
        );
        std::fs::remove_dir_all(&d).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_is_idempotent_and_heals_the_torn_tail() {
    let db = db();
    let catalog = db.catalog();
    let seed = 0x1D3A;
    let ops = 8;
    let dir = tmpdir("idem");
    let log = run_burst(catalog, &dir, seed, ops);
    let bounds = boundaries(&log);

    // Crash mid-record: a few bytes past the second-to-last boundary.
    let cut = bounds[ops - 1] + 7;
    let (first, report, d) = recover_cut(catalog, "idem-cut", &log, cut);
    assert_eq!(report.records_replayed(), ops as u64 - 1);
    assert_eq!(report.torn_tail_bytes, 7);
    let dump = first.dump(catalog);
    assert_eq!(dump, reference_dump(catalog, seed, ops - 1));
    drop(first);

    // Replay again (and again): the tail was healed by truncation, so
    // later recoveries see a clean log and the identical store.
    for round in 0..2 {
        let (again, report) = SessionStore::recover(4, &d, catalog).expect("re-recover");
        assert_eq!(report.records_replayed(), ops as u64 - 1, "round {round}");
        assert_eq!(report.torn_tail_bytes, 0, "round {round}: already healed");
        assert_eq!(report.parse_skipped, 0);
        assert_eq!(again.dump(catalog), dump, "round {round}");
    }
    std::fs::remove_dir_all(&d).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_after_compaction_replays_snapshot_plus_log() {
    let db = db();
    let catalog = db.catalog();
    let seed = 0xC0517;
    let dir = tmpdir("compact");
    let (store, _) = SessionStore::recover(4, &dir, catalog).expect("recover");
    for i in 0..10 {
        let (user, text) = burst_op(seed, i);
        store
            .upsert_text(&user, &text, catalog, UpsertMode::Replace)
            .unwrap();
    }
    store.compact().expect("compact");
    for i in 10..14 {
        let (user, text) = burst_op(seed, i);
        store
            .upsert_text(&user, &text, catalog, UpsertMode::Replace)
            .unwrap();
    }
    let expected = store.dump(catalog);
    drop(store);

    // Tear the post-compaction log mid-way through its last record: the
    // snapshot plus the log's intact prefix must survive.
    let log_path = dir.join(LOG_FILE);
    let log = std::fs::read(&log_path).unwrap();
    assert!(std::fs::metadata(dir.join(SNAPSHOT_FILE)).unwrap().len() > 0);
    std::fs::write(&log_path, &log[..log.len() - 3]).unwrap();
    let (recovered, report) = SessionStore::recover(4, &dir, catalog).expect("recover");
    assert!(report.snapshot_records > 0, "snapshot replayed");
    assert_eq!(report.log_records, 3, "intact post-compaction records");
    assert!(report.torn_tail_bytes > 0);
    assert_eq!(
        recovered.dump(catalog),
        reference_dump(catalog, seed, 13),
        "snapshot + healed log equals the first 13 ops"
    );
    assert_ne!(recovered.dump(catalog), expected, "the torn op is lost");

    // Finish the lost op against the recovered store: versions continue
    // from the recovered state, and the next restart sees all of it.
    let (user, text) = burst_op(seed, 13);
    recovered
        .upsert_text(&user, &text, catalog, UpsertMode::Replace)
        .unwrap();
    assert_eq!(recovered.dump(catalog), expected);
    drop(recovered);
    let (next, _) = SessionStore::recover(4, &dir, catalog).expect("recover");
    assert_eq!(next.dump(catalog), expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The compaction crash window *after* the snapshot rename but *before*
/// the log truncation: the renamed snapshot already contains every
/// record, and the stale log still holds pre-compaction records at
/// versions the snapshot has since superseded. A crash here must not
/// let the stale log drag any user's version backwards on replay —
/// and the window itself must be durable (the snapshot rename is
/// fsynced into the directory, which is what makes "the snapshot is
/// now authoritative" true across power loss).
#[test]
fn crash_between_snapshot_rename_and_log_truncation_never_regresses() {
    let db = db();
    let catalog = db.catalog();
    let seed = 0x5EED;
    let dir = tmpdir("rename-window");
    let (store, _) = SessionStore::recover(4, &dir, catalog).expect("recover");
    for i in 0..10 {
        let (user, text) = burst_op(seed, i);
        store
            .upsert_text(&user, &text, catalog, UpsertMode::Replace)
            .unwrap();
    }
    let stale_log = std::fs::read(dir.join(LOG_FILE)).expect("pre-compaction log");
    store.compact().expect("compact");
    let at_compaction = store.dump(catalog);
    drop(store);

    // Recreate the window: snapshot.wal is the renamed snapshot, but
    // log.wal still holds the entire pre-compaction history (truncation
    // never happened). Replaying snapshot + full stale log must land on
    // exactly the compaction-time store — the stale records are all at
    // versions the snapshot already covers.
    std::fs::write(dir.join(LOG_FILE), &stale_log).expect("restore stale log");
    let (recovered, report) = SessionStore::recover(4, &dir, catalog).expect("recover window");
    assert!(report.snapshot_records > 0, "snapshot replayed");
    assert_eq!(report.log_records, 10, "the stale log replays in full");
    assert_eq!(
        recovered.dump(catalog),
        at_compaction,
        "stale log records must not regress any user past the snapshot"
    );

    // Writes continue from the snapshot's version chain, not the stale
    // log's.
    let (user, text) = burst_op(seed, 10);
    let before = recovered.dump(catalog).get(&user).map(|(v, _)| *v);
    recovered
        .upsert_text(&user, &text, catalog, UpsertMode::Replace)
        .unwrap();
    let after = recovered.dump(catalog).get(&user).map(|(v, _)| *v);
    assert_eq!(after, before.map(|v| v + 1), "versions continue forward");
    drop(recovered);

    // And the crash can also tear the stale log anywhere: any prefix of
    // it beside the snapshot still recovers to the compaction-time
    // store (completed-but-stale records are skipped, torn tails are
    // healed as usual).
    let bounds = boundaries(&stale_log);
    for cut in [bounds[3], bounds[7] + 5, stale_log.len() - 2] {
        std::fs::write(dir.join(LOG_FILE), &stale_log[..cut]).expect("torn stale log");
        let (recovered, _) = SessionStore::recover(4, &dir, catalog).expect("recover torn window");
        assert_eq!(
            recovered.dump(catalog),
            at_compaction,
            "cut at {cut}: snapshot remains authoritative"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Upserts one profile through a live server socket; panics on non-200.
fn socket_upsert(addr: std::net::SocketAddr, user: &str, text: &str) {
    use std::io::Write;
    let payload = format!(
        "POST /profiles/{user} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\
         content-length: {}\r\n\r\n{text}",
        text.len()
    );
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.write_all(payload.as_bytes()).expect("write");
    let resp = parse_response(&mut std::io::BufReader::new(stream)).expect("response");
    assert_eq!(resp.status, 200, "upsert {user}: {}", resp.body_text());
}

/// WAL durability is backend-independent: a burst written through real
/// sockets against either serving backend leaves a log that (a) recovers
/// to the exact reference store, and (b) a server on the *other* backend
/// can adopt mid-stream — versions continue, and the final recovered
/// store equals the single-store reference for the whole op sequence.
#[test]
fn wal_written_through_either_backend_recovers_identically() {
    let db = std::sync::Arc::new(db());
    let catalog = db.catalog();
    let seed = 0xEB011;
    let ops = 12;
    let split = 7; // ops 0..split on the first backend, the rest on the other

    for (first, second) in [
        (Backend::Threaded, Backend::Epoll),
        (Backend::Epoll, Backend::Threaded),
    ] {
        let dir = tmpdir(&format!("xbackend-{}", first.as_str()));
        let config = |backend| ServerConfig {
            backend,
            wal_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };

        let mut server = start(db.clone(), config(first)).expect("first server");
        for i in 0..split {
            let (user, text) = burst_op(seed, i as u64);
            socket_upsert(server.addr(), &user, &text);
        }
        server.stop();

        // Cold recovery of the half-written log matches the reference.
        let (store, report) = SessionStore::recover(4, &dir, catalog).expect("recover");
        assert_eq!(report.records_replayed(), split as u64);
        assert_eq!(report.torn_tail_bytes, 0, "graceful stop leaves no tear");
        assert_eq!(store.dump(catalog), reference_dump(catalog, seed, split));
        drop(store);

        // The other backend adopts the same WAL dir and continues it.
        let mut server = start(db.clone(), config(second)).expect("second server");
        for i in split..ops {
            let (user, text) = burst_op(seed, i as u64);
            socket_upsert(server.addr(), &user, &text);
        }
        server.stop();

        let (store, report) = SessionStore::recover(4, &dir, catalog).expect("re-recover");
        assert_eq!(report.records_replayed(), ops as u64);
        assert_eq!(
            store.dump(catalog),
            reference_dump(catalog, seed, ops),
            "{} then {}: recovered store diverged from reference",
            first.as_str(),
            second.as_str()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash anywhere: for an arbitrary burst seed and an arbitrary cut
    /// byte offset, recovery equals the reference store after exactly
    /// the records that were fully on disk — torn bytes lose at most
    /// the in-flight record, never a completed one.
    #[test]
    fn crash_at_any_byte_offset_loses_at_most_the_torn_record(
        seed in 0u64..1024,
        cut_sel in 0u64..10_000,
        ops in 3usize..12,
    ) {
        let db = db();
        let catalog = db.catalog();
        let dir = tmpdir("prop");
        let log = run_burst(catalog, &dir, seed, ops);
        let cut = (cut_sel as usize) % (log.len() + 1);
        let bounds = boundaries(&log);
        let complete = bounds.iter().filter(|b| **b <= cut).count() - 1;

        let (store, report, d) = recover_cut(catalog, "prop-cut", &log, cut);
        prop_assert_eq!(report.records_replayed(), complete as u64);
        prop_assert_eq!(
            report.torn_tail_bytes,
            (cut - bounds[complete]) as u64
        );
        prop_assert_eq!(store.dump(catalog), reference_dump(catalog, seed, complete));
        std::fs::remove_dir_all(&d).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
