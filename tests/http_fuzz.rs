//! Differential fuzz of the incremental HTTP parser against the blocking
//! one.
//!
//! The epoll backend parses requests from arbitrary read fragments via
//! `RequestParser`; the threaded backend parses blocking streams via
//! `parse_request`. The serving contract is that fragmentation is
//! *invisible*: for any byte stream and any way of slicing it, the
//! incremental parser must yield byte-identical requests and the
//! identical typed error the one-shot parser produces on the whole
//! stream. This suite proves it three ways:
//!
//! 1. a corpus of valid, malformed, pipelined, and oversized streams,
//!    each replayed **split at every byte boundary**;
//! 2. seeded proptest multi-splits (0–8 cut points) over the corpus;
//! 3. seeded proptest byte soup, sliced randomly.
//!
//! EOF equivalence: when a stream ends short, the one-shot parser
//! reports `ConnectionClosed` (head) or `Io(UnexpectedEof)` (body); the
//! incremental side reports the same via `eof_error()`.

use cqp_server::http::{parse_request, HttpError, Request, RequestParser, MAX_HEAD_BYTES};
use proptest::prelude::*;
use std::io::Cursor;

/// Ground truth: run the blocking parser over the whole stream until it
/// errors (EOF is `ConnectionClosed` at minimum), collecting every
/// pipelined request before the terminal error.
fn oracle(input: &[u8]) -> (Vec<Request>, HttpError) {
    let mut reader = Cursor::new(input);
    let mut requests = Vec::new();
    loop {
        match parse_request(&mut reader) {
            Ok(r) => requests.push(r),
            Err(e) => return (requests, e),
        }
    }
}

/// The incremental side: feed the stream sliced at `cuts` (positions are
/// clamped, deduped), pumping after every fragment, then apply the EOF
/// rule. Must equal [`oracle`] exactly.
fn incremental(input: &[u8], cuts: &[usize]) -> (Vec<Request>, HttpError) {
    let mut points: Vec<usize> = cuts.iter().map(|&c| c.min(input.len())).collect();
    points.push(0);
    points.push(input.len());
    points.sort_unstable();
    points.dedup();
    let mut parser = RequestParser::new();
    let mut requests = Vec::new();
    for pair in points.windows(2) {
        parser.feed(&input[pair[0]..pair[1]]);
        loop {
            match parser.try_next() {
                Ok(Some(r)) => requests.push(r),
                Ok(None) => break,
                Err(e) => return (requests, e),
            }
        }
    }
    (requests, parser.eof_error())
}

/// Asserts oracle == incremental for one slicing.
fn check(input: &[u8], cuts: &[usize]) {
    let want = oracle(input);
    let got = incremental(input, cuts);
    assert_eq!(
        want,
        got,
        "divergence on {:?} cut at {:?}",
        String::from_utf8_lossy(&input[..input.len().min(120)]),
        cuts
    );
}

/// Replays one stream split at every byte boundary (two fragments), plus
/// unsplit and fully atomized (every byte its own fragment).
fn check_every_split(input: &[u8]) {
    check(input, &[]);
    for i in 0..=input.len() {
        check(input, &[i]);
    }
    let atomized: Vec<usize> = (0..input.len()).collect();
    check(input, &atomized);
}

/// Streams that must parse: simple, bodied, pipelined, 1.0, odd spacing.
fn valid_corpus() -> Vec<Vec<u8>> {
    vec![
        b"GET / HTTP/1.1\r\nhost: a\r\n\r\n".to_vec(),
        b"GET /healthz HTTP/1.1\r\n\r\n".to_vec(),
        // Bare-LF line endings are accepted.
        b"GET /metrics HTTP/1.1\nhost: b\n\n".to_vec(),
        b"POST /personalize HTTP/1.1\r\nhost: c\r\ncontent-length: 4\r\n\r\nab\r\n".to_vec(),
        // Empty body POST (explicit zero).
        b"POST /p HTTP/1.1\r\ncontent-length: 0\r\n\r\n".to_vec(),
        // Keep-alive flip and case-insensitive header names.
        b"GET /x HTTP/1.1\r\nConnection: Close\r\n\r\n".to_vec(),
        b"GET /y HTTP/1.0\r\n\r\n".to_vec(),
        // Lowercased method, value whitespace, duplicate headers.
        b"get /z HTTP/1.1\r\nA:  1  \r\na: 2\r\n\r\n".to_vec(),
        // Two pipelined requests back-to-back.
        b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 3\r\n\r\nxyz".to_vec(),
        // Three, with a close in the middle (parsers keep going; the
        // server layer is what honors keep_alive).
        b"GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\nconnection: close\r\n\r\nGET /3 HTTP/1.1\r\n\r\n"
            .to_vec(),
        // Non-UTF8 header bytes decode lossily, not fatally.
        b"GET /u HTTP/1.1\r\nx-bin: \xff\xfe\r\n\r\n".to_vec(),
        // Body bytes are opaque: CRLFs and garbage inside are data.
        b"POST /o HTTP/1.1\r\ncontent-length: 8\r\n\r\n\r\n\r\nGET ".to_vec(),
    ]
}

/// Streams that must fail with a typed error (or EOF), identically.
fn malformed_corpus() -> Vec<Vec<u8>> {
    vec![
        Vec::new(),
        b"\r\n".to_vec(),
        b"GET\r\n\r\n".to_vec(),
        b"GET / HTTP/2\r\n\r\n".to_vec(),
        b"GET noslash HTTP/1.1\r\n\r\n".to_vec(),
        b"GET / HTTP/1.1 extra\r\n\r\n".to_vec(),
        // Header without a colon.
        b"GET / HTTP/1.1\r\nbroken header\r\n\r\n".to_vec(),
        // A bad header *after* a good one: error order matters.
        b"GET / HTTP/1.1\r\nok: 1\r\nnope\r\nok2: 2\r\n\r\n".to_vec(),
        // Unparsable and overflowing content lengths.
        b"POST /p HTTP/1.1\r\ncontent-length: banana\r\n\r\n".to_vec(),
        b"POST /p HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n".to_vec(),
        b"POST /p HTTP/1.1\r\nhost: x\r\n\r\nno length".to_vec(),
        // Truncations: mid request line, mid header, mid body.
        b"GET / HT".to_vec(),
        b"GET / HTTP/1.1\r\nhost: tr".to_vec(),
        b"POST /p HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc".to_vec(),
        // A complete request, then a truncated second one.
        b"GET /ok HTTP/1.1\r\n\r\nPOST /t HTTP/1.1\r\ncontent-length: 5\r\n\r\nab".to_vec(),
        // A complete request, then garbage.
        b"GET /ok HTTP/1.1\r\n\r\n\x00\x01\x02\r\n\r\n".to_vec(),
        b"\x16\x03\x01\x02\x00\x01\x00\x01".to_vec(), // a TLS ClientHello prefix
    ]
}

/// Oversized streams probing the head budget, including the mid-line
/// case (no terminator ever arrives). Too big for every-byte splits;
/// exercised with coarse strides and proptest cuts instead.
fn oversized_corpus() -> Vec<Vec<u8>> {
    let mut one_line = b"GET /".to_vec();
    one_line.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 512));
    let mut many_headers = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..900 {
        many_headers.extend_from_slice(format!("x-h{i}: {:064}\r\n", i).as_bytes());
    }
    many_headers.extend_from_slice(b"\r\n");
    // A line that crosses the budget exactly at the boundary region.
    let mut edge = b"GET / HTTP/1.1\r\n".to_vec();
    let pad = MAX_HEAD_BYTES - edge.len() - 4;
    edge.extend_from_slice(format!("x: {}\r\n\r\n", "b".repeat(pad)).as_bytes());
    vec![one_line, many_headers, edge]
}

#[test]
fn corpus_streams_agree_at_every_byte_split() {
    for input in valid_corpus().iter().chain(malformed_corpus().iter()) {
        check_every_split(input);
    }
}

#[test]
fn valid_corpus_actually_parses_and_malformed_actually_fails() {
    // Guards the corpus itself: a typo'd "valid" entry that errors (or a
    // "malformed" one that cleanly EOFs after full requests) would
    // silently weaken the differential.
    for input in valid_corpus() {
        let (requests, terminal) = oracle(&input);
        assert!(
            !requests.is_empty(),
            "{:?}",
            String::from_utf8_lossy(&input)
        );
        assert_eq!(terminal, HttpError::ConnectionClosed);
    }
    for input in malformed_corpus() {
        let (_, terminal) = oracle(&input);
        assert!(
            !matches!(terminal, HttpError::ConnectionClosed)
                || oracle(&input).0.is_empty()
                || input.ends_with(b"ab")
                || input.ends_with(b"abc"),
            "unexpectedly clean: {:?}",
            String::from_utf8_lossy(&input)
        );
    }
}

#[test]
fn oversized_streams_agree_on_coarse_and_boundary_splits() {
    for input in oversized_corpus() {
        check(&input, &[]);
        // Strided two-fragment splits.
        for i in (0..=input.len()).step_by(997) {
            check(&input, &[i]);
        }
        // Fragment boundaries hugging the budget edge.
        for i in MAX_HEAD_BYTES.saturating_sub(3)..(MAX_HEAD_BYTES + 3).min(input.len()) {
            check(&input, &[i]);
        }
        // Many small fragments.
        let cuts: Vec<usize> = (0..input.len()).step_by(1024).collect();
        check(&input, &cuts);
    }
}

#[test]
fn parser_state_reports_track_the_stream() {
    let mut p = RequestParser::new();
    assert!(!p.mid_request());
    assert_eq!(p.eof_error(), HttpError::ConnectionClosed);
    p.feed(b"GET /");
    assert!(p.mid_request());
    p.feed(b" HTTP/1.1\r\n\r\n");
    let r = p.try_next().unwrap().unwrap();
    assert_eq!(r.method, "GET");
    assert!(!p.mid_request(), "between requests");
    p.feed(b"POST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\n");
    assert_eq!(p.try_next().unwrap(), None);
    // Mid-body EOF is the one distinct EOF flavor.
    assert_eq!(
        p.eof_error(),
        HttpError::Io(std::io::ErrorKind::UnexpectedEof)
    );
    p.feed(b"ok");
    let r = p.try_next().unwrap().unwrap();
    assert_eq!(r.body, b"ok");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Multi-splits over the corpora: any stream, sliced anywhere, in up
    /// to 9 fragments.
    #[test]
    fn corpus_streams_agree_under_random_multi_splits(
        which in 0usize..29,
        cuts in proptest::collection::vec(0usize..40_000, 0..8),
    ) {
        let valid = valid_corpus();
        let malformed = malformed_corpus();
        let oversized = oversized_corpus();
        let input = valid
            .get(which)
            .or_else(|| malformed.get(which - valid.len().min(which)))
            .cloned()
            .unwrap_or_else(|| oversized[which % oversized.len()].clone());
        check(&input, &cuts);
    }

    /// Byte soup: arbitrary bytes, arbitrary slicing. Usually an error
    /// stream — the point is that both parsers report the *same* one.
    #[test]
    fn byte_soup_agrees_under_random_multi_splits(
        words in proptest::collection::vec(0u16..256, 0..1200),
        cuts in proptest::collection::vec(0usize..1200, 0..8),
    ) {
        let bytes: Vec<u8> = words.iter().map(|&w| w as u8).collect();
        check(&bytes, &cuts);
    }

    /// Structured soup: fragments of plausible HTTP tokens glued
    /// randomly, which reaches deeper parser states than raw bytes.
    #[test]
    fn token_soup_agrees_under_random_multi_splits(
        picks in proptest::collection::vec(0usize..12, 0..12),
        cuts in proptest::collection::vec(0usize..600, 0..8),
    ) {
        const TOKENS: [&[u8]; 12] = [
            b"GET / HTTP/1.1\r\n",
            b"POST /p HTTP/1.1\r\n",
            b"content-length: 5\r\n",
            b"content-length: x\r\n",
            b"connection: close\r\n",
            b"\r\n",
            b"\n",
            b"hello",
            b": no-name\r\n",
            b"HTTP/1.1\r\n",
            b"\xff\xfe\xfd",
            b"GET /ok HTTP/1.1\r\n\r\n",
        ];
        let mut input = Vec::new();
        for p in picks {
            input.extend_from_slice(TOKENS[p]);
        }
        check(&input, &cuts);
    }
}
