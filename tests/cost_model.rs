//! Cost-model validation across crates (the substance of paper Figure 15):
//! the block-based estimate of Formula 11 must equal the blocks the
//! executor actually reads, for base and personalized queries alike.

use cqp_core::construct::construct;
use cqp_datagen::{
    generate_movie_db, generate_movie_profile, generate_movie_queries, MovieDbConfig,
    ProfileGenConfig, QueryGenConfig,
};
use cqp_engine::{execute, execute_personalized, CardEstimator, CostModel};
use cqp_prefspace::{extract, ExtractConfig};
use cqp_storage::IoMeter;

#[test]
fn estimated_blocks_equal_scanned_blocks_for_base_queries() {
    let db = generate_movie_db(&MovieDbConfig::tiny(3));
    let stats = db.analyze();
    let model = CostModel::new(&stats);
    let queries = generate_movie_queries(db.catalog(), &QueryGenConfig::default());
    for q in &queries {
        let meter = IoMeter::new(1.0);
        execute(&db, q, &meter).unwrap();
        assert_eq!(
            model.query_blocks(q),
            meter.blocks_read(),
            "block estimate diverged for {}",
            cqp_engine::sql::conjunctive_sql(db.catalog(), q)
        );
    }
}

#[test]
fn estimated_blocks_equal_scanned_blocks_for_personalized_queries() {
    let db_cfg = MovieDbConfig::tiny(4);
    let db = generate_movie_db(&db_cfg);
    let stats = db.analyze();
    let model = CostModel::new(&stats);
    let profile = generate_movie_profile(
        db.catalog(),
        &ProfileGenConfig {
            n_directors: db_cfg.directors,
            n_actors: db_cfg.actors,
            ..ProfileGenConfig::tiny(8)
        },
    );
    let queries = generate_movie_queries(db.catalog(), &QueryGenConfig::default());
    for q in queries.iter().take(3) {
        for k in [2usize, 5, 10] {
            let ex = extract(
                q,
                &profile,
                &stats,
                &ExtractConfig {
                    max_k: k,
                    ..Default::default()
                },
            );
            if ex.space.is_empty() {
                continue;
            }
            let all: Vec<usize> = (0..ex.space.k()).collect();
            let pq = construct(q, &ex.space, &all).unwrap();
            let meter = IoMeter::new(1.0);
            execute_personalized(&db, &pq, &meter).unwrap();
            assert_eq!(
                model.personalized_blocks(&pq),
                meter.blocks_read(),
                "personalized block estimate diverged at K={k}"
            );
        }
    }
}

#[test]
fn per_preference_cost_in_space_matches_model() {
    // The cost_blocks stored in the preference space must equal the cost
    // model applied to the preference's sub-query — the search and the
    // constructor must never disagree.
    let db_cfg = MovieDbConfig::tiny(5);
    let db = generate_movie_db(&db_cfg);
    let stats = db.analyze();
    let model = CostModel::new(&stats);
    let profile = generate_movie_profile(
        db.catalog(),
        &ProfileGenConfig {
            n_directors: db_cfg.directors,
            n_actors: db_cfg.actors,
            ..ProfileGenConfig::tiny(9)
        },
    );
    let queries = generate_movie_queries(db.catalog(), &QueryGenConfig::default());
    let q = &queries[0];
    let ex = extract(q, &profile, &stats, &ExtractConfig::default());
    for i in 0..ex.space.k() {
        let sub = q.with_predicates(ex.space.prefs[i].predicates());
        assert_eq!(
            ex.space.cost_blocks(i),
            model.query_blocks(&sub),
            "preference {i}"
        );
    }
}

#[test]
fn size_estimates_track_actual_result_sizes() {
    // Cardinality estimation is approximate, but on the uniform join keys
    // of the generator it should land close for pure join paths, and the
    // monotonicity (Formula 8) must hold exactly.
    let db = generate_movie_db(&MovieDbConfig::tiny(6));
    let stats = db.analyze();
    let est = CardEstimator::new(&stats);
    let queries = generate_movie_queries(
        db.catalog(),
        &QueryGenConfig {
            selection_probability: 0.0,
            count: 1,
            seed: 1,
        },
    );
    let q = &queries[0];
    let meter = IoMeter::default();
    let actual = execute(&db, q, &meter).unwrap().len() as f64;
    let predicted = est.query_rows(q);
    // Projected duplicates make "rows" ambiguous; compare within 2x.
    assert!(
        predicted >= actual * 0.5 && predicted <= actual * 2.0,
        "predicted {predicted}, actual {actual}"
    );
}
