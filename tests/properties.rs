//! Property-based tests of the CQP invariants (proptest).
//!
//! These encode the paper's formal claims as machine-checked properties:
//! Formulas 4/7/8 (parameter monotonicity), Proposition 1 and Tables 4/5
//! (transition structure), Theorems 2/3 (exactness of C-BOUNDARIES and
//! D-MAXDOI), and feasibility/suboptimality of every heuristic — all over
//! randomized synthetic preference spaces.

use cqp_core::algorithms::{branch_bound, exhaustive, general};
use cqp_core::spaces::SpaceView;
use cqp_core::transitions::{horizontal, horizontal2, vertical};
use cqp_core::{solve_p2, Algorithm, ProblemSpec, State};
use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::{PrefParams, PreferenceSpace};
use proptest::prelude::*;

/// Strategy: a preference space of 1..=9 preferences with doi in
/// [0.05, 0.95], cost in [1, 60] blocks, size factor in [0.05, 1.0].
fn arb_space() -> impl Strategy<Value = PreferenceSpace> {
    prop::collection::vec((1u64..=19, 1u64..=60, 1u32..=20), 1..=9).prop_map(|raw| {
        let params: Vec<PrefParams> = raw
            .into_iter()
            .map(|(d, c, f)| PrefParams {
                doi: Doi::new(d as f64 * 0.05),
                cost_blocks: c,
                size_factor: f as f64 * 0.05,
            })
            .collect();
        PreferenceSpace::synthetic(params, 1000.0, 0)
    })
}

/// Strategy: a subset of `0..k` as a state.
fn arb_state(k: usize) -> impl Strategy<Value = State> {
    prop::collection::btree_set(0u16..k as u16, 0..=k)
        .prop_map(|s| State::from_indices(s.into_iter().collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorems 2 & 3 + branch-and-bound exactness: all four exact
    /// algorithms find the same optimal doi as exhaustive enumeration.
    #[test]
    fn exact_algorithms_match_exhaustive(space in arb_space(), cmax in 0u64..400) {
        let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, cmax);
        for algo in [Algorithm::CBoundaries, Algorithm::DMaxDoi, Algorithm::BranchBound] {
            let sol = solve_p2(&space, ConjModel::NoisyOr, cmax, algo);
            prop_assert_eq!(sol.doi, oracle.doi, "{} at cmax={}", algo.name(), cmax);
            prop_assert_eq!(sol.found, oracle.found);
            if sol.found {
                prop_assert!(sol.cost_blocks <= cmax);
            }
        }
    }

    /// Heuristics always return feasible solutions that never beat the
    /// optimum (Figure 14's premise).
    #[test]
    fn heuristics_feasible_and_bounded(space in arb_space(), cmax in 0u64..400) {
        let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, cmax);
        for algo in [
            Algorithm::CMaxBounds,
            Algorithm::DHeurDoi,
            Algorithm::DSingleMaxDoi,
            Algorithm::Annealing,
            Algorithm::Tabu,
            Algorithm::Genetic,
        ] {
            let sol = solve_p2(&space, ConjModel::NoisyOr, cmax, algo);
            if sol.found {
                prop_assert!(sol.cost_blocks <= cmax, "{} infeasible", algo.name());
            }
            prop_assert!(sol.doi <= oracle.doi, "{} above optimum", algo.name());
        }
    }

    /// Formulas 4, 7, 8: along any Horizontal transition (adding a
    /// preference) doi grows, cost grows, size shrinks — in every space.
    #[test]
    fn parameter_monotonicity_along_horizontal(space in arb_space(), seed in any::<u64>()) {
        for view in [
            SpaceView::cost(&space, ConjModel::NoisyOr),
            SpaceView::doi(&space, ConjModel::NoisyOr),
            SpaceView::size(&space, ConjModel::NoisyOr),
        ] {
            let k = view.k();
            let pick = (seed as usize) % (1 << k);
            let s = State::from_indices(
                (0..k as u16).filter(|i| pick & (1 << i) != 0).collect(),
            );
            if let Some(h) = horizontal(&view, &s) {
                prop_assert!(view.state_doi(&h) >= view.state_doi(&s));
                prop_assert!(view.state_cost(&h) >= view.state_cost(&s));
                prop_assert!(view.state_size(&h) <= view.state_size(&s) + 1e-9);
            }
        }
    }

    /// Proposition 1 + the Vertical direction of Tables 4/5: destinations
    /// are valid same-size states with lower primary value.
    #[test]
    fn vertical_moves_down_the_primary_order(space in arb_space(), seed in any::<u64>()) {
        for view in [
            SpaceView::cost(&space, ConjModel::NoisyOr),
            SpaceView::doi(&space, ConjModel::NoisyOr),
        ] {
            let k = view.k();
            let pick = (seed as usize) % (1 << k);
            let s = State::from_indices(
                (0..k as u16).filter(|i| pick & (1 << i) != 0).collect(),
            );
            for n in vertical(&view, &s) {
                prop_assert_eq!(n.len(), s.len());
                prop_assert!(view.primary(&n) <= view.primary(&s) + 1e-9);
                prop_assert!(n.dominated_by(&s));
            }
        }
    }

    /// Horizontal2 enumerates every single-insertion neighbor exactly once,
    /// in decreasing order of the inserted preference's primary parameter.
    #[test]
    fn horizontal2_enumeration_is_complete(space in arb_space(), st in arb_state(9)) {
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        let k = view.k();
        let s = State::from_indices(st.iter().filter(|&i| (i as usize) < k).collect());
        let neighbors: Vec<State> = horizontal2(&view, &s).map(|(_, n)| n).collect();
        prop_assert_eq!(neighbors.len(), k - s.len());
        for n in &neighbors {
            prop_assert_eq!(n.len(), s.len() + 1);
            prop_assert!(n.is_superset_of(&s));
        }
        // No duplicates.
        let mut keys: Vec<cqp_core::state::StateKey> =
            neighbors.iter().map(State::bitkey).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), neighbors.len());
    }

    /// Branch-and-bound is exact for the entire problem family (Table 1),
    /// validated against exhaustive enumeration.
    #[test]
    fn branch_bound_exact_for_all_problems(
        space in arb_space(),
        cmax in 1u64..300,
        dmin_steps in 1u32..19,
        smax_frac in 1u32..100,
    ) {
        let dmin = Doi::new(dmin_steps as f64 * 0.05);
        let smax = 1000.0 * smax_frac as f64 / 100.0;
        let problems = [
            ProblemSpec::p1(1.0, smax),
            ProblemSpec::p2(cmax),
            ProblemSpec::p3(cmax, 1.0, smax),
            ProblemSpec::p4(dmin),
            ProblemSpec::p5(dmin, 1.0, smax),
            ProblemSpec::p6(1.0, smax),
        ];
        for p in &problems {
            let bb = branch_bound::solve(&space, ConjModel::NoisyOr, p);
            let ex = exhaustive::solve(&space, ConjModel::NoisyOr, p);
            prop_assert_eq!(bb.found, ex.found, "{:?}", p.kind());
            prop_assert_eq!(bb.doi, ex.doi, "{:?}", p.kind());
            prop_assert_eq!(bb.cost_blocks, ex.cost_blocks, "{:?}", p.kind());
        }
    }

    /// The Section 6 state-space adaptation: always feasible, never better
    /// than the optimum; exact for Problems 2 and 4.
    #[test]
    fn general_solver_feasible_and_sound(
        space in arb_space(),
        cmax in 1u64..300,
        dmin_steps in 1u32..19,
        smax_frac in 1u32..100,
    ) {
        let dmin = Doi::new(dmin_steps as f64 * 0.05);
        let smax = 1000.0 * smax_frac as f64 / 100.0;
        let problems = [
            ProblemSpec::p1(1.0, smax),
            ProblemSpec::p2(cmax),
            ProblemSpec::p3(cmax, 1.0, smax),
            ProblemSpec::p4(dmin),
            ProblemSpec::p5(dmin, 1.0, smax),
            ProblemSpec::p6(1.0, smax),
        ];
        for p in &problems {
            let sol = general::solve(&space, ConjModel::NoisyOr, p);
            let ex = exhaustive::solve(&space, ConjModel::NoisyOr, p);
            if sol.found {
                prop_assert!(p.feasible(&sol.params()), "{:?} infeasible", p.kind());
            }
            match p.objective {
                cqp_core::Objective::MaxDoi => prop_assert!(sol.doi <= ex.doi),
                cqp_core::Objective::MinCost => {
                    if sol.found && ex.found {
                        prop_assert!(sol.cost_blocks >= ex.cost_blocks);
                    }
                }
            }
            // Exactness where the refinement argument is complete.
            match p.kind() {
                Some(cqp_core::ProblemKind::P2) => prop_assert_eq!(sol.doi, ex.doi),
                Some(cqp_core::ProblemKind::P4) => {
                    prop_assert_eq!(sol.found, ex.found, "P4 found");
                    if sol.found {
                        prop_assert_eq!(sol.cost_blocks, ex.cost_blocks, "P4 cost");
                    }
                }
                _ => {}
            }
        }
    }

    /// The refinement of C_FINDMAXDOI never raises cost above the boundary
    /// it refines (the suffix-transversal safety property).
    #[test]
    fn refinement_preserves_cost_bound(space in arb_space(), st in arb_state(9)) {
        let view = SpaceView::cost(&space, ConjModel::NoisyOr);
        let k = view.k();
        let s = State::from_indices(st.iter().filter(|&i| (i as usize) < k).collect());
        if s.is_empty() {
            return Ok(());
        }
        let refined = cqp_core::algorithms::find_max_doi::refine_max_doi(&view, &s);
        let refined_cost: u64 =
            refined.iter().map(|&p| view.eval().cost_of([p])).sum();
        prop_assert!(refined_cost <= view.state_cost(&s));
        prop_assert_eq!(refined.len(), s.len());
    }

    /// doi ordering of the preference space is the identity permutation and
    /// all three vectors stay consistent under random inputs.
    #[test]
    fn space_invariants_hold(space in arb_space()) {
        prop_assert!(space.check_invariants().is_ok());
    }
}

/// Strategy: selection dois drawn from a coarse grid so ties are common —
/// the tie-breaking rule is exactly what the prefix property stresses.
fn arb_selection_dois() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1u64..=10, 1..=12)
        .prop_map(|raw| raw.into_iter().map(|d| d as f64 * 0.1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Profile::top_k(k)` is a prefix of `top_k(k + 1)` at every depth —
    /// the serving layer's personalization-depth knob never reorders
    /// preferences as the depth grows, it only extends them.
    #[test]
    fn top_k_is_a_prefix_of_top_k_plus_one(dois in arb_selection_dois()) {
        let mut catalog = cqp_storage::Catalog::new();
        catalog
            .add_relation(cqp_storage::RelationSchema::new(
                "GENRE",
                vec![
                    ("mid", cqp_storage::DataType::Int),
                    ("genre", cqp_storage::DataType::Str),
                ],
            ))
            .unwrap();
        let mut profile = cqp_prefs::Profile::new("prop");
        for (i, d) in dois.iter().enumerate() {
            profile
                .add_selection(&catalog, "GENRE", "genre", format!("g{i}"), Doi::new(*d))
                .unwrap();
        }
        let n = dois.len();
        for k in 0..=n {
            let shorter: Vec<usize> =
                profile.top_k(k).into_iter().map(|(id, _)| id).collect();
            let longer: Vec<usize> =
                profile.top_k(k + 1).into_iter().map(|(id, _)| id).collect();
            prop_assert!(shorter.len() == k.min(n));
            prop_assert_eq!(&longer[..shorter.len()], &shorter[..]);
            // Ranking is by doi descending with ties broken toward the
            // earlier insertion id.
            for w in profile.top_k(k).windows(2) {
                let (ia, a) = (w[0].0, w[0].1);
                let (ib, b) = (w[1].0, w[1].1);
                prop_assert!(
                    a.doi > b.doi || (a.doi == b.doi && ia < ib),
                    "rank order violated at ids {} and {}", ia, ib
                );
            }
        }
    }
}
