//! The paper's worked examples, reproduced end to end across crates:
//! Section 3 (Figure 1 profile), Section 4.2 (query rewriting), Table 2
//! (rank vectors), Figures 4/6/8 (state space and traces).

use cqp_core::algorithms::{c_boundaries, c_maxbounds, exhaustive};
use cqp_core::spaces::SpaceView;
use cqp_core::transitions::{horizontal, vertical};
use cqp_core::{Instrument, State};
use cqp_engine::{execute_personalized, PersonalizedQuery, Predicate, QueryBuilder};
use cqp_prefs::{ConjModel, Doi, PathCompose, Profile};
use cqp_prefspace::{PrefParams, PreferenceSpace};
use cqp_storage::{DataType, Database, IoMeter, RelationSchema, Value};

/// The Figure 6/8 example space: costs 120, 80, 60, 40, 30.
fn fig6_space() -> PreferenceSpace {
    let costs = [120u64, 80, 60, 40, 30];
    let dois = [0.9, 0.8, 0.7, 0.6, 0.5];
    PreferenceSpace::synthetic(
        (0..5)
            .map(|i| PrefParams {
                doi: Doi::new(dois[i]),
                cost_blocks: costs[i],
                size_factor: 0.5,
            })
            .collect(),
        1000.0,
        0,
    )
}

fn st(v: &[u16]) -> State {
    State::from_indices(v.to_vec())
}

#[test]
fn section3_implicit_preference_doi() {
    // p3 ∧ p4 compose to doi 0.8 under multiplication (Formula 9).
    let composed = PathCompose::Product.compose(&[Doi::new(1.0), Doi::new(0.8)]);
    assert!((composed.value() - 0.8).abs() < 1e-12);
    // Formula 10: the conjunction of the two implicit preferences
    // (0.8 and 0.9×0.5=0.45) has doi 1 − 0.2×0.55 = 0.89.
    let conj = ConjModel::NoisyOr.conj(&[Doi::new(0.8), Doi::new(0.45)]);
    assert!((conj.value() - 0.89).abs() < 1e-12);
}

#[test]
fn section42_rewriting_on_real_data() {
    // Build the Section 4.2 example concretely and check the union/having
    // rewriting returns exactly the movies satisfying BOTH preferences.
    let mut db = Database::with_block_capacity(4);
    db.create_relation(RelationSchema::new(
        "MOVIE",
        vec![
            ("mid", DataType::Int),
            ("title", DataType::Str),
            ("did", DataType::Int),
        ],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new(
        "DIRECTOR",
        vec![("did", DataType::Int), ("name", DataType::Str)],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new(
        "GENRE",
        vec![("mid", DataType::Int), ("genre", DataType::Str)],
    ))
    .unwrap();
    // Three W. Allen movies, one of which is a musical; one musical by
    // another director.
    for (mid, title, did) in [
        (1i64, "Everyone Says I Love You", 1i64),
        (2, "Manhattan", 1),
        (3, "Annie Hall", 1),
        (4, "Chicago", 2),
    ] {
        db.insert_into(
            "MOVIE",
            vec![Value::Int(mid), Value::str(title), Value::Int(did)],
        )
        .unwrap();
    }
    db.insert_into("DIRECTOR", vec![Value::Int(1), Value::str("W. Allen")])
        .unwrap();
    db.insert_into("DIRECTOR", vec![Value::Int(2), Value::str("R. Marshall")])
        .unwrap();
    for (mid, g) in [
        (1i64, "musical"),
        (2, "comedy"),
        (3, "comedy"),
        (4, "musical"),
    ] {
        db.insert_into("GENRE", vec![Value::Int(mid), Value::str(g)])
            .unwrap();
    }

    let c = db.catalog();
    let base = QueryBuilder::from(c, "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();
    let pq = PersonalizedQuery::compose(
        base,
        vec![
            vec![
                Predicate::join(
                    c.resolve("MOVIE", "did").unwrap(),
                    c.resolve("DIRECTOR", "did").unwrap(),
                ),
                Predicate::eq(c.resolve("DIRECTOR", "name").unwrap(), "W. Allen"),
            ],
            vec![
                Predicate::join(
                    c.resolve("MOVIE", "mid").unwrap(),
                    c.resolve("GENRE", "mid").unwrap(),
                ),
                Predicate::eq(c.resolve("GENRE", "genre").unwrap(), "musical"),
            ],
        ],
    );

    // The SQL mirrors the paper's final query.
    let sql = cqp_engine::sql::personalized_sql(c, &pq);
    assert!(sql.contains("union all"));
    assert!(sql.ends_with("having count(*) = 2"));

    let out = execute_personalized(&db, &pq, &IoMeter::default()).unwrap();
    assert_eq!(out.rows, vec![vec![Value::str("Everyone Says I Love You")]]);
}

#[test]
fn table2_rank_vectors() {
    // Table 2: p1(doi .5, cost 10, size 3), p2(.8, 5, 2), p3(.7, 12, 10).
    // Sizes are expressed as factors of a base of 10 rows.
    let space = PreferenceSpace::synthetic(
        vec![
            PrefParams {
                doi: Doi::new(0.5),
                cost_blocks: 10,
                size_factor: 0.3,
            },
            PrefParams {
                doi: Doi::new(0.8),
                cost_blocks: 5,
                size_factor: 0.2,
            },
            PrefParams {
                doi: Doi::new(0.7),
                cost_blocks: 12,
                size_factor: 1.0,
            },
        ],
        10.0,
        0,
    );
    // Paper (1-based over p-numbers): D = {2,3,1}, C = {3,1,2}, S = {2,1,3}.
    // Our P is stored in D-order (p2, p3, p1), so C and S over P-indices:
    assert_eq!(space.c, vec![1, 2, 0]); // p3, p1, p2 by decreasing cost
    assert_eq!(space.s, vec![0, 2, 1]); // p2, p1, p3 by increasing size
}

#[test]
fn figure4_transition_structure() {
    // Figure 4 (K=4): Horizontal(c1c3) = c1c3c4; Vertical(c1c3) = {c1c4, c2c3}.
    let space = fig6_space();
    let view = SpaceView::cost(&space, ConjModel::NoisyOr);
    assert_eq!(horizontal(&view, &st(&[0, 2])), Some(st(&[0, 2, 3])));
    assert_eq!(
        vertical(&view, &st(&[0, 2])),
        vec![st(&[0, 3]), st(&[1, 2])]
    );
}

#[test]
fn figure6_findboundary_trace() {
    let space = fig6_space();
    let view = SpaceView::cost(&space, ConjModel::NoisyOr);
    let mut inst = Instrument::new();
    let bs = c_boundaries::find_boundary(&view, 185, &mut inst);
    // See the module tests for the full discussion: our discipline finds
    // c2c3c4 before c2c4c5, so the "wrongly identified" boundary the paper
    // reports never materializes.
    assert_eq!(bs, vec![st(&[0]), st(&[0, 2]), st(&[1, 2, 3])]);
    // Each boundary is feasible and its Vertical predecessors are not
    // (Proposition 2: boundaries' predecessors violate the constraint).
    for b in &bs {
        assert!(view.state_cost(b) <= 185);
    }
}

#[test]
fn figure8_maxbounds_trace() {
    let space = fig6_space();
    let view = SpaceView::cost(&space, ConjModel::NoisyOr);
    let mut inst = Instrument::new();
    let mb = c_maxbounds::find_all_max_bounds(&view, 185, &mut inst);
    // Paper: {c1c3, c2c3c4} — matched exactly.
    assert_eq!(mb, vec![st(&[0, 2]), st(&[1, 2, 3])]);
    // None is a subset of or reachable from another.
    for a in &mb {
        for b in &mb {
            if a != b {
                assert!(!a.is_superset_of(b) || a == b);
                assert!(!a.dominated_by(b));
            }
        }
    }
}

#[test]
fn figure6_8_solutions_agree_with_oracle() {
    let space = fig6_space();
    for cmax in [120u64, 150, 185, 220, 330] {
        let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, cmax);
        let cb = c_boundaries::solve(&space, ConjModel::NoisyOr, cmax);
        let mb = c_maxbounds::solve(&space, ConjModel::NoisyOr, cmax);
        assert_eq!(cb.doi, oracle.doi, "C-BOUNDARIES at cmax={cmax}");
        assert!(mb.doi <= oracle.doi, "C-MAXBOUNDS at cmax={cmax}");
        // The heuristic is exact at the paper's own budget (and most
        // others); at cmax=150 its greedy keeps the expensive c1 and gives
        // up 0.01 of doi — the kind of minuscule gap Figure 14 quantifies.
        if cmax != 150 {
            assert_eq!(mb.doi, oracle.doi, "C-MAXBOUNDS quality at cmax={cmax}");
        } else {
            assert!(oracle.doi.value() - mb.doi.value() < 0.011);
        }
    }
}

#[test]
fn figure1_profile_extraction_matches_paper() {
    // From the Figure 1 profile and a MOVIE query, exactly the two
    // implicit selection preferences arise, in decreasing doi order.
    let mut db = Database::with_block_capacity(4);
    db.create_relation(RelationSchema::new(
        "MOVIE",
        vec![
            ("mid", DataType::Int),
            ("title", DataType::Str),
            ("year", DataType::Int),
            ("duration", DataType::Int),
            ("did", DataType::Int),
        ],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new(
        "DIRECTOR",
        vec![("did", DataType::Int), ("name", DataType::Str)],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new(
        "GENRE",
        vec![("mid", DataType::Int), ("genre", DataType::Str)],
    ))
    .unwrap();
    for i in 0..8i64 {
        db.insert_into(
            "MOVIE",
            vec![
                Value::Int(i),
                Value::str(format!("m{i}")),
                Value::Int(1990),
                Value::Int(100),
                Value::Int(i % 2),
            ],
        )
        .unwrap();
        db.insert_into("GENRE", vec![Value::Int(i), Value::str("musical")])
            .unwrap();
    }
    db.insert_into("DIRECTOR", vec![Value::Int(0), Value::str("W. Allen")])
        .unwrap();
    db.insert_into("DIRECTOR", vec![Value::Int(1), Value::str("F. Fellini")])
        .unwrap();

    let stats = db.analyze();
    let profile = Profile::paper_figure1(db.catalog()).unwrap();
    let query = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();
    let ex = cqp_prefspace::extract(
        &query,
        &profile,
        &stats,
        &cqp_prefspace::ExtractConfig::default(),
    );
    assert_eq!(ex.space.k(), 2);
    assert!((ex.space.doi(0).value() - 0.8).abs() < 1e-12); // W. Allen path
    assert!((ex.space.doi(1).value() - 0.45).abs() < 1e-12); // musical path
}
