//! End-to-end fault injection: seeded [`FaultPlan`]s drive injected I/O
//! errors and latency spikes through a full batch pipeline (preference
//! space → search → construction → metered execution) and the suite
//! asserts the resilience contract — zero panics, exact retry counters,
//! and bit-identical results once retries succeed — at one worker and at
//! four.

use cqp_core::prelude::*;
use cqp_engine::QueryBuilder;
use cqp_prefs::Profile;
use cqp_storage::{DataType, Database, FaultMode, FaultPlan, RelationSchema, Value};
use std::sync::Arc;

fn movie_db() -> Database {
    let mut db = Database::with_block_capacity(4);
    db.create_relation(RelationSchema::new(
        "MOVIE",
        vec![
            ("mid", DataType::Int),
            ("title", DataType::Str),
            ("year", DataType::Int),
            ("duration", DataType::Int),
            ("did", DataType::Int),
        ],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new(
        "DIRECTOR",
        vec![("did", DataType::Int), ("name", DataType::Str)],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new(
        "GENRE",
        vec![("mid", DataType::Int), ("genre", DataType::Str)],
    ))
    .unwrap();
    for i in 0..60i64 {
        db.insert_into(
            "MOVIE",
            vec![
                Value::Int(i),
                Value::str(format!("m{i}")),
                Value::Int(1980 + i % 25),
                Value::Int(90 + (i % 5) * 10),
                Value::Int(i % 4),
            ],
        )
        .unwrap();
        db.insert_into(
            "GENRE",
            vec![
                Value::Int(i),
                Value::str(if i % 2 == 0 { "musical" } else { "drama" }),
            ],
        )
        .unwrap();
    }
    for d in 0..4i64 {
        let name = if d == 0 {
            "W. Allen".to_owned()
        } else {
            format!("dir{d}")
        };
        db.insert_into("DIRECTOR", vec![Value::Int(d), Value::str(name)])
            .unwrap();
    }
    db
}

/// 64 requests mixing the paper's five algorithms over two cost widths.
fn batch_requests(db: &Database, n: usize) -> Vec<BatchRequest> {
    let base = QueryBuilder::from(db.catalog(), "MOVIE")
        .unwrap()
        .select("MOVIE", "title")
        .unwrap()
        .build();
    let profile = Profile::paper_figure1(db.catalog()).unwrap();
    (0..n)
        .map(|i| BatchRequest {
            query: base.clone(),
            profile: profile.clone(),
            problem: ProblemSpec::p2(if i % 2 == 0 { 100 } else { 40 }),
            config: SolverConfig {
                algorithm: Algorithm::PAPER[i % Algorithm::PAPER.len()],
                ..Default::default()
            },
        })
        .collect()
}

/// The fault-free baseline every injected run is compared against.
fn clean_run(db: &Arc<Database>, n: usize) -> Vec<BatchItemResultLite> {
    let driver = BatchDriver::new(Arc::clone(db), 1).with_execution(1.0);
    let (results, stats) = driver.run(batch_requests(db, n));
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.retries, 0);
    results
        .into_iter()
        .map(|r| BatchItemResultLite::from(&r.unwrap()))
        .collect()
}

/// The deterministic slice of a result: everything except `latency_us` and
/// `exec_retries` (retry attribution moves with thread interleaving even
/// when the total is capped).
#[derive(Debug, PartialEq)]
struct BatchItemResultLite {
    prefs: Vec<usize>,
    doi: cqp_prefs::Doi,
    cost_blocks: u64,
    sql: String,
    exec_rows: Option<usize>,
}

impl From<&cqp_core::batch::BatchItemResult> for BatchItemResultLite {
    fn from(r: &cqp_core::batch::BatchItemResult) -> Self {
        BatchItemResultLite {
            prefs: r.solution.prefs.clone(),
            doi: r.solution.doi,
            cost_blocks: r.solution.cost_blocks,
            sql: r.sql.clone(),
            exec_rows: r.exec_rows,
        }
    }
}

/// Acceptance gate: a seeded 64-request batch under an error-injecting
/// plan completes with zero panics, the capped number of retries, and
/// results bit-identical to the fault-free run — at 1 worker and at 4.
#[test]
fn capped_every_nth_plan_retries_exactly_and_matches_clean_run() {
    let db = Arc::new(movie_db());
    let baseline = clean_run(&db, 64);
    for threads in [1usize, 4] {
        let plan =
            Arc::new(FaultPlan::new(0xC0FFEE, FaultMode::EveryNth { n: 7 }).with_max_faults(3));
        let driver = BatchDriver::new(Arc::clone(&db), threads)
            .with_execution(1.0)
            .with_fault_plan(Arc::clone(&plan))
            .with_retry_policy(RetryPolicy::retries(4));
        let (results, stats) = driver.run(batch_requests(&db, 64));

        assert_eq!(stats.panics_caught, 0, "threads={threads}");
        assert_eq!(stats.errors, 0, "threads={threads}");
        // The cap makes the injected-error total exact under any
        // interleaving; each injection costs exactly one retry.
        assert_eq!(plan.faults_injected(), 3, "threads={threads}");
        assert_eq!(stats.retries, 3, "threads={threads}");
        assert!(plan.reads_seen() > 0);

        let lite: Vec<BatchItemResultLite> = results
            .iter()
            .map(|r| BatchItemResultLite::from(r.as_ref().unwrap()))
            .collect();
        assert_eq!(lite, baseline, "threads={threads}");
    }
}

/// First-access failures land on the first request at one worker: its
/// `exec_retries` carries the whole fault budget.
#[test]
fn first_access_failures_are_attributed_to_the_first_request() {
    let db = Arc::new(movie_db());
    let plan = Arc::new(FaultPlan::new(7, FaultMode::FirstK { k: 2 }));
    let driver = BatchDriver::new(Arc::clone(&db), 1)
        .with_execution(1.0)
        .with_fault_plan(Arc::clone(&plan))
        .with_retry_policy(RetryPolicy::retries(3));
    let (results, stats) = driver.run(batch_requests(&db, 16));
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.retries, 2);
    assert_eq!(plan.faults_injected(), 2);
    let first = results[0].as_ref().unwrap();
    assert_eq!(first.exec_retries, 2);
    assert!(results[1..]
        .iter()
        .all(|r| r.as_ref().unwrap().exec_retries == 0));
}

/// Latency spikes tax reads but never error: zero retries, nonzero spike
/// counter, results equal to the fault-free run.
#[test]
fn latency_spikes_slow_but_never_fail() {
    let db = Arc::new(movie_db());
    let baseline = clean_run(&db, 32);
    for threads in [1usize, 4] {
        let plan = Arc::new(FaultPlan::new(
            3,
            FaultMode::LatencySpike {
                every: 5,
                spike_ms: 25.0,
            },
        ));
        let driver = BatchDriver::new(Arc::clone(&db), threads)
            .with_execution(1.0)
            .with_fault_plan(Arc::clone(&plan));
        let (results, stats) = driver.run(batch_requests(&db, 32));
        assert_eq!(stats.errors, 0, "threads={threads}");
        assert_eq!(stats.retries, 0, "threads={threads}");
        assert_eq!(plan.faults_injected(), 0);
        assert!(plan.spikes_applied() > 0, "threads={threads}");
        let lite: Vec<BatchItemResultLite> = results
            .iter()
            .map(|r| BatchItemResultLite::from(r.as_ref().unwrap()))
            .collect();
        assert_eq!(lite, baseline, "threads={threads}");
    }
}

/// Without a retry budget, injected faults surface as typed transient
/// errors on the affected requests — never as panics — and the rest of the
/// batch is still served.
#[test]
fn unretried_faults_fail_only_their_own_request() {
    let db = Arc::new(movie_db());
    let plan = Arc::new(FaultPlan::new(11, FaultMode::FirstK { k: 2 }));
    let driver = BatchDriver::new(Arc::clone(&db), 1)
        .with_execution(1.0)
        .with_fault_plan(Arc::clone(&plan));
    let (results, stats) = driver.run(batch_requests(&db, 16));
    assert_eq!(stats.panics_caught, 0);
    assert_eq!(stats.retries, 0);
    assert!(stats.errors >= 1);
    let first_err = results[0].as_ref().unwrap_err();
    assert!(
        first_err.is_transient(),
        "expected injected-I/O error: {first_err}"
    );
    // Everything the faults did not reach was served normally.
    assert!(results.iter().filter(|r| r.is_ok()).count() >= 14);
}

/// A deterministic seeded `Random` plan replays identically: two runs with
/// the same seed inject the same faults and produce the same outcome.
#[test]
fn random_plans_replay_identically_for_a_seed() {
    let db = Arc::new(movie_db());
    let run = |seed: u64| {
        let plan = Arc::new(FaultPlan::new(seed, FaultMode::Random { rate: 0.02 }));
        let driver = BatchDriver::new(Arc::clone(&db), 1)
            .with_execution(1.0)
            .with_fault_plan(Arc::clone(&plan))
            .with_retry_policy(RetryPolicy::retries(8));
        let (results, stats) = driver.run(batch_requests(&db, 32));
        let lite: Vec<BatchItemResultLite> = results
            .iter()
            .map(|r| BatchItemResultLite::from(r.as_ref().unwrap()))
            .collect();
        (lite, stats.retries, plan.faults_injected())
    };
    let (a, a_retries, a_faults) = run(0xFEED);
    let (b, b_retries, b_faults) = run(0xFEED);
    assert_eq!(a, b);
    assert_eq!(a_retries, b_retries);
    assert_eq!(a_faults, b_faults);
    // And the retried run still matches the clean baseline.
    assert_eq!(a, clean_run(&db, 32));
}

/// The obs pipeline sees the resilience counters: `batch.retries` matches
/// the driver's tally, and 0-ms-deadline requests surface in
/// `batch.degraded`.
#[test]
fn obs_counters_track_retries_and_degradation() {
    let db = Arc::new(movie_db());
    let obs = cqp_obs::Obs::new();
    let plan = Arc::new(FaultPlan::new(5, FaultMode::EveryNth { n: 9 }).with_max_faults(2));
    let driver = BatchDriver::new(Arc::clone(&db), 2)
        .with_execution(1.0)
        .with_fault_plan(Arc::clone(&plan))
        .with_retry_policy(RetryPolicy::retries(4));

    // Half the batch runs under an impossible deadline: those requests
    // must degrade (cheaply — no execution faults hit them since a
    // degraded empty solution still executes) rather than hang or panic.
    let mut requests = batch_requests(&db, 32);
    for req in requests.iter_mut().skip(16) {
        req.config.budget = Budget::with_deadline_ms(0);
    }
    let (results, stats) = driver.run_recorded(requests, &obs);

    assert_eq!(stats.panics_caught, 0);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.retries, 2);
    assert!(stats.degraded >= 16, "all zero-deadline requests degrade");

    let reg = obs.registry();
    assert_eq!(reg.counter("batch.retries"), stats.retries);
    assert_eq!(reg.counter("batch.degraded"), stats.degraded);
    assert_eq!(reg.counter("batch.errors"), 0);
    assert!(reg.counter("storage.faults_injected") >= 1);

    for (i, r) in results.iter().enumerate() {
        let item = r.as_ref().unwrap();
        if i >= 16 {
            assert!(item.solution.degraded.is_some(), "request {i}");
        }
    }
}
