//! Differential testing across the CQP solver surfaces (proptest).
//!
//! Random instances of up to 12 preferences are pushed through every entry
//! point the resilience work added — budgeted dispatchers, partitioned
//! searches under a shared token, the general state-space adaptation — and
//! cross-checked against the legacy unbudgeted paths and the exhaustive
//! oracle. Any divergence means the cancellation plumbing changed results
//! on the *uncancelled* path, which it must never do.

use cqp_core::algorithms::{branch_bound, exhaustive, general, solve_p2_budgeted};
use cqp_core::budget::CancelToken;
use cqp_core::{solve_p2, Algorithm, ProblemSpec};
use cqp_obs::NoopRecorder;
use cqp_par::ThreadPool;
use cqp_prefs::{ConjModel, Doi};
use cqp_prefspace::{PrefParams, PreferenceSpace};
use proptest::prelude::*;

/// Strategy: a preference space of 1..=12 preferences — wide enough that
/// the heuristics' round structure and the partitioned searches' split
/// points are all exercised, small enough that exhaustive enumeration
/// (2^12 states) stays instant.
fn arb_space() -> impl Strategy<Value = PreferenceSpace> {
    prop::collection::vec((1u64..=19, 1u64..=80, 1u32..=20), 1..=12).prop_map(|raw| {
        let params: Vec<PrefParams> = raw
            .into_iter()
            .map(|(d, c, f)| PrefParams {
                doi: Doi::new(d as f64 * 0.05),
                cost_blocks: c,
                size_factor: f as f64 * 0.05,
            })
            .collect();
        PreferenceSpace::synthetic(params, 1000.0, 0)
    })
}

/// The six problem variants of Table 1 from one tuple of bounds.
fn table1(cmax: u64, dmin: Doi, smax: f64) -> [ProblemSpec; 6] {
    [
        ProblemSpec::p1(1.0, smax),
        ProblemSpec::p2(cmax),
        ProblemSpec::p3(cmax, 1.0, smax),
        ProblemSpec::p4(dmin),
        ProblemSpec::p5(dmin, 1.0, smax),
        ProblemSpec::p6(1.0, smax),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The budgeted dispatcher with an unlimited token is bit-identical to
    /// the legacy path for every algorithm: same prefs, doi, cost, found.
    /// This is the core refactor-safety property of the cancellation work.
    #[test]
    fn budgeted_dispatch_matches_legacy_for_every_algorithm(
        space in arb_space(),
        cmax in 0u64..500,
    ) {
        for algo in [
            Algorithm::DMaxDoi,
            Algorithm::DSingleMaxDoi,
            Algorithm::CBoundaries,
            Algorithm::CMaxBounds,
            Algorithm::DHeurDoi,
            Algorithm::Exhaustive,
            Algorithm::BranchBound,
        ] {
            let legacy = solve_p2(&space, ConjModel::NoisyOr, cmax, algo);
            let budgeted = solve_p2_budgeted(
                &space,
                ConjModel::NoisyOr,
                cmax,
                algo,
                &NoopRecorder,
                None,
                &CancelToken::unlimited(),
            );
            prop_assert_eq!(&budgeted.prefs, &legacy.prefs, "{} prefs", algo.name());
            prop_assert_eq!(budgeted.doi, legacy.doi, "{} doi", algo.name());
            prop_assert_eq!(budgeted.cost_blocks, legacy.cost_blocks, "{} cost", algo.name());
            prop_assert_eq!(budgeted.found, legacy.found, "{} found", algo.name());
            prop_assert!(budgeted.degraded.is_none(), "{} spuriously degraded", algo.name());
        }
    }

    /// Exactness differential on P2: D-MAXDOI, C-BOUNDARIES, and
    /// branch-and-bound all agree with exhaustive enumeration on the
    /// optimal doi (Theorems 2 and 3), through the budgeted entry points.
    #[test]
    fn exact_trio_matches_exhaustive_on_p2(space in arb_space(), cmax in 0u64..500) {
        let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, cmax);
        for algo in [Algorithm::DMaxDoi, Algorithm::CBoundaries, Algorithm::BranchBound] {
            let sol = solve_p2_budgeted(
                &space,
                ConjModel::NoisyOr,
                cmax,
                algo,
                &NoopRecorder,
                None,
                &CancelToken::unlimited(),
            );
            prop_assert_eq!(sol.doi, oracle.doi, "{} at cmax={}", algo.name(), cmax);
            prop_assert_eq!(sol.found, oracle.found, "{}", algo.name());
            if sol.found {
                prop_assert!(sol.cost_blocks <= cmax, "{}", algo.name());
            }
        }
    }

    /// Heuristic differential on P2: C-MAXBOUNDS, D-SINGLEMAXDOI, and
    /// D-HEURDOI are always feasible and never beat the oracle.
    #[test]
    fn heuristics_feasible_and_bounded_on_p2(space in arb_space(), cmax in 0u64..500) {
        let oracle = exhaustive::solve_p2(&space, ConjModel::NoisyOr, cmax);
        for algo in [Algorithm::CMaxBounds, Algorithm::DSingleMaxDoi, Algorithm::DHeurDoi] {
            let sol = solve_p2_budgeted(
                &space,
                ConjModel::NoisyOr,
                cmax,
                algo,
                &NoopRecorder,
                None,
                &CancelToken::unlimited(),
            );
            if sol.found {
                prop_assert!(sol.cost_blocks <= cmax, "{} infeasible", algo.name());
            }
            prop_assert!(sol.doi <= oracle.doi, "{} above optimum", algo.name());
        }
    }

    /// Branch-and-bound ≡ exhaustive across all six Table-1 problem
    /// variants, with both sides going through their bounded entry points.
    #[test]
    fn branch_bound_matches_exhaustive_on_all_variants(
        space in arb_space(),
        cmax in 1u64..400,
        dmin_steps in 1u32..19,
        smax_frac in 1u32..100,
    ) {
        let dmin = Doi::new(dmin_steps as f64 * 0.05);
        let smax = 1000.0 * smax_frac as f64 / 100.0;
        for p in &table1(cmax, dmin, smax) {
            let bb = branch_bound::solve_bounded(
                &space, ConjModel::NoisyOr, p, &CancelToken::unlimited(),
            );
            let ex = exhaustive::solve_bounded(
                &space, ConjModel::NoisyOr, p, &CancelToken::unlimited(),
            );
            prop_assert_eq!(bb.found, ex.found, "{:?} found", p.kind());
            prop_assert_eq!(bb.doi, ex.doi, "{:?} doi", p.kind());
            prop_assert_eq!(bb.cost_blocks, ex.cost_blocks, "{:?} cost", p.kind());
            prop_assert!(bb.degraded.is_none());
            prop_assert!(ex.degraded.is_none());
        }
    }

    /// Partitioned differential: the multi-threaded exact searches sharing
    /// one (unlimited) token return the same optimum as their sequential
    /// counterparts on every problem variant.
    #[test]
    fn partitioned_searches_match_sequential(
        space in arb_space(),
        cmax in 1u64..400,
        dmin_steps in 1u32..19,
    ) {
        let pool = ThreadPool::new(4);
        let dmin = Doi::new(dmin_steps as f64 * 0.05);
        for p in &table1(cmax, dmin, 1000.0) {
            let seq_ex = exhaustive::solve(&space, ConjModel::NoisyOr, p);
            let par_ex = exhaustive::solve_partitioned_bounded(
                &space, ConjModel::NoisyOr, p, &pool, &CancelToken::unlimited(),
            );
            prop_assert_eq!(par_ex.doi, seq_ex.doi, "{:?} exhaustive doi", p.kind());
            prop_assert_eq!(par_ex.found, seq_ex.found, "{:?} exhaustive found", p.kind());

            let seq_bb = branch_bound::solve(&space, ConjModel::NoisyOr, p);
            let par_bb = branch_bound::solve_partitioned_bounded(
                &space, ConjModel::NoisyOr, p, &pool, &CancelToken::unlimited(),
            );
            prop_assert_eq!(par_bb.doi, seq_bb.doi, "{:?} bb doi", p.kind());
            prop_assert_eq!(par_bb.found, seq_bb.found, "{:?} bb found", p.kind());
        }
    }

    /// The general state-space adaptation through its bounded entry point:
    /// feasible whenever it reports `found`, sound against the oracle, and
    /// never spuriously degraded under an unlimited token.
    #[test]
    fn general_bounded_feasible_and_sound(
        space in arb_space(),
        cmax in 1u64..400,
        dmin_steps in 1u32..19,
        smax_frac in 1u32..100,
    ) {
        let dmin = Doi::new(dmin_steps as f64 * 0.05);
        let smax = 1000.0 * smax_frac as f64 / 100.0;
        for p in &table1(cmax, dmin, smax) {
            let sol = general::solve_bounded(
                &space, ConjModel::NoisyOr, p, &CancelToken::unlimited(),
            );
            let ex = exhaustive::solve(&space, ConjModel::NoisyOr, p);
            prop_assert!(sol.degraded.is_none(), "{:?} spuriously degraded", p.kind());
            if sol.found {
                prop_assert!(p.feasible(&sol.params()), "{:?} infeasible", p.kind());
            }
            match p.objective {
                cqp_core::Objective::MaxDoi => prop_assert!(sol.doi <= ex.doi, "{:?}", p.kind()),
                cqp_core::Objective::MinCost => {
                    if sol.found && ex.found {
                        prop_assert!(sol.cost_blocks >= ex.cost_blocks, "{:?}", p.kind());
                    }
                }
            }
        }
    }
}
