//! A richer movie-recommendation session exercising the whole problem
//! family: the same user asks the same question under four different
//! service-level regimes (Problems 1, 2, 4 and the unconstrained view).
//!
//! ```text
//! cargo run --release -p cqp-bench --example movie_night
//! ```

use cqp_core::{Algorithm, CqpSystem, ProblemSpec, SolverConfig};
use cqp_datagen::{generate_movie_db, generate_movie_profile, MovieDbConfig, ProfileGenConfig};
use cqp_engine::QueryBuilder;
use cqp_prefs::Doi;

fn main() {
    let db_cfg = MovieDbConfig::tiny(7);
    let db = generate_movie_db(&db_cfg);
    let system = CqpSystem::new(&db);

    let query = QueryBuilder::from(db.catalog(), "MOVIE")
        .expect("MOVIE exists")
        .select("MOVIE", "title")
        .expect("title exists")
        .select("MOVIE", "year")
        .expect("year exists")
        .build();

    let profile = generate_movie_profile(
        db.catalog(),
        &ProfileGenConfig {
            n_directors: db_cfg.directors,
            n_actors: db_cfg.actors,
            ..ProfileGenConfig::tiny(99)
        },
    );
    println!(
        "profile `{}` with {} atomic preferences; query: {}",
        profile.name,
        profile.num_preferences(),
        cqp_engine::sql::conjunctive_sql(db.catalog(), &query)
    );

    let config = SolverConfig {
        algorithm: Algorithm::CBoundaries,
        ..Default::default()
    };
    let space = system.preference_space(&query, &profile, &config);
    println!(
        "preference space: K = {} related selection preferences\n",
        space.k()
    );

    let scenarios: Vec<(&str, ProblemSpec)> = vec![
        (
            "rainy evening, fast home connection (P2: max doi, cost ≤ 150 ms)",
            ProblemSpec::p2(150),
        ),
        (
            "browsing on the couch, wants a shortlist (P1: max doi, 1 ≤ size ≤ 8)",
            ProblemSpec::p1(1.0, 8.0),
        ),
        (
            "impatient: anything decent, as fast as possible (P4: min cost, doi ≥ 0.6)",
            ProblemSpec::p4(Doi::new(0.6)),
        ),
        (
            "metered connection but picky (P5: min cost, doi ≥ 0.6, 1 ≤ size ≤ 20)",
            ProblemSpec::p5(Doi::new(0.6), 1.0, 20.0),
        ),
    ];

    for (label, problem) in scenarios {
        println!("--- {label} ---");
        match system.personalize(&query, &profile, &problem, &config) {
            Ok(outcome) => {
                println!(
                    "  {} preference(s); doi {:.3}; cost {} ms; est. size {:.1}",
                    outcome.solution.prefs.len(),
                    outcome.solution.doi.value(),
                    outcome.solution.cost_blocks,
                    outcome.solution.size_rows
                );
                if outcome.solution.found {
                    let (rows, _, ms) =
                        system.execute(&outcome.query, 1.0).expect("query executes");
                    println!(
                        "  executed: {} rows in {ms:.0} ms simulated I/O",
                        rows.len()
                    );
                    for row in rows.rows.iter().take(3) {
                        println!("    {} ({})", row[0], row[1]);
                    }
                } else {
                    println!("  no feasible personalization — running the query as-is");
                }
            }
            Err(e) => println!("  failed: {e}"),
        }
        println!();
    }
}
