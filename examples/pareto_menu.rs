//! Multi-objective personalization: compute the (doi, cost) Pareto
//! frontier once, then serve *any* budget the search context poses — the
//! extension the paper sketches as future work ("query personalization as
//! a multi-objective constrained optimization problem", Section 8).
//!
//! Also demonstrates soft ranked execution: rows satisfying any subset of
//! the integrated preferences, ordered by their degree of interest
//! (Section 3: "results should be ranked by function r").
//!
//! ```text
//! cargo run --release -p cqp-bench --example pareto_menu
//! ```

use cqp_core::algorithms::pareto::{p2_from_frontier, pareto_frontier};
use cqp_core::construct::construct;
use cqp_core::{Constraints, CqpSystem, Instrument, SolverConfig};
use cqp_datagen::{generate_movie_db, generate_movie_profile, MovieDbConfig, ProfileGenConfig};
use cqp_engine::{execute_ranked, Matching, QueryBuilder};
use cqp_prefs::ConjModel;
use cqp_storage::IoMeter;

fn main() {
    let db_cfg = MovieDbConfig::tiny(21);
    let db = generate_movie_db(&db_cfg);
    let system = CqpSystem::new(&db);
    let profile = generate_movie_profile(
        db.catalog(),
        &ProfileGenConfig {
            n_directors: db_cfg.directors,
            n_actors: db_cfg.actors,
            ..ProfileGenConfig::tiny(5)
        },
    );
    let query = QueryBuilder::from(db.catalog(), "MOVIE")
        .expect("MOVIE exists")
        .select("MOVIE", "title")
        .expect("title exists")
        .build();

    let config = SolverConfig::default();
    let space = system.preference_space(&query, &profile, &config);
    println!("preference space: K = {}", space.k());

    // The whole doi/cost menu, computed once.
    let mut inst = Instrument::new();
    let frontier = pareto_frontier(
        &space,
        ConjModel::NoisyOr,
        &Constraints::default(),
        &mut inst,
    );
    println!(
        "\nPareto frontier ({} points, {} states explored):",
        frontier.len(),
        inst.states_examined
    );
    println!(
        "{:>10} {:>10} {:>8}   preferences",
        "cost (ms)", "doi", "size"
    );
    for p in &frontier {
        println!(
            "{:>10} {:>10.4} {:>8.1}   {:?}",
            p.cost_blocks,
            p.doi.value(),
            p.size_rows,
            p.prefs
        );
    }

    // Any Problem 2 budget is now a lookup.
    for cmax in [20u64, 60, 150, 400] {
        match p2_from_frontier(&frontier, cmax) {
            Some(p) => println!(
                "budget {cmax:>4} ms → doi {:.4} with {} preference(s)",
                p.doi.value(),
                p.prefs.len()
            ),
            None => println!("budget {cmax:>4} ms → no personalization fits"),
        }
    }

    // Soft ranked execution of the top frontier point: every movie that
    // satisfies at least one preference, best first.
    if let Some(best) = frontier.last() {
        let pq = construct(&query, &space, &best.prefs).expect("real preference paths");
        let dois: Vec<f64> = best.prefs.iter().map(|&i| space.doi(i).value()).collect();
        let ranked = execute_ranked(&db, &pq, &dois, Matching::AtLeast(1), &IoMeter::new(1.0))
            .expect("query executes");
        println!("\ntop matches (soft ranking, {} rows):", ranked.len());
        for r in ranked.iter().take(5) {
            println!(
                "  doi {:.4}  {}  (satisfies {} of {} preferences)",
                r.doi,
                r.row[0],
                r.satisfied.len(),
                best.prefs.len()
            );
        }
    }
}
