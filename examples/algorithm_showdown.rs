//! Algorithm showdown: all ten search algorithms (the paper's five, the
//! exhaustive oracle, branch-and-bound, and the three generic baselines)
//! on one instance, with time / work / quality side by side — a miniature
//! of the paper's Section 7.2 comparison.
//!
//! ```text
//! cargo run --release -p cqp-bench --example algorithm_showdown
//! ```

use cqp_bench::harness::{supreme_cost_blocks, timed, Scale};
use cqp_bench::{build_workload, experiments};
use cqp_core::{solve_p2, Algorithm};
use cqp_prefs::ConjModel;

fn main() {
    let w = build_workload(&Scale::default_scale());
    let spaces = experiments::spaces_at_k(&w, 18);
    let space = &spaces[0];
    let supreme = supreme_cost_blocks(space);
    let cmax = supreme / 2; // the hardest regime per Figure 12(c)
    println!(
        "instance: K = {}, Supreme Cost = {supreme} blocks, cmax = {cmax} blocks\n",
        space.k()
    );

    let algorithms = [
        Algorithm::Exhaustive,
        Algorithm::DMaxDoi,
        Algorithm::DSingleMaxDoi,
        Algorithm::CBoundaries,
        Algorithm::CMaxBounds,
        Algorithm::DHeurDoi,
        Algorithm::BranchBound,
        Algorithm::Annealing,
        Algorithm::Tabu,
        Algorithm::Genetic,
    ];

    let optimum = solve_p2(space, ConjModel::NoisyOr, cmax, Algorithm::CBoundaries);
    println!(
        "{:<16} {:>10} {:>10} {:>9} {:>12} {:>8}",
        "algorithm", "seconds", "states", "doi", "gap(x1e-7)", "exact?"
    );
    for algo in algorithms {
        let (sol, secs) = timed(|| solve_p2(space, ConjModel::NoisyOr, cmax, algo));
        println!(
            "{:<16} {:>10.6} {:>10} {:>9.5} {:>12.2} {:>8}",
            algo.name(),
            secs,
            sol.instrument.states_examined,
            sol.doi.value(),
            (optimum.doi.value() - sol.doi.value()) * 1e7,
            if algo.is_exact() { "yes" } else { "no" }
        );
    }

    println!(
        "\n(the gap column is doi_optimal − doi_found scaled by 10⁷, the unit of \
         the paper's Figure 14)"
    );
}
