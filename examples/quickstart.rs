//! Quickstart: personalize `select title from MOVIE` with the paper's
//! Figure 1 profile, end to end, on a small hand-built movie database.
//!
//! ```text
//! cargo run --release -p cqp-bench --example quickstart
//! ```

use cqp_core::{Algorithm, CqpSystem, ProblemSpec, SolverConfig};
use cqp_engine::QueryBuilder;
use cqp_prefs::Profile;
use cqp_storage::{DataType, Database, RelationSchema, Value};

/// Builds the movie database of the paper's Section 3/4.2 running example.
fn paper_database() -> Database {
    let mut db = Database::with_block_capacity(4);
    db.create_relation(RelationSchema::new(
        "MOVIE",
        vec![
            ("mid", DataType::Int),
            ("title", DataType::Str),
            ("year", DataType::Int),
            ("duration", DataType::Int),
            ("did", DataType::Int),
        ],
    ))
    .expect("fresh database");
    db.create_relation(RelationSchema::new(
        "DIRECTOR",
        vec![("did", DataType::Int), ("name", DataType::Str)],
    ))
    .expect("fresh database");
    db.create_relation(RelationSchema::new(
        "GENRE",
        vec![("mid", DataType::Int), ("genre", DataType::Str)],
    ))
    .expect("fresh database");

    let movies: &[(i64, &str, i64, i64, i64)] = &[
        (1, "Everyone Says I Love You", 1996, 101, 1),
        (2, "Manhattan", 1979, 96, 1),
        (3, "Annie Hall", 1977, 93, 1),
        (4, "Chicago", 2002, 113, 2),
        (5, "Cabaret", 1972, 124, 3),
        (6, "Heat", 1995, 170, 4),
        (7, "The Insider", 1999, 157, 4),
    ];
    for (mid, title, year, dur, did) in movies {
        db.insert_into(
            "MOVIE",
            vec![
                Value::Int(*mid),
                Value::str(*title),
                Value::Int(*year),
                Value::Int(*dur),
                Value::Int(*did),
            ],
        )
        .expect("valid row");
    }
    for (did, name) in [
        (1i64, "W. Allen"),
        (2, "R. Marshall"),
        (3, "B. Fosse"),
        (4, "M. Mann"),
    ] {
        db.insert_into("DIRECTOR", vec![Value::Int(did), Value::str(name)])
            .expect("valid row");
    }
    for (mid, genre) in [
        (1i64, "musical"),
        (1, "comedy"),
        (2, "comedy"),
        (3, "comedy"),
        (4, "musical"),
        (5, "musical"),
        (6, "crime"),
        (7, "drama"),
    ] {
        db.insert_into("GENRE", vec![Value::Int(mid), Value::str(genre)])
            .expect("valid row");
    }
    db
}

fn main() {
    // 1. The paper's movie database.
    let db = paper_database();
    let system = CqpSystem::new(&db);
    println!(
        "database: {} rows in {} blocks across {} relations",
        db.total_rows(),
        db.total_blocks(),
        db.catalog().len()
    );

    // 2. The user query of Section 4.2: select title from MOVIE.
    let query = QueryBuilder::from(db.catalog(), "MOVIE")
        .expect("MOVIE exists")
        .select("MOVIE", "title")
        .expect("title exists")
        .build();
    println!(
        "query: {}",
        cqp_engine::sql::conjunctive_sql(db.catalog(), &query)
    );

    // 3. The profile of Figure 1: musicals (0.5), W. Allen (0.8), with
    //    join preferences MOVIE→GENRE (0.9) and MOVIE→DIRECTOR (1.0).
    let profile = Profile::paper_figure1(db.catalog()).expect("movie schema present");
    println!(
        "profile: {} atomic preferences (paper Figure 1)",
        profile.num_preferences()
    );

    // 4. Problem 2: maximize interest under a 10 ms budget
    //    (b = 1 ms/block ⇒ 10 blocks).
    let problem = ProblemSpec::p2(10);
    let config = SolverConfig {
        algorithm: Algorithm::CBoundaries,
        ..Default::default()
    };
    let outcome = system
        .personalize(&query, &profile, &problem, &config)
        .expect("personalization succeeds");

    println!("\nselected {} preference(s):", outcome.solution.prefs.len());
    let space = system.preference_space(&query, &profile, &config);
    for &i in &outcome.solution.prefs {
        println!(
            "  doi {:.2}  cost {:>3} blocks   {}",
            space.doi(i).value(),
            space.cost_blocks(i),
            space.prefs[i].describe(db.catalog())
        );
    }
    println!(
        "estimated: doi {:.3}, cost {} ms, size {:.1} rows",
        outcome.solution.doi.value(),
        outcome.solution.cost_blocks,
        outcome.solution.size_rows
    );
    println!(
        "\npersonalized SQL (the Section 4.2 rewriting):\n  {}",
        outcome.sql
    );

    // 5. Execute and show the answer: W. Allen's musicals.
    let (rows, blocks, ms) = system.execute(&outcome.query, 1.0).expect("query executes");
    println!(
        "\nexecuted: {} row(s), {blocks} blocks read, {ms:.0} ms simulated I/O",
        rows.len()
    );
    for row in rows.rows.iter() {
        println!("  {}", row[0]);
    }
}
