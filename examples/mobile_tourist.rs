//! The paper's introduction scenario: Al and the tourist-information
//! service.
//!
//! "While planning his trip to Pisa, Al looks for general information …
//! using his laptop with a high-speed Internet connection … When Al is in
//! Pisa, he may ask for a few local restaurants using his palmtop … The
//! system should quickly return a short and easily browsable answer with,
//! say, three restaurants that are of Al's general liking."
//!
//! The same user, query, and profile — but two search contexts mapped onto
//! two different CQP problems produce very different personalized queries.
//!
//! ```text
//! cargo run --release -p cqp-bench --example mobile_tourist
//! ```

use cqp_core::{
    Algorithm, Connection, CqpSystem, Device, Intent, PolicyConfig, ProblemSpec, SearchContext,
    SolverConfig,
};
use cqp_datagen::{generate_tourism_db, TourismConfig};
use cqp_engine::{CmpOp, QueryBuilder};
use cqp_prefs::{Doi, Profile};

fn main() {
    let db = generate_tourism_db(&TourismConfig::default());
    let system = CqpSystem::new(&db);
    let catalog = db.catalog();

    // Al's query: restaurants (he will browse by name).
    let query = QueryBuilder::from(catalog, "RESTAURANT")
        .expect("RESTAURANT exists")
        .select("RESTAURANT", "name")
        .expect("name exists")
        .build();

    // Al's profile: he loves Tuscan food, likes seafood, prefers Pisa, and
    // avoids pricey places.
    let mut profile = Profile::new("al");
    profile
        .add_selection(catalog, "RESTAURANT", "cuisine", "tuscan", Doi::new(0.9))
        .expect("schema");
    profile
        .add_selection(catalog, "RESTAURANT", "cuisine", "seafood", Doi::new(0.6))
        .expect("schema");
    profile
        .add_selection_op(
            catalog,
            "RESTAURANT",
            "price",
            CmpOp::Le,
            35i64,
            Doi::new(0.7),
        )
        .expect("schema");
    profile
        .add_join(catalog, "RESTAURANT", "cid", "CITY", "cid", Doi::new(1.0))
        .expect("schema");
    profile
        .add_selection(catalog, "CITY", "name", "Pisa", Doi::new(0.8))
        .expect("schema");

    let config = SolverConfig {
        algorithm: Algorithm::CBoundaries,
        ..Default::default()
    };

    // Scenario 0 — naive "maximum interest" personalization (Problem 2
    // with a huge budget and no size bound). This is the paper's
    // motivating failure: the over-personalized query demands Tuscan AND
    // seafood cuisine simultaneously and returns nothing.
    println!("=== naive max-interest personalization (P2, cmax = 500 ms, no size bound) ===");
    let outcome = system
        .personalize(&query, &profile, &ProblemSpec::p2(500), &config)
        .expect("personalization succeeds");
    report(&system, &outcome);

    // The remaining contexts are expressed in the paper's own vocabulary —
    // device, connection, intent — and mapped onto Table 1 problems by the
    // policy module (the "policy issue" the paper defers to future work).
    let policy = PolicyConfig {
        fast_cost_blocks: 500,
        slow_cost_blocks: 60,
        desktop_size_max: 50.0,
        handheld_size_max: 3.0,
    };

    // Context 1 — the office laptop: plenty of bandwidth and screen, but
    // "empty answers are always undesirable" (Section 4.1) — the size
    // lower bound defaults to 1.
    let office = SearchContext {
        device: Device::Desktop,
        connection: Connection::Fast,
        intent: Intent::BestAnswer,
    };
    println!(
        "\n=== context: office laptop → {:?} ===",
        office
            .problem_with(&policy)
            .kind()
            .expect("policy yields a Table 1 problem")
    );
    let outcome = system
        .personalize(&query, &profile, &office.problem_with(&policy), &config)
        .expect("personalization succeeds");
    report(&system, &outcome);

    // Context 2 — the palmtop in Pisa: low bandwidth, tiny display, and
    // the answer must be a handful of rows ("say, three restaurants").
    let palmtop = SearchContext {
        device: Device::Handheld,
        connection: Connection::Slow,
        intent: Intent::BestAnswer,
    };
    println!(
        "\n=== context: palmtop in Pisa → {:?} ===",
        palmtop
            .problem_with(&policy)
            .kind()
            .expect("policy yields a Table 1 problem")
    );
    let outcome = system
        .personalize(&query, &profile, &palmtop.problem_with(&policy), &config)
        .expect("personalization succeeds");
    report(&system, &outcome);
}

fn report(system: &CqpSystem<'_>, outcome: &cqp_core::PersonalizationOutcome) {
    println!("selected {} preference(s)", outcome.solution.prefs.len());
    println!(
        "estimated: doi {:.3}, cost {} ms, size {:.1} rows",
        outcome.solution.doi.value(),
        outcome.solution.cost_blocks,
        outcome.solution.size_rows
    );
    println!("SQL: {}", outcome.sql);
    let (rows, blocks, ms) = system.execute(&outcome.query, 1.0).expect("query executes");
    println!(
        "answer: {} rows ({blocks} blocks, {ms:.0} ms simulated I/O)",
        rows.len()
    );
    for row in rows.rows.iter().take(5) {
        println!("  {}", row[0]);
    }
    if rows.len() > 5 {
        println!("  … and {} more", rows.len() - 5);
    }
}
